"""Numeric verification of the paper's theorems (Section IV)."""

from repro.theory.theorem1 import Theorem1Report, check_theorem1
from repro.theory.theorem2 import (
    Theorem2Report,
    check_theorem2,
    random_round_optimal_grouping,
)
from repro.theory.theorem3 import (
    Theorem3Report,
    Theorem4Report,
    check_theorem3,
    check_theorem4,
)
from repro.theory.theorem5 import (
    Theorem5Report,
    check_theorem5_instance,
    check_theorem5_trials,
)
from repro.theory.verify import TheoremBattery, verify_all

__all__ = [
    "Theorem1Report",
    "check_theorem1",
    "Theorem2Report",
    "check_theorem2",
    "random_round_optimal_grouping",
    "Theorem3Report",
    "Theorem4Report",
    "check_theorem3",
    "check_theorem4",
    "Theorem5Report",
    "check_theorem5_instance",
    "check_theorem5_trials",
    "TheoremBattery",
    "verify_all",
]
