"""Run the full battery of theorem checks (CLI: ``dygroups theorems``)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.local import dygroups_clique_local
from repro.data.distributions import uniform_skills
from repro.theory.theorem1 import Theorem1Report, check_theorem1
from repro.theory.theorem2 import Theorem2Report, check_theorem2
from repro.theory.theorem3 import (
    Theorem3Report,
    Theorem4Report,
    check_theorem3,
    check_theorem4,
)
from repro.theory.theorem5 import Theorem5Report, check_theorem5_trials

__all__ = ["TheoremBattery", "verify_all"]


@dataclass(frozen=True, slots=True)
class TheoremBattery:
    """All theorem-check reports from one :func:`verify_all` run."""

    theorem1: Theorem1Report
    theorem2: Theorem2Report
    theorem3: Theorem3Report
    theorem4: Theorem4Report
    theorem5: Theorem5Report

    @property
    def all_hold(self) -> bool:
        """Whether every check passed."""
        return all(
            report.holds
            for report in (self.theorem1, self.theorem2, self.theorem3, self.theorem4, self.theorem5)
        )

    def summary(self) -> str:
        """Human-readable pass/fail summary."""
        lines = ["Theorem verification battery", "============================"]
        entries = [
            ("Theorem 1 (star round-optimality)", self.theorem1.holds),
            ("Theorem 2 (variance maximization)", self.theorem2.holds),
            ("Theorem 3 (O(n) clique update)", self.theorem3.holds),
            ("Theorem 4 (clique round-optimality)", self.theorem4.holds),
            (
                f"Theorem 5 (k=2 optimality, {self.theorem5.trials} trials)",
                self.theorem5.holds,
            ),
        ]
        for label, ok in entries:
            lines.append(f"  [{'PASS' if ok else 'FAIL'}] {label}")
        return "\n".join(lines)


def verify_all(*, seed: int = 0, theorem5_trials: int = 50) -> TheoremBattery:
    """Run every theorem check on small random instances.

    Args:
        seed: controls the random instances used throughout.
        theorem5_trials: number of randomized brute-force comparisons
            (the paper runs 1000; the default keeps the battery fast).
    """
    rng = np.random.default_rng(seed)
    skills_9 = uniform_skills(9, rng=rng)
    skills_8 = uniform_skills(8, rng=rng)
    skills_60 = uniform_skills(60, rng=rng)

    report1 = check_theorem1(skills_9, k=3)
    report2 = check_theorem2(skills_60, k=5, rng=rng)
    report3 = check_theorem3(skills_60, dygroups_clique_local(skills_60, 5))
    report4 = check_theorem4(skills_8, k=2)
    report5 = check_theorem5_trials(theorem5_trials, seed=seed)
    return TheoremBattery(
        theorem1=report1,
        theorem2=report2,
        theorem3=report3,
        theorem4=report4,
        theorem5=report5,
    )
