"""Numeric verification of Theorem 3 (O(n) clique update) and Theorem 4.

Theorem 3: the clique skill update is computable in ``O(n)`` via prefix
sums.  :func:`check_theorem3` confirms the fast implementation agrees
with the literal pairwise definition, and that the update preserves the
within-group skill order (the property the averaging was designed for).

Theorem 4: ``DYGROUPS-CLIQUE-LOCAL``'s round-robin grouping maximizes the
clique round gain.  The paper omits the lengthy proof;
:func:`check_theorem4` verifies the claim exhaustively on small
instances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import as_skill_array, require_divisible_groups
from repro.baselines.brute_force import iter_equal_partitions
from repro.core.gain_functions import LinearGain
from repro.core.grouping import Grouping
from repro.core.interactions import Clique
from repro.core.local import dygroups_clique_local
from repro.core.update import update_clique, update_clique_naive

__all__ = ["Theorem3Report", "check_theorem3", "Theorem4Report", "check_theorem4"]

_TOL = 1e-9


@dataclass(frozen=True, slots=True)
class Theorem3Report:
    """Outcome of one Theorem 3 check."""

    holds: bool
    max_abs_difference: float
    order_preserved: bool


def check_theorem3(skills: np.ndarray, grouping: Grouping, rate: float = 0.5) -> Theorem3Report:
    """Fast clique update ≡ naive pairwise update, order preserved."""
    array = as_skill_array(skills)
    gain = LinearGain(rate)
    fast = update_clique(array, grouping, gain)
    naive = update_clique_naive(array, grouping, gain)
    max_diff = float(np.max(np.abs(fast - naive)))

    order_ok = True
    for group in grouping:
        idx = group.indices()
        before = array[idx]
        after = fast[idx]
        # Strictly ordered pairs must keep their order after the update.
        for i in range(len(idx)):
            for j in range(len(idx)):
                if before[i] > before[j] and after[i] < after[j] - _TOL:
                    order_ok = False
    return Theorem3Report(
        holds=max_diff <= _TOL and order_ok,
        max_abs_difference=max_diff,
        order_preserved=order_ok,
    )


@dataclass(frozen=True, slots=True)
class Theorem4Report:
    """Outcome of one exhaustive Theorem 4 check."""

    holds: bool
    groupings_checked: int
    algorithm_gain: float
    optimal_gain: float


def check_theorem4(skills: np.ndarray, k: int, rate: float = 0.5) -> Theorem4Report:
    """Exhaustively verify that the round-robin deal maximizes clique gain.

    Keep ``len(skills)`` small (≤ 10): every equi-sized partition is
    evaluated.
    """
    array = as_skill_array(skills)
    size = require_divisible_groups(len(array), k)
    mode = Clique()
    gain = LinearGain(rate)

    algorithm_gain = mode.round_gain(array, dygroups_clique_local(array, k), gain)
    optimal_gain = -np.inf
    checked = 0
    for partition in iter_equal_partitions(tuple(range(len(array))), size):
        optimal_gain = max(optimal_gain, mode.round_gain(array, Grouping(partition), gain))
        checked += 1
    return Theorem4Report(
        holds=algorithm_gain >= optimal_gain - _TOL,
        groupings_checked=checked,
        algorithm_gain=float(algorithm_gain),
        optimal_gain=float(optimal_gain),
    )
