"""Numeric verification of Theorem 5 (k = 2 optimality of DyGroups-Star).

Theorem 5: for ``k = 2`` groups under Star mode, the greedy DyGroups-Star
sequence achieves the *global* optimum of the TDG problem.  Section V-B3
validates this against brute force over 1000 random instances with
``n ∈ {4, 6, 8}``, ``α ∈ [1, 4]`` and uniform skills — reproduced here by
:func:`check_theorem5_trials`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.brute_force import brute_force_tdg
from repro.core.dygroups import dygroups
from repro.data.distributions import uniform_skills

__all__ = ["Theorem5Report", "check_theorem5_instance", "check_theorem5_trials"]

_TOL = 1e-8


def check_theorem5_instance(
    skills: np.ndarray, *, alpha: int, rate: float = 0.5, k: int = 2
) -> tuple[bool, float, float]:
    """Compare DyGroups-Star with brute force on one instance.

    Returns ``(agrees, dygroups_gain, optimal_gain)``.
    """
    greedy = dygroups(skills, k=k, alpha=alpha, rate=rate, mode="star", record_groupings=False)
    exact = brute_force_tdg(skills, k=k, alpha=alpha, rate=rate, mode="star")
    agrees = abs(greedy.total_gain - exact.total_gain) <= _TOL * max(1.0, exact.total_gain)
    return agrees, greedy.total_gain, exact.total_gain


@dataclass(frozen=True, slots=True)
class Theorem5Report:
    """Outcome of a batch of randomized Theorem 5 trials.

    Attributes:
        holds: every trial agreed with brute force.
        trials: number of instances tested.
        agreements: number of agreeing instances.
        worst_gap: largest relative shortfall of DyGroups vs optimal.
    """

    holds: bool
    trials: int
    agreements: int
    worst_gap: float


def check_theorem5_trials(
    trials: int = 100,
    *,
    n_choices: tuple[int, ...] = (4, 6, 8),
    alpha_range: tuple[int, int] = (1, 4),
    rate: float = 0.5,
    seed: int | None = 0,
) -> Theorem5Report:
    """Randomized batch validation mirroring Section V-B3.

    Each trial draws ``n`` from ``n_choices``, ``α`` uniformly from
    ``alpha_range`` and uniform skills on (0, 1], then compares
    DyGroups-Star against brute force for ``k = 2``.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    rng = np.random.default_rng(seed)
    agreements = 0
    worst_gap = 0.0
    for _ in range(trials):
        n = int(rng.choice(n_choices))
        alpha = int(rng.integers(alpha_range[0], alpha_range[1] + 1))
        skills = uniform_skills(n, rng=rng)
        agrees, greedy_gain, optimal_gain = check_theorem5_instance(
            skills, alpha=alpha, rate=rate
        )
        if agrees:
            agreements += 1
        if optimal_gain > 0:
            worst_gap = max(worst_gap, (optimal_gain - greedy_gain) / optimal_gain)
    return Theorem5Report(
        holds=agreements == trials,
        trials=trials,
        agreements=agreements,
        worst_gap=float(worst_gap),
    )
