"""Numeric verification of Theorem 2 (variance maximization).

Theorem 2: among all star-round-optimal groupings (top-``k`` teachers in
distinct groups), the block assignment of ``DYGROUPS-STAR-LOCAL``
(Algorithm 2) maximizes the variance of the post-round skill values.

:func:`check_theorem2` samples random round-optimal groupings and checks
that none yields a strictly higher post-update variance than the
algorithm's output.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import as_skill_array, require_divisible_groups
from repro.core.gain_functions import LinearGain
from repro.core.grouping import Grouping
from repro.core.local import dygroups_star_local
from repro.core.skills import descending_order
from repro.core.update import update_star

__all__ = ["Theorem2Report", "check_theorem2", "random_round_optimal_grouping"]

_TOL = 1e-9


@dataclass(frozen=True, slots=True)
class Theorem2Report:
    """Outcome of one sampled Theorem 2 check.

    Attributes:
        holds: no sampled round-optimal grouping beat the algorithm.
        algorithm_variance: post-round variance of Algorithm 2's output.
        best_sampled_variance: highest post-round variance among samples.
        samples: number of random round-optimal groupings drawn.
    """

    holds: bool
    algorithm_variance: float
    best_sampled_variance: float
    samples: int


def random_round_optimal_grouping(
    skills: np.ndarray, k: int, rng: np.random.Generator
) -> Grouping:
    """A uniformly random grouping with the top-``k`` skills as teachers.

    By Theorem 1 every such grouping maximizes the star round gain.
    """
    array = as_skill_array(skills)
    size = require_divisible_groups(len(array), k)
    order = descending_order(array)
    teachers = order[:k]
    rest = rng.permutation(order[k:])
    per_group = size - 1
    return Grouping(
        np.concatenate(([teachers[i]], rest[i * per_group : (i + 1) * per_group]))
        for i in range(k)
    )


def check_theorem2(
    skills: np.ndarray,
    k: int,
    rate: float = 0.5,
    *,
    samples: int = 200,
    rng: np.random.Generator | None = None,
) -> Theorem2Report:
    """Sampled verification of Theorem 2 on one instance."""
    array = as_skill_array(skills)
    gain = LinearGain(rate)
    generator = rng if rng is not None else np.random.default_rng(0)

    algorithm_updated = update_star(array, dygroups_star_local(array, k), gain)
    algorithm_variance = float(np.var(algorithm_updated))

    best_sampled = -np.inf
    for _ in range(samples):
        grouping = random_round_optimal_grouping(array, k, generator)
        variance = float(np.var(update_star(array, grouping, gain)))
        best_sampled = max(best_sampled, variance)

    return Theorem2Report(
        holds=best_sampled <= algorithm_variance + _TOL,
        algorithm_variance=algorithm_variance,
        best_sampled_variance=float(best_sampled),
        samples=samples,
    )
