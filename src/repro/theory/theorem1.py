"""Numeric verification of Theorem 1 (star round-optimal groupings).

Theorem 1: for Star mode with the linear gain, (a) every round-gain-
maximizing grouping places the top-``k`` skills in distinct groups, and
(b) *every* grouping that does so achieves the same (maximal) gain.

:func:`check_theorem1` verifies both claims by exhaustive enumeration on
a small instance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import as_skill_array, require_divisible_groups
from repro.baselines.brute_force import iter_equal_partitions
from repro.core.gain_functions import LinearGain
from repro.core.grouping import Grouping
from repro.core.interactions import Star

__all__ = ["Theorem1Report", "check_theorem1"]

_TOL = 1e-9


@dataclass(frozen=True, slots=True)
class Theorem1Report:
    """Outcome of one exhaustive Theorem 1 check.

    Attributes:
        holds: both claims verified.
        groupings_checked: number of partitions enumerated.
        optimal_gain: the maximal round gain found.
        optimal_count: number of partitions achieving it.
        claim_a_violations: optimal partitions whose teachers are not the
            top-k skills.
        claim_b_violations: top-k-teacher partitions that are suboptimal.
    """

    holds: bool
    groupings_checked: int
    optimal_gain: float
    optimal_count: int
    claim_a_violations: int
    claim_b_violations: int


def _has_top_k_teachers(skills: np.ndarray, grouping: Grouping, k: int) -> bool:
    """Whether each group's maximum is one of the k highest skill values.

    Stated on *values* so instances with ties are judged correctly.
    """
    top_values = np.sort(skills)[::-1][:k]
    maxima = sorted((float(skills[list(g)].max()) for g in grouping), reverse=True)
    return np.allclose(maxima, top_values, atol=_TOL)


def check_theorem1(skills: np.ndarray, k: int, rate: float = 0.5) -> Theorem1Report:
    """Exhaustively verify Theorem 1 on one instance.

    Keep ``len(skills)`` small (≤ 10): the check enumerates every
    equi-sized partition.
    """
    array = as_skill_array(skills)
    size = require_divisible_groups(len(array), k)
    mode = Star()
    gain = LinearGain(rate)

    records: list[tuple[float, bool]] = []
    for partition in iter_equal_partitions(tuple(range(len(array))), size):
        grouping = Grouping(partition)
        records.append(
            (mode.round_gain(array, grouping, gain), _has_top_k_teachers(array, grouping, k))
        )

    optimal_gain = max(g for g, _ in records)
    claim_a_violations = sum(
        1 for g, top in records if g >= optimal_gain - _TOL and not top
    )
    claim_b_violations = sum(1 for g, top in records if top and g < optimal_gain - _TOL)
    optimal_count = sum(1 for g, _ in records if g >= optimal_gain - _TOL)
    return Theorem1Report(
        holds=claim_a_violations == 0 and claim_b_violations == 0,
        groupings_checked=len(records),
        optimal_gain=float(optimal_gain),
        optimal_count=optimal_count,
        claim_a_violations=claim_a_violations,
        claim_b_violations=claim_b_violations,
    )
