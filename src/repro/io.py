"""Serialization and data loading.

Interchange helpers so experiment artifacts survive a process:

* :func:`simulation_result_to_dict` / :func:`simulation_result_from_dict`
  — lossless JSON-able round-trip of a
  :class:`~repro.core.simulation.SimulationResult`;
* :func:`series_set_to_dict` / :func:`series_set_from_dict` — same for
  figure series;
* :func:`spec_outcome_to_dict` — one-way export of averaged experiment
  outcomes (the raw per-run results are reproducible from the spec seed);
* :func:`save_json` / :func:`load_json` — tiny file helpers;
* :func:`load_skills` — read an initial-skill vector from ``.json``
  (a list or ``{"skills": [...]}``), ``.csv`` / ``.txt`` (one value per
  line or comma-separated), used by the CLI's ``--skills-file``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro._validation import as_skill_array
from repro.core.grouping import Grouping
from repro.core.simulation import SimulationResult
from repro.experiments.runner import SpecOutcome
from repro.experiments.spec import ExperimentSpec
from repro.metrics.series import Series, SeriesSet
from repro.registry import PolicySpec

__all__ = [
    "experiment_spec_to_dict",
    "experiment_spec_from_dict",
    "simulation_result_to_dict",
    "simulation_result_from_dict",
    "series_set_to_dict",
    "series_set_from_dict",
    "spec_outcome_to_dict",
    "save_json",
    "load_json",
    "load_skills",
]


def simulation_result_to_dict(result: SimulationResult) -> dict[str, Any]:
    """Lossless JSON-able representation of a simulation result."""
    payload: dict[str, Any] = {
        "policy_name": result.policy_name,
        "mode_name": result.mode_name,
        "k": result.k,
        "alpha": result.alpha,
        "initial_skills": result.initial_skills.tolist(),
        "final_skills": result.final_skills.tolist(),
        "round_gains": result.round_gains.tolist(),
        "groupings": [[list(group) for group in grouping] for grouping in result.groupings],
    }
    if result.skill_history is not None:
        payload["skill_history"] = result.skill_history.tolist()
    if result.round_seconds is not None:
        payload["round_seconds"] = result.round_seconds.tolist()
    return payload


def simulation_result_from_dict(payload: dict[str, Any]) -> SimulationResult:
    """Inverse of :func:`simulation_result_to_dict`.

    Raises:
        KeyError: if a required field is missing.
        ValueError: if the stored groupings are not valid partitions.
    """
    history = payload.get("skill_history")
    round_seconds = payload.get("round_seconds")
    return SimulationResult(
        policy_name=payload["policy_name"],
        mode_name=payload["mode_name"],
        k=int(payload["k"]),
        alpha=int(payload["alpha"]),
        initial_skills=np.array(payload["initial_skills"], dtype=np.float64),
        final_skills=np.array(payload["final_skills"], dtype=np.float64),
        round_gains=np.array(payload["round_gains"], dtype=np.float64),
        groupings=tuple(Grouping(groups) for groups in payload["groupings"]),
        skill_history=np.array(history, dtype=np.float64) if history is not None else None,
        round_seconds=np.array(round_seconds, dtype=np.float64)
        if round_seconds is not None
        else None,
    )


def series_set_to_dict(series_set: SeriesSet) -> dict[str, Any]:
    """JSON-able representation of a figure's series."""
    return {
        "title": series_set.title,
        "x_label": series_set.x_label,
        "y_label": series_set.y_label,
        "series": [
            {"label": s.label, "x": list(s.x), "y": list(s.y)} for s in series_set.series
        ],
    }


def series_set_from_dict(payload: dict[str, Any]) -> SeriesSet:
    """Inverse of :func:`series_set_to_dict`."""
    return SeriesSet(
        title=payload["title"],
        x_label=payload["x_label"],
        y_label=payload["y_label"],
        series=tuple(
            Series(label=s["label"], x=tuple(s["x"]), y=tuple(s["y"]))
            for s in payload["series"]
        ),
    )


def experiment_spec_to_dict(spec: ExperimentSpec) -> dict[str, Any]:
    """JSON-able representation of an experiment spec (current form).

    Algorithms are stored as canonical registry spec strings (see
    :class:`repro.registry.PolicySpec`); the legacy ``lpa_max_evals``
    knob is written only when set, so specs that moved their budgets
    into spec params serialize without it.
    """
    payload: dict[str, Any] = {
        "n": spec.n,
        "k": spec.k,
        "alpha": spec.alpha,
        "rate": spec.rate,
        "mode": spec.mode,
        "distribution": spec.distribution,
        "algorithms": [PolicySpec.parse(entry).canonical() for entry in spec.algorithms],
        "runs": spec.runs,
        "seed": spec.seed,
        "engine": spec.engine,
        "workers": spec.workers,
        "shards": spec.shards,
    }
    if spec.lpa_max_evals is not None:
        payload["lpa_max_evals"] = spec.lpa_max_evals
    return payload


def experiment_spec_from_dict(payload: dict[str, Any]) -> ExperimentSpec:
    """Inverse of :func:`experiment_spec_to_dict`.

    Also reads the old on-disk form: plain algorithm names (no spec
    params) and an always-present, possibly ``null`` ``lpa_max_evals``
    key.  Missing keys fall back to the spec defaults.

    Raises:
        ValueError: if the stored configuration is invalid (unknown
            algorithm, bad param key/value, ...).
    """
    fields = dict(payload)
    fields.pop("format", None)
    if "algorithms" in fields:
        fields["algorithms"] = tuple(fields["algorithms"])
    known = {
        "n", "k", "alpha", "rate", "mode", "distribution",
        "algorithms", "runs", "seed", "lpa_max_evals", "engine", "workers", "shards",
    }
    unknown = sorted(set(fields) - known)
    if unknown:
        raise ValueError(f"unknown experiment-spec keys {unknown}")
    return ExperimentSpec(**fields)


def spec_outcome_to_dict(outcome: SpecOutcome) -> dict[str, Any]:
    """JSON-able export of an averaged experiment outcome.

    One-way: the per-run raw results are reproducible by re-running the
    spec (its seed fully determines them), so only the spec and the
    aggregates are stored.
    """
    return {
        "spec": experiment_spec_to_dict(outcome.spec),
        "outcomes": {
            name: {
                "mean_total_gain": algo.mean_total_gain,
                "std_total_gain": algo.std_total_gain,
                "mean_round_gains": list(algo.mean_round_gains),
                "mean_runtime_seconds": algo.mean_runtime_seconds,
                "mean_round_seconds": list(algo.mean_round_seconds),
            }
            for name, algo in outcome.outcomes.items()
        },
    }


def save_json(payload: dict[str, Any], path: "str | Path") -> Path:
    """Write ``payload`` as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_json(path: "str | Path") -> dict[str, Any]:
    """Read a JSON object from ``path``.

    Raises:
        FileNotFoundError: if the file does not exist.
        ValueError: if the file does not hold a JSON object.
    """
    content = json.loads(Path(path).read_text())
    if not isinstance(content, dict):
        raise ValueError(f"{path} does not contain a JSON object")
    return content


def load_skills(path: "str | Path") -> np.ndarray:
    """Load an initial-skill vector from a ``.json``, ``.csv`` or ``.txt`` file.

    Accepted formats:

    * JSON: a bare list of numbers, or an object with a ``"skills"`` list;
    * CSV / TXT: numbers separated by commas and/or newlines; blank lines
      and lines starting with ``#`` are ignored.

    Returns a validated positive ``float64`` array.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"skills file not found: {path}")
    if path.suffix.lower() == ".json":
        content = json.loads(path.read_text())
        if isinstance(content, dict):
            if "skills" not in content:
                raise ValueError(f"{path}: JSON object must contain a 'skills' list")
            content = content["skills"]
        if not isinstance(content, list):
            raise ValueError(f"{path}: expected a JSON list of numbers")
        return as_skill_array(content, name=f"skills from {path.name}")
    values: list[float] = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        for token in line.split(","):
            token = token.strip()
            if token:
                values.append(float(token))
    return as_skill_array(values, name=f"skills from {path.name}")
