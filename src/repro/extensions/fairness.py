"""Fairness-aware grouping (Section VII, "Fairness").

Section V-B5 observes that DyGroups *increases* inequality relative to
random grouping (the variance tie-break deliberately keeps strong
teachers strong).  The paper flags bi-criteria optimization of fairness
and learning gain as "an extremely interesting theoretical and practical
issue"; this module provides the natural first instrument:

* :class:`FairnessAwarePolicy` — a star-round-optimal grouping (so the
  round's learning gain is untouched, by Theorem 1) that assigns the
  *weakest* learners to the *best* teachers.  Among all round-optimal
  groupings this is the variance-**minimizing** one — the exact mirror of
  DyGroups' tie-break, trading future-round gain for equity;
* :func:`fairness_report` — gain + inequality metrics for a result, the
  basis of the extended fairness ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro._validation import require_divisible_groups
from repro.core.grouping import Grouping
from repro.core.simulation import GroupingPolicy, SimulationResult
from repro.core.skills import descending_order
from repro.metrics.inequality import atkinson, coefficient_of_variation, gini, theil

__all__ = [
    "FairnessAwarePolicy",
    "FairnessReport",
    "fair_star_rank_listing",
    "fairness_report",
]


class FairnessAwarePolicy(GroupingPolicy):
    """Round-optimal star grouping that pairs best teachers with weakest learners.

    Teachers are the top-``k`` skills (preserving the round's maximal
    learning gain under Star mode); the remaining members are assigned in
    *ascending* blocks, so group 1 — led by the best teacher — receives
    the weakest learners.  This minimizes post-round variance among
    round-optimal groupings.
    """

    name = "fair-star"

    @property
    def required_mode(self) -> str:
        """The grouping is round-optimal (Theorem 1) only under Star mode."""
        return "star"

    def propose(self, skills: np.ndarray, k: int, rng: np.random.Generator) -> Grouping:
        n = len(skills)
        size = require_divisible_groups(n, k)
        order = descending_order(skills)
        teachers = order[:k]
        ascending_rest = order[k:][::-1]
        per_group = size - 1
        return Grouping(
            np.concatenate(([teachers[i]], ascending_rest[i * per_group : (i + 1) * per_group]))
            for i in range(k)
        )


@lru_cache(maxsize=256)
def fair_star_rank_listing(n: int, k: int) -> np.ndarray:
    """Rank listing of :class:`FairnessAwarePolicy`, flattened per group.

    The policy is a pure function of the descending skill order: group
    ``i`` takes the rank-``i`` teacher plus the ``i``-th ascending block
    of the remaining learners, i.e. ranks ``n−1−i·per−j``.  This is the
    listing the vectorized engine gathers from
    :func:`repro.core.batch.descending_orders`, mirroring the scalar
    :meth:`FairnessAwarePolicy.propose` member order exactly.
    """
    size = require_divisible_groups(n, k)
    per_group = size - 1
    listing = np.empty(n, dtype=np.intp)
    for i in range(k):
        start = i * size
        listing[start] = i
        offsets = np.arange(per_group, dtype=np.intp)
        listing[start + 1 : start + size] = (n - 1) - (i * per_group + offsets)
    listing.setflags(write=False)
    return listing


@dataclass(frozen=True, slots=True)
class FairnessReport:
    """Gain and inequality profile of one simulation result.

    Attributes:
        policy_name: which policy produced the trajectory.
        total_gain: the TDG objective value.
        cv: final coefficient of variation.
        gini: final Gini coefficient.
        theil: final Theil T index.
        atkinson: final Atkinson index (ε = 0.5).
        bottom_decile_gain: mean skill gain of the initially weakest 10%
            of participants — the equity-of-outcome view.
    """

    policy_name: str
    total_gain: float
    cv: float
    gini: float
    theil: float
    atkinson: float
    bottom_decile_gain: float


def fairness_report(result: SimulationResult) -> FairnessReport:
    """Compute the fairness profile of a finished simulation."""
    initial = result.initial_skills
    final = result.final_skills
    decile = max(1, len(initial) // 10)
    weakest = np.argsort(initial, kind="stable")[:decile]
    return FairnessReport(
        policy_name=result.policy_name,
        total_gain=result.total_gain,
        cv=coefficient_of_variation(final),
        gini=gini(final),
        theil=theil(final),
        atkinson=atkinson(final),
        bottom_decile_gain=float(np.mean(final[weakest] - initial[weakest])),
    )
