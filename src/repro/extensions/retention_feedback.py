"""Retention feedback: dropouts change who is left to learn (Section VII).

Observation III notes DyGroups' higher worker retention and the paper
asks about "the impact of retention on the aggregate learning gain.  A
faster overall learning gain may [yield] higher satisfaction among
participants, and thus create a positive feedback loop."

This module closes that loop in the synthetic setting: after each round,
every participant independently stays with a gain-dependent probability
(the :class:`~repro.amt.retention.RetentionModel`); dropped participants
stop learning *and stop teaching*.  Because strong teachers who learned
nothing this round are the likeliest to leave, policies that spread
learning widely retain their teaching capital — a dynamic invisible to
the fixed-population model.

The welfare measure is the aggregate gain over the *original* cohort
(dropouts keep their last skill), so retention differences translate
directly into welfare differences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import (
    as_skill_array,
    require_learning_rate,
    require_positive_int,
)
from repro.amt.retention import RetentionModel
from repro.core.gain_functions import LinearGain
from repro.core.interactions import get_mode
from repro.core.simulation import GroupingPolicy
from repro.engine.kernel import RoundKernel

__all__ = ["RetentionSimulationResult", "simulate_with_retention"]


@dataclass(frozen=True)
class RetentionSimulationResult:
    """Trajectory of a retention-feedback simulation.

    Attributes:
        policy_name: the grouping policy used.
        round_gains: aggregate skill gain per round (length α).
        retention: fraction of the original cohort active after each
            round, starting at 1.0 (length α + 1).
        final_skills: skills of the whole original cohort (dropouts keep
            their last value).
        rounds_played: rounds in which learning actually happened (a
            round is skipped once fewer than ``2·k`` members remain).
    """

    policy_name: str
    round_gains: tuple[float, ...]
    retention: tuple[float, ...]
    final_skills: np.ndarray
    rounds_played: int

    @property
    def total_gain(self) -> float:
        """Aggregate welfare gain over the original cohort."""
        return float(sum(self.round_gains))

    @property
    def final_retention(self) -> float:
        """Fraction of the cohort still active after the last round."""
        return self.retention[-1]


def simulate_with_retention(
    policy: GroupingPolicy,
    skills: np.ndarray,
    *,
    k: int,
    alpha: int,
    rate: float,
    mode: str = "star",
    retention: RetentionModel | None = None,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> RetentionSimulationResult:
    """Run ``policy`` for α rounds over a population that can quit.

    Each round groups only the active members (a random subset sits out
    if their count is not divisible by ``k``); afterwards every active
    member independently stays with probability given by the retention
    model applied to its rate-normalized round gain.

    Raises:
        ValueError: for invalid parameters (as in
            :func:`repro.core.simulation.simulate`).
    """
    array = as_skill_array(skills)
    k = require_positive_int(k, name="k")
    alpha = require_positive_int(alpha, name="alpha")
    rate = require_learning_rate(rate)
    if rng is not None and seed is not None:
        raise ValueError("provide at most one of rng= or seed=")
    generator = rng if rng is not None else np.random.default_rng(seed)
    model = retention if retention is not None else RetentionModel()
    mode_obj = get_mode(mode)
    gain_fn = LinearGain(rate)
    # The kernel validates required_mode and owns the round step
    # (propose → update → gain → contracts); instrument=False keeps this
    # extension's rounds out of the core engine's telemetry.
    kernel = RoundKernel(policy, mode_obj, gain_fn, instrument=False)

    policy.reset()
    n = len(array)
    current = array.copy()
    active = np.ones(n, dtype=bool)
    gains: list[float] = []
    retention_curve = [1.0]
    rounds_played = 0

    for _ in range(alpha):
        active_idx = np.flatnonzero(active)
        participating = (len(active_idx) // k) * k
        round_gain_per_member = np.zeros(n, dtype=np.float64)
        if participating >= 2 * k:
            chosen = generator.choice(active_idx, size=participating, replace=False)
            sub_skills = current[chosen]
            outcome = kernel.step(sub_skills, k, generator, round_index=rounds_played)
            round_gain_per_member[chosen] = outcome.updated - sub_skills
            current[chosen] = outcome.updated
            rounds_played += 1
        gains.append(float(round_gain_per_member.sum()))

        # Retention draw over active members, driven by their own gain.
        normalized = round_gain_per_member[active_idx] / rate
        stays = model.sample_stays(normalized, generator)
        active[active_idx] = stays
        retention_curve.append(float(active.sum()) / n)

    return RetentionSimulationResult(
        policy_name=policy.name,
        round_gains=tuple(gains),
        retention=tuple(retention_curve),
        final_skills=current,
        rounds_played=rounds_played,
    )
