"""The r = 1 special case: full learning per interaction (footnote 5).

The paper omits ``r = 1`` from the main model ("the case r=1 is
relatively straightforward") but uses it in the evaluation discussion:
"In the special case of r = 1, by definition of the star mode, it takes
``log_{n/k}(n)`` rounds to make everyone reach the highest skill value
for DYGROUPS and LPA" (Section V-B2).

With ``r = 1`` a star-mode learner jumps exactly to its teacher's skill,
so each round every group collapses onto its maximum.  Under DyGroups the
count of members holding the global maximum multiplies by the group size
``t = n/k`` each round (the max-holders seed ``t·|holders|`` members),
hence saturation after ``⌈log_t(n)⌉`` rounds.  This module implements the
dynamics and the closed-form bound, both verified in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro._validation import as_skill_array, require_divisible_groups
from repro.core.grouping import Grouping
from repro.core.simulation import GroupingPolicy
from repro.core.update import group_max

__all__ = ["rounds_to_saturation_bound", "FullRateResult", "simulate_full_rate"]


def rounds_to_saturation_bound(n: int, k: int) -> int:
    """``⌈log_{n/k}(n)⌉`` — the paper's saturation-round bound for r = 1."""
    size = require_divisible_groups(n, k)
    if size < 2:
        raise ValueError("group size must be at least 2")
    return max(1, math.ceil(math.log(n) / math.log(size)))


@dataclass(frozen=True)
class FullRateResult:
    """Outcome of an r = 1 star-mode simulation.

    Attributes:
        rounds_to_saturation: rounds until every member holds the global
            maximum skill (``alpha_max`` if never reached).
        saturated: whether full saturation was reached.
        max_holder_counts: number of max-skill holders after each round
            (index 0 = before round 1).
    """

    rounds_to_saturation: int
    saturated: bool
    max_holder_counts: tuple[int, ...]


def simulate_full_rate(
    policy: GroupingPolicy,
    skills: np.ndarray,
    *,
    k: int,
    alpha_max: int = 64,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> FullRateResult:
    """Run star-mode dynamics with ``r = 1`` until saturation.

    Every member of a group jumps to the group maximum each round.  Stops
    as soon as all members hold the global maximum, or after
    ``alpha_max`` rounds.
    """
    array = as_skill_array(skills)
    require_divisible_groups(len(array), k)
    if rng is not None and seed is not None:
        raise ValueError("provide at most one of rng= or seed=")
    generator = rng if rng is not None else np.random.default_rng(seed)

    policy.reset()
    top = float(array.max())
    current = array.copy()
    counts = [int(np.sum(current >= top))]
    rounds = 0
    while counts[-1] < len(current) and rounds < alpha_max:
        grouping: Grouping = policy.propose(current, k, generator)
        current = group_max(current, grouping)[grouping.assignment]
        counts.append(int(np.sum(current >= top)))
        rounds += 1
    saturated = counts[-1] == len(current)
    return FullRateResult(
        rounds_to_saturation=rounds,
        saturated=saturated,
        max_holder_counts=tuple(counts),
    )
