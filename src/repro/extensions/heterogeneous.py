"""Heterogeneous learning rates (Section VII, "Alternative formulations").

The paper suggests studying "settings where the learning gain depends on
additional factors that capture 'intrinsic learning ability', e.g. …
different learning rates for the participants".  This module implements
that variant: participant ``i`` carries its own rate ``r_i ∈ (0, 1)``,
and a 2-person interaction updates the learner as
``s_j ← s_j + r_j·(s_i − s_j)``.

Consequences worth knowing (and tested):

* the *uniform* special case reproduces the core model exactly;
* Theorem 1's structure survives in weakened form — the star round gain
  is ``Σ_j r_j·(teacher_j − s_j)``, so the optimal teachers are still the
  top-``k`` skills, but the optimal assignment of learners now depends on
  their rates (fast learners want big gaps): the greedy here pairs the
  largest ``r_j·(…)`` opportunities first;
* DyGroups' variance tie-break loses its guarantee; the provided
  :class:`HeterogeneousDyGroups` is a sensible greedy, not an optimum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import as_skill_array, require_divisible_groups, require_positive_int
from repro.core.grouping import Grouping
from repro.core.skills import descending_order

__all__ = [
    "validate_rates",
    "update_star_heterogeneous",
    "HeterogeneousDyGroups",
    "HeterogeneousResult",
    "simulate_heterogeneous",
]


def validate_rates(rates: np.ndarray, n: int) -> np.ndarray:
    """Validate a per-participant learning-rate vector in (0, 1)."""
    array = np.asarray(rates, dtype=np.float64)
    if array.shape != (n,):
        raise ValueError(f"rates must have shape ({n},), got {array.shape}")
    if np.any((array <= 0.0) | (array >= 1.0)):
        raise ValueError("every per-participant rate must lie in the open interval (0, 1)")
    return array.copy()


def update_star_heterogeneous(
    skills: np.ndarray, rates: np.ndarray, grouping: Grouping
) -> np.ndarray:
    """Star update with per-participant rates: ``s_j += r_j·(teacher − s_j)``."""
    array = np.asarray(skills, dtype=np.float64)
    rates = validate_rates(rates, len(array))
    if grouping.n != len(array):
        raise ValueError(f"grouping covers {grouping.n} members, skills has {len(array)}")
    maxima = np.full(grouping.k, -np.inf)
    np.maximum.at(maxima, grouping.assignment, array)
    teachers = maxima[grouping.assignment]
    return array + rates * (teachers - array)


class HeterogeneousDyGroups:
    """Greedy star grouping aware of per-participant learning rates.

    The top-``k`` skills teach (still optimal — the round gain's teacher
    term is rate-independent).  Learners are then assigned greedily:
    processing learners by descending rate, each takes the currently
    open group whose teacher offers them the largest weighted gain
    ``r_j·(teacher − s_j)``.

    Not a :class:`~repro.core.simulation.GroupingPolicy` (it needs the
    rate vector), so it is driven by :func:`simulate_heterogeneous`.
    """

    def __init__(self, rates: np.ndarray) -> None:
        self._rates = np.asarray(rates, dtype=np.float64)

    def propose(self, skills: np.ndarray, k: int) -> Grouping:
        array = as_skill_array(skills)
        n = len(array)
        size = require_divisible_groups(n, k)
        rates = validate_rates(self._rates, n)
        order = descending_order(array)
        teachers = order[:k]
        teacher_skill = array[teachers]
        capacity = np.full(k, size - 1, dtype=np.intp)
        groups: list[list[int]] = [[int(t)] for t in teachers]

        learners = sorted(
            (int(m) for m in order[k:]), key=lambda m: float(rates[m]), reverse=True
        )
        for member in learners:
            weighted = rates[member] * np.maximum(teacher_skill - array[member], 0.0)
            weighted = np.where(capacity > 0, weighted, -np.inf)
            target = int(np.argmax(weighted))
            groups[target].append(member)
            capacity[target] -= 1
        return Grouping(groups)


@dataclass(frozen=True)
class HeterogeneousResult:
    """Trajectory of a heterogeneous-rate simulation."""

    round_gains: tuple[float, ...]
    final_skills: np.ndarray

    @property
    def total_gain(self) -> float:
        """Aggregated learning gain over all rounds."""
        return float(sum(self.round_gains))


def simulate_heterogeneous(
    skills: np.ndarray,
    rates: np.ndarray,
    *,
    k: int,
    alpha: int,
) -> HeterogeneousResult:
    """Run the heterogeneous-rate DyGroups adaptation for α rounds (star)."""
    array = as_skill_array(skills)
    require_divisible_groups(len(array), k)
    alpha = require_positive_int(alpha, name="alpha")
    rates = validate_rates(rates, len(array))
    grouper = HeterogeneousDyGroups(rates)

    current = array
    gains = []
    for _ in range(alpha):
        grouping = grouper.propose(current, k)
        updated = update_star_heterogeneous(current, rates, grouping)
        gains.append(float(np.sum(updated - current)))
        current = updated
    return HeterogeneousResult(round_gains=tuple(gains), final_skills=current)
