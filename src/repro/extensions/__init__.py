"""Extensions implementing the paper's Section VII future-work directions."""

from repro.extensions.affinity import (
    AffinityAwarePolicy,
    AffinityState,
    mean_within_group_affinity,
)
from repro.extensions.concave import CONCAVE_GAINS, LogGain, PowerGain, SqrtGain
from repro.extensions.fairness import FairnessAwarePolicy, FairnessReport, fairness_report
from repro.extensions.heterogeneous import (
    HeterogeneousDyGroups,
    HeterogeneousResult,
    simulate_heterogeneous,
    update_star_heterogeneous,
    validate_rates,
)
from repro.extensions.retention_feedback import (
    RetentionSimulationResult,
    simulate_with_retention,
)
from repro.extensions.saturation import (
    FullRateResult,
    rounds_to_saturation_bound,
    simulate_full_rate,
)
from repro.extensions.variable_groups import (
    VariableGrouping,
    VariableSimulationResult,
    simulate_variable,
    update_variable,
    variable_clique_local,
    variable_star_local,
)

__all__ = [
    "AffinityAwarePolicy",
    "AffinityState",
    "mean_within_group_affinity",
    "CONCAVE_GAINS",
    "LogGain",
    "PowerGain",
    "SqrtGain",
    "FairnessAwarePolicy",
    "FairnessReport",
    "fairness_report",
    "HeterogeneousDyGroups",
    "HeterogeneousResult",
    "simulate_heterogeneous",
    "update_star_heterogeneous",
    "validate_rates",
    "RetentionSimulationResult",
    "simulate_with_retention",
    "FullRateResult",
    "rounds_to_saturation_bound",
    "simulate_full_rate",
    "VariableGrouping",
    "VariableSimulationResult",
    "simulate_variable",
    "update_variable",
    "variable_clique_local",
    "variable_star_local",
]
