"""Variable-size groups (Section VII, "Alternative formulations").

The paper's formulation fixes equi-sized groups but notes that "DYGROUPS
can be adapted for the case when groups have varying sizes".  This module
is that adaptation: groupings are described by an explicit list of group
*sizes* summing to ``n``, and the two local groupers generalize naturally:

* star — the ``len(sizes)`` highest-skilled members become teachers; the
  remaining members fill the groups in descending contiguous blocks
  (group order follows the given size order);
* clique — members are dealt round-robin over the groups, skipping groups
  that have reached their capacity.

Updates reuse the core engines via a small per-group dispatch, so the
learning semantics are identical to the equi-sized case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._validation import as_skill_array, require_learning_rate, require_positive_int
from repro.core.gain_functions import GainFunction, LinearGain
from repro.core.skills import descending_order

__all__ = [
    "VariableGrouping",
    "variable_star_local",
    "variable_clique_local",
    "update_variable",
    "simulate_variable",
    "VariableSimulationResult",
]


@dataclass(frozen=True)
class VariableGrouping:
    """A partition of ``n`` participants into groups of given sizes.

    Attributes:
        groups: member-index arrays, one per group.
    """

    groups: tuple[np.ndarray, ...]

    def __post_init__(self) -> None:
        members = np.concatenate(self.groups) if self.groups else np.array([], dtype=np.intp)
        n = len(members)
        if n == 0:
            raise ValueError("a grouping must cover at least one participant")
        if len(np.unique(members)) != n or members.min() != 0 or members.max() != n - 1:
            raise ValueError("groups must exactly partition the indices 0..n-1")
        if any(len(g) < 1 for g in self.groups):
            raise ValueError("every group needs at least one member")

    @property
    def n(self) -> int:
        """Total number of participants covered."""
        return int(sum(len(g) for g in self.groups))

    @property
    def sizes(self) -> tuple[int, ...]:
        """Group sizes, in group order."""
        return tuple(len(g) for g in self.groups)


def _validate_sizes(n: int, sizes: Sequence[int]) -> list[int]:
    sizes = [require_positive_int(s, name="size") for s in sizes]
    if not sizes:
        raise ValueError("sizes must be non-empty")
    if sum(sizes) != n:
        raise ValueError(f"sizes sum to {sum(sizes)}, expected n={n}")
    return sizes


def variable_star_local(skills: np.ndarray, sizes: Sequence[int]) -> VariableGrouping:
    """Star-mode local grouping for variable group sizes (see module docs)."""
    array = as_skill_array(skills)
    size_list = _validate_sizes(len(array), sizes)
    order = descending_order(array)
    k = len(size_list)
    teachers = order[:k]
    rest = order[k:]
    groups = []
    cursor = 0
    for gi, size in enumerate(size_list):
        block = rest[cursor : cursor + size - 1]
        cursor += size - 1
        groups.append(np.concatenate(([teachers[gi]], block)).astype(np.intp))
    return VariableGrouping(groups=tuple(groups))


def variable_clique_local(skills: np.ndarray, sizes: Sequence[int]) -> VariableGrouping:
    """Clique-mode local grouping: capacity-aware round-robin deal."""
    array = as_skill_array(skills)
    size_list = _validate_sizes(len(array), sizes)
    order = descending_order(array)
    k = len(size_list)
    groups: list[list[int]] = [[] for _ in range(k)]
    gi = 0
    for member in order:
        # Advance to the next group with spare capacity (cyclically).
        for _ in range(k):
            if len(groups[gi]) < size_list[gi]:
                break
            gi = (gi + 1) % k
        groups[gi].append(int(member))
        gi = (gi + 1) % k
    return VariableGrouping(groups=tuple(np.array(g, dtype=np.intp) for g in groups))


def update_variable(
    skills: np.ndarray,
    grouping: VariableGrouping,
    gain: GainFunction,
    mode: str,
) -> np.ndarray:
    """Post-round skills for a variable-size grouping.

    Args:
        mode: ``"star"`` or ``"clique"``.
    """
    array = np.asarray(skills, dtype=np.float64)
    if grouping.n != len(array):
        raise ValueError(f"grouping covers {grouping.n} members, skills has {len(array)}")
    new = array.copy()
    for members in grouping.groups:
        values = array[members]
        if mode == "star":
            teacher = float(values.max())
            new[members] = values + np.asarray(gain.directed_gain(teacher, values))
        elif mode == "clique":
            for local, s in enumerate(values):
                teachers = values[values > s]
                if teachers.size:
                    total = float(np.sum(gain.directed_gain(teachers, float(s))))
                    new[members[local]] = s + total / teachers.size
        else:
            raise ValueError(f"mode must be 'star' or 'clique', got {mode!r}")
    return new


@dataclass(frozen=True)
class VariableSimulationResult:
    """Trajectory of a variable-size-group simulation."""

    sizes: tuple[int, ...]
    mode: str
    round_gains: tuple[float, ...]
    final_skills: np.ndarray

    @property
    def total_gain(self) -> float:
        """Aggregated learning gain over all rounds."""
        return float(sum(self.round_gains))


def simulate_variable(
    skills: np.ndarray,
    sizes: Sequence[int],
    *,
    alpha: int,
    rate: float,
    mode: str = "star",
) -> VariableSimulationResult:
    """Run the DyGroups adaptation with variable group sizes for α rounds."""
    array = as_skill_array(skills)
    size_list = _validate_sizes(len(array), sizes)
    alpha = require_positive_int(alpha, name="alpha")
    gain = LinearGain(require_learning_rate(rate))
    grouper = variable_star_local if mode == "star" else variable_clique_local
    if mode not in ("star", "clique"):
        raise ValueError(f"mode must be 'star' or 'clique', got {mode!r}")

    current = array
    gains = []
    for _ in range(alpha):
        grouping = grouper(current, size_list)
        updated = update_variable(current, grouping, gain, mode)
        gains.append(float(np.sum(updated - current)))
        current = updated
    return VariableSimulationResult(
        sizes=tuple(size_list),
        mode=mode,
        round_gains=tuple(gains),
        final_skills=current,
    )
