"""Affinity-aware bi-criteria grouping (Section VII, "Alternative formulations").

The paper sketches a future direction: "a time-evolving affinity among
individuals [8] that impact learning … solve a bi-criteria optimization
problem, with the goal of forming dynamic groups where both affinity and
skill evolves across rounds."

This module implements that sketch:

* an :class:`AffinityState` — a symmetric pairwise-affinity matrix that
  *evolves*: affinities of co-grouped pairs grow toward 1 by a relaxation
  factor each round, others decay;
* a bi-criteria objective ``(1 − λ)·LG(G) + λ·A(G)`` where ``A(G)`` is
  the mean within-group affinity (both terms normalized to comparable
  scale);
* :class:`AffinityAwarePolicy` — seeds from DyGroups' grouping, then
  hill-climbs member swaps on the bi-criteria objective.

With ``λ = 0`` the policy reduces to (a local search around) DyGroups;
with ``λ = 1`` it greedily keeps friends together.
"""

from __future__ import annotations

import numpy as np

from repro._validation import (
    require_divisible_groups,
    require_learning_rate,
    require_positive_int,
    require_probability,
)
from repro.baselines._round_gain import group_gain_sorted
from repro.core.grouping import Grouping
from repro.core.interactions import get_mode
from repro.core.local import dygroups_clique_local, dygroups_star_local
from repro.core.simulation import GroupingPolicy

__all__ = ["AffinityState", "AffinityAwarePolicy", "mean_within_group_affinity"]


class AffinityState:
    """A symmetric, evolving pairwise-affinity matrix in [0, 1].

    Args:
        n: number of participants.
        initial: starting affinity for every pair (default 0.1 — mostly
            strangers).
        growth: relaxation factor toward 1 for co-grouped pairs.
        decay: multiplicative decay for separated pairs.
    """

    def __init__(
        self,
        n: int,
        *,
        initial: float = 0.1,
        growth: float = 0.3,
        decay: float = 0.95,
    ) -> None:
        n = require_positive_int(n, name="n")
        initial = require_probability(initial, name="initial")
        self._growth = require_probability(growth, name="growth")
        self._decay = require_probability(decay, name="decay")
        self._matrix = np.full((n, n), initial, dtype=np.float64)
        np.fill_diagonal(self._matrix, 0.0)

    @property
    def matrix(self) -> np.ndarray:
        """The current affinity matrix (copy)."""
        return self._matrix.copy()

    @property
    def n(self) -> int:
        """Number of participants."""
        return self._matrix.shape[0]

    def affinity(self, i: int, j: int) -> float:
        """Current affinity of the pair ``(i, j)``."""
        return float(self._matrix[i, j])

    def evolve(self, grouping: Grouping) -> None:
        """Advance one round: co-grouped pairs bond, others drift apart."""
        if grouping.n != self.n:
            raise ValueError(f"grouping covers {grouping.n} members, expected {self.n}")
        together = np.zeros_like(self._matrix, dtype=bool)
        for group in grouping:
            idx = group.indices()
            together[np.ix_(idx, idx)] = True
        np.fill_diagonal(together, False)
        grown = self._matrix + self._growth * (1.0 - self._matrix)
        decayed = self._matrix * self._decay
        self._matrix = np.where(together, grown, decayed)
        np.fill_diagonal(self._matrix, 0.0)


def mean_within_group_affinity(grouping: Grouping, affinity: np.ndarray) -> float:
    """Mean pairwise affinity over all within-group pairs of a grouping."""
    total = 0.0
    pairs = 0
    for group in grouping:
        idx = group.indices()
        size = len(idx)
        if size < 2:
            continue
        block = affinity[np.ix_(idx, idx)]
        total += float(block.sum()) / 2.0
        pairs += size * (size - 1) // 2
    if pairs == 0:
        raise ValueError("grouping has no within-group pairs")
    return total / pairs


class AffinityAwarePolicy(GroupingPolicy):
    """Bi-criteria grouping: trade off learning gain against affinity.

    Args:
        state: the evolving affinity state (shared across rounds; the
            policy advances it after each proposal).  ``None`` — the
            registry default — creates a fresh :class:`AffinityState`
            lazily from the first proposal's population size, and
            :meth:`reset` discards it so back-to-back simulations start
            from strangers again.
        mode: interaction mode for gain scoring.
        rate: linear learning rate for gain scoring.
        weight: λ ∈ [0, 1]; 0 = pure learning gain, 1 = pure affinity.
        sweeps: swap-improvement passes over the population per round.
        initial: starting pairwise affinity for a lazily created state.
        growth: co-grouped relaxation factor for a lazily created state.
        decay: separation decay for a lazily created state.
    """

    name = "affinity-aware"

    def __init__(
        self,
        state: "AffinityState | None" = None,
        *,
        mode: str = "star",
        rate: float = 0.5,
        weight: float = 0.3,
        sweeps: int = 2,
        initial: float = 0.1,
        growth: float = 0.3,
        decay: float = 0.95,
    ) -> None:
        self._shared_state = state
        self._state = state
        self._mode_name = get_mode(mode).name
        self._rate = require_learning_rate(rate)
        self._weight = require_probability(weight, name="weight")
        self._sweeps = require_positive_int(sweeps, name="sweeps")
        self._initial = require_probability(initial, name="initial")
        self._growth = require_probability(growth, name="growth")
        self._decay = require_probability(decay, name="decay")
        self._previous: Grouping | None = None

    def reset(self) -> None:
        self._previous = None
        if self._shared_state is None:
            self._state = None

    @property
    def required_mode(self) -> str:
        """The interaction mode the internal gain scoring assumes."""
        return self._mode_name

    def _objective(self, groups: list[np.ndarray], skills: np.ndarray) -> float:
        gain_total = 0.0
        for members in groups:
            values = np.sort(skills[members])[::-1]
            gain_total += group_gain_sorted(values, self._rate, self._mode_name)
        # Normalize gain by its DyGroups upper-bound scale so both terms
        # live on comparable [0, 1]-ish scales.
        scale = max(float(np.sum(skills.max() - skills)), 1e-12)
        grouping = Grouping(groups)
        affinity_term = mean_within_group_affinity(grouping, self._state._matrix)
        return (1.0 - self._weight) * (gain_total / scale) + self._weight * affinity_term

    def propose(self, skills: np.ndarray, k: int, rng: np.random.Generator) -> Grouping:
        skills = np.asarray(skills, dtype=np.float64)
        n = len(skills)
        size = require_divisible_groups(n, k)
        if self._state is None:
            self._state = AffinityState(
                n, initial=self._initial, growth=self._growth, decay=self._decay
            )
        seed_grouping = (
            dygroups_star_local(skills, k)
            if self._mode_name == "star"
            else dygroups_clique_local(skills, k)
        )
        # Candidate starts: the gain-optimal grouping, and — once
        # affinities exist — the previous round's grouping, which is the
        # natural affinity maximizer (friends stay together).  The search
        # refines whichever scores best on the bi-criteria objective.
        candidates = [seed_grouping]
        if self._previous is not None and self._previous.n == n and self._previous.k == k:
            candidates.append(self._previous)
        scored = [
            ([g.indices().copy() for g in candidate], candidate) for candidate in candidates
        ]
        groups, _ = max(scored, key=lambda pair: self._objective(pair[0], skills))
        best = self._objective(groups, skills)

        for _ in range(self._sweeps):
            improved = False
            for _ in range(n):
                g1, g2 = rng.choice(k, size=2, replace=False)
                p1 = int(rng.integers(size))
                p2 = int(rng.integers(size))
                groups[g1][p1], groups[g2][p2] = groups[g2][p2], groups[g1][p1]
                candidate = self._objective(groups, skills)
                if candidate > best + 1e-12:
                    best = candidate
                    improved = True
                else:
                    groups[g1][p1], groups[g2][p2] = groups[g2][p2], groups[g1][p1]
            if not improved:
                break

        grouping = Grouping(groups)
        self._state.evolve(grouping)
        self._previous = grouping
        return grouping
