"""Concave learning-gain functions (Section VII, "Other learning gain functions").

The paper notes that DyGroups can be *adapted* to any concave learning
gain, but that for non-linear concave functions the greedy algorithm is
no longer optimal.  This module provides a family of well-behaved concave
gain functions and exposes them through the standard
:class:`~repro.core.gain_functions.GainFunction` interface, so every
algorithm, simulation, and benchmark runs unchanged on top of them (the
clique update automatically falls back to the exact pairwise computation).

All members satisfy the model's sanity conditions for any rate
``r ∈ (0, 1)``:

* ``f(0) = 0``;
* ``f`` is concave and strictly increasing;
* ``f(Δ) ≤ r·Δ ≤ Δ`` — a learner never overtakes its teacher.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_learning_rate
from repro.core.gain_functions import ArrayLike, GainFunction

__all__ = ["LogGain", "SqrtGain", "PowerGain", "CONCAVE_GAINS"]


class _ConcaveGain(GainFunction):
    """Shared plumbing for the concave family."""

    __slots__ = ("_rate",)

    def __init__(self, rate: float) -> None:
        self._rate = require_learning_rate(rate)

    @property
    def rate(self) -> float:
        """The learning-rate scale ``r``."""
        return self._rate

    @property
    def is_linear(self) -> bool:
        return False

    def _transform(self, delta: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, delta: ArrayLike) -> ArrayLike:
        delta = np.asarray(delta, dtype=np.float64)
        if np.any(delta < 0.0):
            raise ValueError("skill difference delta must be non-negative")
        result = self._rate * self._transform(delta)
        return float(result) if result.ndim == 0 else result

    def __repr__(self) -> str:
        return f"{type(self).__name__}(rate={self._rate})"


class LogGain(_ConcaveGain):
    """``f(Δ) = r·ln(1 + Δ)`` — logarithmic saturation.

    ``ln(1 + Δ) ≤ Δ`` for all ``Δ ≥ 0``, so learners never overtake.
    """

    def _transform(self, delta: np.ndarray) -> np.ndarray:
        return np.log1p(delta)


class SqrtGain(_ConcaveGain):
    """``f(Δ) = 2r·(√(1 + Δ) − 1)`` — square-root saturation.

    The factor 2 normalizes the derivative at 0 to ``r``, matching the
    linear gain for small skill gaps; ``2(√(1+Δ) − 1) ≤ Δ`` always.
    """

    def _transform(self, delta: np.ndarray) -> np.ndarray:
        return 2.0 * (np.sqrt(1.0 + delta) - 1.0)


class PowerGain(_ConcaveGain):
    """``f(Δ) = r·((1 + Δ)^γ − 1)/γ`` with exponent ``γ ∈ (0, 1)``.

    A one-parameter concave family interpolating between the logarithmic
    (``γ → 0``) and linear (``γ → 1``) behaviours; the derivative at 0 is
    ``r`` for every ``γ``.
    """

    __slots__ = ("_gamma",)

    def __init__(self, rate: float, gamma: float = 0.5) -> None:
        super().__init__(rate)
        if not 0.0 < gamma < 1.0:
            raise ValueError(f"gamma must lie in (0, 1), got {gamma}")
        self._gamma = float(gamma)

    @property
    def gamma(self) -> float:
        """The concavity exponent γ."""
        return self._gamma

    def _transform(self, delta: np.ndarray) -> np.ndarray:
        return ((1.0 + delta) ** self._gamma - 1.0) / self._gamma

    def __repr__(self) -> str:
        return f"PowerGain(rate={self._rate}, gamma={self._gamma})"


#: Named constructors for the CLI / ablation benches.
CONCAVE_GAINS = {
    "log": LogGain,
    "sqrt": SqrtGain,
    "power": PowerGain,
}
