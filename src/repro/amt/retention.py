"""Worker retention model (Observations III and Figure 3 / 4(b)).

The paper observes — anecdotally but consistently across both human
experiments — that workers under DyGroups stayed in the process at higher
rates than under the baselines, and hypothesizes that "the rate of skill
improvement may be an important factor towards retaining participants".

We encode exactly that hypothesis as a logistic dropout model: after each
round, an active worker independently stays with probability

    ``P(stay) = sigmoid(base_logit + sensitivity · normalized_gain)``

where ``normalized_gain`` is the worker's latent gain this round divided
by the learning-rate-scaled maximum possible gain, so the sensitivity
parameter is comparable across configurations.  Workers who experienced
no learning drop at the base rate; fast learners almost always stay.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RetentionModel"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


@dataclass(frozen=True, slots=True)
class RetentionModel:
    """Gain-dependent logistic retention.

    Attributes:
        base_logit: log-odds of staying for a worker with zero gain.
            The default (≈1.1) yields ~75% per-round base retention,
            matching the drop-off the paper's Figure 3 shows for the
            weakest baseline.
        sensitivity: log-odds added per unit of normalized round gain.
    """

    base_logit: float = 1.1
    sensitivity: float = 4.0

    def stay_probabilities(self, normalized_gains: np.ndarray) -> np.ndarray:
        """Per-worker probability of staying after this round.

        Args:
            normalized_gains: each worker's round gain divided by the
                maximum gain achievable this round (values in [0, 1];
                values above 1 are clipped defensively).
        """
        gains = np.clip(np.asarray(normalized_gains, dtype=np.float64), 0.0, 1.0)
        return _sigmoid(self.base_logit + self.sensitivity * gains)

    def sample_stays(self, normalized_gains: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Boolean stay/leave draw for each worker."""
        return rng.random(len(np.atleast_1d(normalized_gains))) < self.stay_probabilities(
            normalized_gains
        )
