"""Worker populations with matched skill distributions.

Experiment-1 splits 64 recruits into two populations of 32 "random, under
the constraint that the two populations have very similar skill
distributions, and in particular the same average skill"; Experiment-2
does the same with four populations.  :func:`matched_split` reproduces
that protocol with a stratified deal: sort workers by latent skill, walk
the sorted list in blocks of ``m`` (the number of populations), and deal
each block's members to distinct populations in a random order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.amt.worker import Worker

__all__ = ["Population", "matched_split"]


@dataclass
class Population:
    """A named cohort of workers following one grouping policy.

    Attributes:
        name: the policy label this population follows.
        workers: the cohort, in recruitment order.
    """

    name: str
    workers: list[Worker] = field(default_factory=list)

    @property
    def n(self) -> int:
        """Cohort size (including dropped-out workers)."""
        return len(self.workers)

    @property
    def active_workers(self) -> list[Worker]:
        """Workers still participating."""
        return [w for w in self.workers if w.active]

    def latent_skills(self, *, active_only: bool = False) -> np.ndarray:
        """Latent skills of the cohort (optionally only active workers)."""
        pool = self.active_workers if active_only else self.workers
        return np.array([w.latent_skill for w in pool], dtype=np.float64)

    def retention_fraction(self) -> float:
        """Fraction of the original cohort still active."""
        if not self.workers:
            raise ValueError("population is empty")
        return len(self.active_workers) / len(self.workers)

    def mean_latent(self, *, active_only: bool = False) -> float:
        """Mean latent skill."""
        skills = self.latent_skills(active_only=active_only)
        if skills.size == 0:
            return 0.0
        return float(skills.mean())


def matched_split(
    workers: list[Worker],
    names: list[str],
    rng: np.random.Generator,
) -> list[Population]:
    """Split workers into ``len(names)`` populations with matched skills.

    Stratified deal (see module docstring): consecutive blocks of the
    skill-sorted list are dealt one member per population in random
    order, so every population receives one member from each skill
    stratum and the population means are nearly identical.

    Raises:
        ValueError: if the worker count is not a multiple of the number
            of populations.
    """
    m = len(names)
    if m == 0:
        raise ValueError("need at least one population name")
    if len(workers) % m != 0:
        raise ValueError(f"{len(workers)} workers cannot split evenly into {m} populations")
    order = sorted(range(len(workers)), key=lambda i: workers[i].latent_skill, reverse=True)
    populations = [Population(name=name) for name in names]
    for block_start in range(0, len(order), m):
        block = order[block_start : block_start + m]
        deal = rng.permutation(m)
        for slot, member in zip(deal, block):
            populations[slot].workers.append(workers[member])
    return populations
