"""The two human-subject experiments of Section V-A, simulated.

Experiment-1: 64 recruits, split into two matched populations of 32 that
follow DyGroups and K-Means respectively, with ``k = 4`` groups,
``r = 0.5``, ``α = 3`` rounds.  Experiment-2: 128 recruits, four matched
populations of 32 following DyGroups, K-Means, LPA and
Percentile-Partitions, ``α = 2``.

Protocol per population and round (mirroring the paper's HIT loop):

1. *Assessment* — every active worker takes a 10-question test; the
   Laplace-smoothed score is the skill estimate the policy sees.
2. *Group formation* — the population's policy groups the participating
   workers on the estimated skills.
3. *Peer learning* — latent skills advance per the interaction mode.
4. *Retention* — each active worker independently stays with a
   gain-dependent probability (:class:`~repro.amt.retention.RetentionModel`).

If dropouts leave the active count indivisible by ``k``, a random subset
of that size sits the round out (they remain active, learn nothing);
if fewer than ``2k`` workers remain, learning stops and the trace goes
flat — exactly what an under-enrolled HIT round would look like.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.amt.assessment import DEFAULT_QUESTIONS, estimate_skills
from repro.amt.population import Population, matched_split
from repro.amt.retention import RetentionModel
from repro.amt.worker import make_workers
from repro.core.interactions import get_mode
from repro.core.gain_functions import LinearGain
from repro.core.simulation import GroupingPolicy

__all__ = [
    "AmtConfig",
    "PopulationTrace",
    "AmtExperimentResult",
    "run_population",
    "run_experiment_1",
    "run_experiment_2",
    "welch_t_statistic",
    "EXPERIMENT_1_POLICIES",
    "EXPERIMENT_2_POLICIES",
]

#: Policy line-up of Experiment-1.
EXPERIMENT_1_POLICIES: tuple[str, ...] = ("dygroups", "kmeans")
#: Policy line-up of Experiment-2.
EXPERIMENT_2_POLICIES: tuple[str, ...] = ("dygroups", "kmeans", "lpa", "percentile")


@dataclass(frozen=True)
class AmtConfig:
    """Parameters of one simulated AMT deployment.

    Defaults follow the paper's justified choices: ``r = 0.5``, ``k = 4``
    groups over populations of 32, star interactions, 10-question HITs.
    """

    population_size: int = 32
    k: int = 4
    rate: float = 0.5
    alpha: int = 3
    #: The paper asks workers to "answer the questions collaboratively, by
    #: consulting with the rest of their peers in their group" — all-pairs
    #: interaction, i.e. the Clique mode.
    mode: str = "clique"
    questions: int = DEFAULT_QUESTIONS
    retention: RetentionModel = field(default_factory=RetentionModel)
    skill_mean: float = 0.45
    skill_spread: float = 0.22

    def __post_init__(self) -> None:
        if self.population_size % self.k != 0:
            raise ValueError(
                f"population_size={self.population_size} must be divisible by k={self.k}"
            )
        if self.alpha < 1:
            raise ValueError(f"alpha must be >= 1, got {self.alpha}")


@dataclass
class PopulationTrace:
    """Per-round measurements for one population.

    Attributes:
        policy_name: the grouping policy the population followed.
        mean_scores: mean assessment estimate of the *whole cohort*,
            indexed by round — entry 0 is the pre-qualification, entry
            ``t`` the post-assessment after round ``t`` (length ``α+1``).
            Dropped-out workers keep their last latent skill, so the
            series measures total educational welfare without survivor
            bias (a cohort that retains weak learners is not penalized).
        round_gains: aggregate latent learning gain per round (length α).
        retention: fraction of the original cohort active after each
            round, starting at 1.0 (length ``α + 1``).
    """

    policy_name: str
    mean_scores: list[float] = field(default_factory=list)
    round_gains: list[float] = field(default_factory=list)
    retention: list[float] = field(default_factory=list)

    @property
    def total_gain(self) -> float:
        """Aggregate latent gain across all rounds."""
        return float(sum(self.round_gains))


@dataclass
class AmtExperimentResult:
    """Outcome of one simulated experiment (all populations)."""

    config: AmtConfig
    traces: dict[str, PopulationTrace]

    def ranking(self) -> list[str]:
        """Policy names sorted by total gain, best first."""
        return sorted(self.traces, key=lambda name: self.traces[name].total_gain, reverse=True)


def run_population(
    population: Population,
    policy: GroupingPolicy,
    config: AmtConfig,
    rng: np.random.Generator,
) -> PopulationTrace:
    """Run the α-round HIT loop for one population; see module docstring."""
    mode = get_mode(config.mode)
    gain_fn = LinearGain(config.rate)
    policy.reset()
    trace = PopulationTrace(policy_name=population.name)

    pre_estimates = estimate_skills(
        population.latent_skills(), rng, questions=config.questions
    )
    trace.mean_scores.append(float(pre_estimates.mean()))
    trace.retention.append(population.retention_fraction())

    for _ in range(config.alpha):
        active = population.active_workers
        participating_count = (len(active) // config.k) * config.k
        round_gain = 0.0
        if participating_count >= 2 * config.k:
            chosen_idx = rng.choice(len(active), size=participating_count, replace=False)
            chosen = [active[i] for i in chosen_idx]
            latents = np.array([w.latent_skill for w in chosen], dtype=np.float64)
            estimates = estimate_skills(latents, rng, questions=config.questions)
            grouping = policy.propose(estimates, config.k, rng)
            # The AMT protocol groups on noisy *estimates* but learning
            # acts on *latent* skills — two different arrays, which no
            # round kernel models (kernels propose and update the same
            # vector, and their gain would count estimation error).
            updated = mode.update(latents, grouping, gain_fn)  # noqa: DYG204
            for worker, new_latent in zip(chosen, updated):
                worker.learn(float(new_latent))
            round_gain = float(np.sum(updated - latents))
            sitting_out = [w for i, w in enumerate(active) if i not in set(chosen_idx.tolist())]
            for worker in sitting_out:
                worker.learn(worker.latent_skill)
        else:
            for worker in active:
                worker.learn(worker.latent_skill)
        trace.round_gains.append(round_gain)

        # Post-assessment over the whole cohort (see PopulationTrace).
        post = estimate_skills(population.latent_skills(), rng, questions=config.questions)
        trace.mean_scores.append(float(post.mean()))

        # Retention draw: gain normalized by the largest increment the
        # learning rate allows on the unit skill scale.
        normalized = np.array([w.last_gain for w in active], dtype=np.float64) / config.rate
        stays = config.retention.sample_stays(normalized, rng)
        for worker, stay in zip(active, stays):
            worker.active = bool(stay)
        trace.retention.append(population.retention_fraction())
    return trace


def _run_experiment(
    policies: tuple[str, ...],
    config: AmtConfig,
    seed: int | None,
) -> AmtExperimentResult:
    # Imported here: the registry reaches this module through the
    # extensions package, so a module-level import would be circular.
    from repro.baselines.registry import make_policy

    rng = np.random.default_rng(seed)
    total = config.population_size * len(policies)
    workers = make_workers(total, rng, mean=config.skill_mean, spread=config.skill_spread)
    populations = matched_split(workers, list(policies), rng)
    traces: dict[str, PopulationTrace] = {}
    for population in populations:
        policy = make_policy(population.name, mode=config.mode, rate=config.rate)
        traces[population.name] = run_population(population, policy, config, rng)
    return AmtExperimentResult(config=config, traces=traces)


def run_experiment_1(seed: int | None = 0, config: AmtConfig | None = None) -> AmtExperimentResult:
    """Experiment-1: DyGroups vs K-Means, N = 64, α = 3 (Figures 1–3)."""
    config = config if config is not None else AmtConfig(alpha=3)
    return _run_experiment(EXPERIMENT_1_POLICIES, config, seed)


def run_experiment_2(seed: int | None = 0, config: AmtConfig | None = None) -> AmtExperimentResult:
    """Experiment-2: four policies, N = 128, α = 2 (Figure 4)."""
    config = config if config is not None else AmtConfig(alpha=2)
    if config.alpha != 2:
        config = replace(config, alpha=2)
    return _run_experiment(EXPERIMENT_2_POLICIES, config, seed)


def welch_t_statistic(sample_a: np.ndarray, sample_b: np.ndarray) -> tuple[float, float]:
    """Welch's t statistic and two-sided p-value for unequal variances.

    Used to reproduce the paper's statistical-significance claims
    (Observation II) without a scipy dependency in the core package.
    Returns ``(t, p)``.
    """
    a = np.asarray(sample_a, dtype=np.float64)
    b = np.asarray(sample_b, dtype=np.float64)
    if a.size < 2 or b.size < 2:
        raise ValueError("both samples need at least two observations")
    var_a = a.var(ddof=1) / a.size
    var_b = b.var(ddof=1) / b.size
    pooled = var_a + var_b
    if pooled == 0.0:  # noqa: DYG302 — exact zero guard
        raise ValueError("both samples are constant; t statistic undefined")
    t = float((a.mean() - b.mean()) / np.sqrt(pooled))
    df = pooled**2 / (var_a**2 / (a.size - 1) + var_b**2 / (b.size - 1))
    p = float(2.0 * _student_t_sf(abs(t), df))
    return t, p


def _student_t_sf(t: float, df: float) -> float:
    """Survival function of Student's t via the regularized incomplete beta.

    ``P(T > t) = I_{df/(df+t²)}(df/2, 1/2) / 2`` for ``t ≥ 0``.
    """
    x = df / (df + t * t)
    return 0.5 * _reg_inc_beta(df / 2.0, 0.5, x)


def _reg_inc_beta(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta ``I_x(a, b)`` by continued fraction."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    import math

    log_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log(1.0 - x)
    )
    front = math.exp(log_front)
    if x > (a + 1.0) / (a + b + 2.0):
        # Use the symmetry relation for faster convergence.
        return 1.0 - _reg_inc_beta(b, a, 1.0 - x)
    # Lentz's continued-fraction evaluation.
    tiny = 1e-300
    f, c, d = 1.0, 1.0, 0.0
    for i in range(200):
        m = i // 2
        if i == 0:
            numerator = 1.0
        elif i % 2 == 0:
            numerator = (m * (b - m) * x) / ((a + 2 * m - 1) * (a + 2 * m))
        else:
            numerator = -((a + m) * (a + b + m) * x) / ((a + 2 * m) * (a + 2 * m + 1))
        d = 1.0 + numerator * d
        d = tiny if abs(d) < tiny else d
        d = 1.0 / d
        c = 1.0 + numerator / c
        c = tiny if abs(c) < tiny else c
        delta = c * d
        f *= delta
        if abs(delta - 1.0) < 1e-12:
            break
    return front * (f - 1.0) / a
