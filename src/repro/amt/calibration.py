"""The paper's pre-deployment calibration study, simulated.

Before the main experiments, the authors "made several initial
deployments, where we hired workers of varying expertise … and formed
random groups of different size: small groups of size 2, 3, 4, 5, and
large groups of size 10, 12, 15, and let them interact across multiple
rounds", learning that (a) the effective learning rate is about half the
skill difference (``r ≈ 0.5``), and (b) "groups are most interactive and
manageable when they contain 4-5 people".

This module reproduces that study end to end:

* a ground-truth *interactivity* model — the fraction of a group's
  potential learning actually realized — that peaks around size 4-5 and
  decays for crowded groups (large groups are hard to manage) and for
  pairs (fewer teachers to learn from);
* :func:`run_calibration` — random-group deployments at each size with
  pre-/post-assessments.  The effective rate is recovered by the
  ratio-of-sums estimator ``Σ gains / Σ gaps`` where the gap to the
  group's best member is measured on an *independent* second assessment:
  sharing one assessment between the gap and the gain induces a
  regression-to-the-mean inflation (a worker whose test under-measured
  shows both a larger gap and a larger "gain"), which the independent
  draw removes.  The remaining bias is a mild attenuation (the max of
  noisy scores overstates the teacher), so recovered rates sit slightly
  *below* the truth — close enough for the paper's "about half the
  difference" reading;
* :func:`estimate_learning_rate` — the underlying OLS helper for clean
  (gap, gain) observations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import require_learning_rate, require_positive_int
from repro.amt.assessment import DEFAULT_QUESTIONS, assess
from repro.amt.worker import make_workers
from repro.metrics.fit import fit_line

__all__ = [
    "interactivity",
    "CalibrationResult",
    "run_calibration",
    "estimate_learning_rate",
    "best_group_size",
]


def interactivity(size: int) -> float:
    """Fraction of potential learning a group of ``size`` realizes.

    Ground-truth model behind the simulated calibration: pairs lack
    teacher diversity, 4-5-person groups are ideal, and interactivity
    decays as groups become hard to moderate (the paper's qualitative
    finding).  Values lie in (0, 1] with the maximum at size 4.
    """
    size = require_positive_int(size, name="size")
    if size < 2:
        raise ValueError("a group needs at least 2 members to interact")
    # Smooth unimodal shape: rises to 1.0 at size 4, gently decays after.
    if size <= 4:
        return 0.55 + 0.15 * (size - 1)
    return max(0.25, 1.0 - 0.075 * (size - 4))


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of one simulated calibration deployment.

    Attributes:
        group_size: members per group in this deployment.
        estimated_rate: learning rate recovered from the assessments.
        mean_gain: mean per-worker latent gain per round.
        interactivity: the ground-truth interactivity used.
    """

    group_size: int
    estimated_rate: float
    mean_gain: float
    interactivity: float


def run_calibration(
    group_size: int,
    *,
    groups: int = 30,
    rounds: int = 3,
    true_rate: float = 0.5,
    questions: int = DEFAULT_QUESTIONS,
    seed: int | None = 0,
) -> CalibrationResult:
    """Simulate one random-group deployment at a fixed group size.

    Workers interact in star mode with the effective rate
    ``true_rate · interactivity(group_size)``; assessments before and
    after each round provide the data the rate estimate is recovered
    from (see the module docstring for the estimator's design).
    """
    group_size = require_positive_int(group_size, name="group_size")
    groups = require_positive_int(groups, name="groups")
    rounds = require_positive_int(rounds, name="rounds")
    true_rate = require_learning_rate(true_rate)
    rng = np.random.default_rng(seed)

    n = groups * group_size
    workers = make_workers(n, rng)
    latents = np.array([w.latent_skill for w in workers])
    effective = true_rate * interactivity(group_size)

    gap_sum = 0.0
    gain_sum = 0.0
    total_gain = 0.0
    for _ in range(rounds):
        order = rng.permutation(n)
        # Two independent pre-assessments: A anchors the measured gain,
        # B measures the gap to the group's best — sharing one test would
        # inflate the estimate through regression to the mean.
        pre_gain = assess(latents, rng, questions=questions)
        pre_gap = assess(latents, rng, questions=questions)
        new_latents = latents.copy()
        for g in range(groups):
            members = order[g * group_size : (g + 1) * group_size]
            teacher_latent = float(latents[members].max())
            new_latents[members] = latents[members] + effective * (
                teacher_latent - latents[members]
            )
        post = assess(new_latents, rng, questions=questions)
        group_of = np.empty(n, dtype=np.intp)
        for g in range(groups):
            group_of[order[g * group_size : (g + 1) * group_size]] = g
        best_estimate = np.full(groups, -np.inf)
        np.maximum.at(best_estimate, group_of, pre_gap)
        gap_sum += float(np.sum(best_estimate[group_of] - pre_gap))
        gain_sum += float(np.sum(post - pre_gain))
        total_gain += float(np.sum(new_latents - latents))
        latents = new_latents

    estimated = float(np.clip(gain_sum / gap_sum, 0.0, 1.0)) if gap_sum > 0 else 0.0
    return CalibrationResult(
        group_size=group_size,
        estimated_rate=estimated,
        mean_gain=total_gain / (n * rounds),
        interactivity=interactivity(group_size),
    )


def estimate_learning_rate(gaps: np.ndarray, gains: np.ndarray) -> float:
    """Recover the effective learning rate from (gap, gain) observations.

    Ordinary least squares of realized gain on the pre-round gap to the
    group's best member — the slope is the effective rate.  Clipped to
    [0, 1] because assessment noise can push the raw slope slightly out.
    """
    fit = fit_line(np.asarray(gaps, dtype=np.float64), np.asarray(gains, dtype=np.float64))
    return float(np.clip(fit.slope, 0.0, 1.0))


def best_group_size(
    sizes: tuple[int, ...] = (2, 3, 4, 5, 10, 12, 15),
    *,
    seed: int | None = 0,
) -> tuple[int, list[CalibrationResult]]:
    """Run the full calibration sweep; return (best size, all results).

    "Best" maximizes mean per-worker gain — the criterion that led the
    authors to 4-5-person groups.
    """
    if not sizes:
        raise ValueError("sizes must be non-empty")
    results = [run_calibration(size, seed=seed) for size in sizes]
    best = max(results, key=lambda r: r.mean_gain)
    return best.group_size, results
