"""Simulated AMT human-subject experiments (Section V-A substitution).

See DESIGN.md §4: the paper's ~200 Mechanical Turk workers learning
COVID-19 facts are substituted with a calibrated stochastic worker model —
latent skills, binomial 10-question assessments, the paper's learning
dynamics, and a gain-dependent retention model.
"""

from repro.amt.assessment import DEFAULT_QUESTIONS, assess, estimate_skills
from repro.amt.calibration import (
    CalibrationResult,
    best_group_size,
    estimate_learning_rate,
    interactivity,
    run_calibration,
)
from repro.amt.experiment import (
    EXPERIMENT_1_POLICIES,
    EXPERIMENT_2_POLICIES,
    AmtConfig,
    AmtExperimentResult,
    PopulationTrace,
    run_experiment_1,
    run_experiment_2,
    run_population,
    welch_t_statistic,
)
from repro.amt.population import Population, matched_split
from repro.amt.retention import RetentionModel
from repro.amt.worker import Worker, make_workers

__all__ = [
    "DEFAULT_QUESTIONS",
    "assess",
    "estimate_skills",
    "CalibrationResult",
    "best_group_size",
    "estimate_learning_rate",
    "interactivity",
    "run_calibration",
    "AmtConfig",
    "AmtExperimentResult",
    "PopulationTrace",
    "EXPERIMENT_1_POLICIES",
    "EXPERIMENT_2_POLICIES",
    "run_experiment_1",
    "run_experiment_2",
    "run_population",
    "welch_t_statistic",
    "Population",
    "matched_split",
    "RetentionModel",
    "Worker",
    "make_workers",
]
