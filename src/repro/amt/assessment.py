"""Skill assessment: the 10-question HIT tests.

Section V-A: "Each HIT consists of 10 questions … the skill of each
participant is set to be equal to the number of their correct answers,
divided by 10."  We model each question as an independent Bernoulli trial
with success probability equal to the worker's latent skill, so an
assessment is a Binomial(10, latent)/10 draw.

Raw scores can be exactly 0, which the grouping model cannot accept
(skills must be strictly positive), so :func:`estimate_skills` applies
Laplace (add-one) smoothing — ``(correct + 1) / (questions + 2)`` — the
standard fix, keeping estimates inside (0, 1).
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_positive_int

__all__ = ["assess", "estimate_skills", "DEFAULT_QUESTIONS"]

#: Questions per HIT in the paper's deployments.
DEFAULT_QUESTIONS: int = 10


def assess(
    latents: np.ndarray,
    rng: np.random.Generator,
    *,
    questions: int = DEFAULT_QUESTIONS,
) -> np.ndarray:
    """Raw assessment scores (#correct / #questions) for each latent skill."""
    questions = require_positive_int(questions, name="questions")
    latents = np.asarray(latents, dtype=np.float64)
    if np.any((latents <= 0.0) | (latents > 1.0)):
        raise ValueError("latent skills must lie in (0, 1]")
    correct = rng.binomial(questions, latents)
    return correct / questions


def estimate_skills(
    latents: np.ndarray,
    rng: np.random.Generator,
    *,
    questions: int = DEFAULT_QUESTIONS,
) -> np.ndarray:
    """Laplace-smoothed assessment estimates, strictly inside (0, 1).

    These are the skill values handed to the grouping policies — the
    platform never observes the latent truth.
    """
    questions = require_positive_int(questions, name="questions")
    latents = np.asarray(latents, dtype=np.float64)
    if np.any((latents <= 0.0) | (latents > 1.0)):
        raise ValueError("latent skills must lie in (0, 1]")
    correct = rng.binomial(questions, latents)
    return (correct + 1.0) / (questions + 2.0)
