"""Simulated AMT workers.

The paper's human-subject experiments (Section V-A) hire workers on
Amazon Mechanical Turk to learn COVID-19 facts through peer interaction.
We substitute a stochastic worker model (DESIGN.md §4): each worker
carries a *latent* skill in (0, 1] — the probability of answering an
assessment question correctly — which peer interaction moves according to
the paper's learning model.  What the platform (and the grouping policy)
observes is only the noisy assessment score.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Worker", "make_workers"]

_MIN_LATENT = 1e-6


@dataclass
class Worker:
    """One simulated AMT worker.

    Attributes:
        worker_id: stable identifier within the experiment.
        latent_skill: true probability of answering a question correctly.
        active: whether the worker is still participating (retention).
        round_gains: realized latent-skill gain per completed round.
    """

    worker_id: int
    latent_skill: float
    active: bool = True
    round_gains: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 < self.latent_skill <= 1.0:
            raise ValueError(f"latent_skill must be in (0, 1], got {self.latent_skill}")

    def learn(self, new_latent: float) -> None:
        """Record a round's learning outcome (latent skill can only rise)."""
        new_latent = float(min(new_latent, 1.0))
        if new_latent < self.latent_skill - 1e-12:
            raise ValueError(
                f"worker {self.worker_id}: latent skill cannot decrease "
                f"({self.latent_skill} -> {new_latent})"
            )
        self.round_gains.append(max(new_latent - self.latent_skill, 0.0))
        self.latent_skill = new_latent

    @property
    def last_gain(self) -> float:
        """Latent gain in the most recent completed round (0 before round 1)."""
        return self.round_gains[-1] if self.round_gains else 0.0


def make_workers(
    n: int,
    rng: np.random.Generator,
    *,
    mean: float = 0.45,
    spread: float = 0.22,
) -> list[Worker]:
    """Draw ``n`` workers with Beta-like latent skills.

    Latents are sampled from a clipped normal centred on ``mean`` — a
    reasonable stand-in for a crowd of varying familiarity with the HIT
    topic (the paper's pre-qualification found mixed expertise).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    latents = np.clip(rng.normal(mean, spread, size=n), _MIN_LATENT, 1.0)
    return [Worker(worker_id=i, latent_skill=float(s)) for i, s in enumerate(latents)]
