"""Shared argument-validation helpers.

Every public entry point in :mod:`repro` validates its inputs eagerly and
raises :class:`ValueError` / :class:`TypeError` with actionable messages.
Centralizing the checks keeps the error vocabulary consistent across the
core model, the baselines, and the experiment harness.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "as_skill_array",
    "require_positive_int",
    "require_int_in_range",
    "require_learning_rate",
    "require_probability",
    "require_divisible_groups",
]


def as_skill_array(skills: Sequence[float] | np.ndarray, *, name: str = "skills") -> np.ndarray:
    """Coerce ``skills`` to a fresh 1-D ``float64`` array of positive values.

    The paper's model (Section II) requires every skill to be a positive real
    number.  A *copy* is always returned so callers can mutate the result
    without aliasing the caller's data.

    Raises:
        TypeError: if ``skills`` cannot be interpreted as a numeric sequence.
        ValueError: if it is empty, not 1-D, non-finite, or non-positive.
    """
    try:
        array = np.array(skills, dtype=np.float64, copy=True)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a sequence of numbers, got {type(skills).__name__}") from exc
    if array.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {array.shape}")
    if array.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} must contain only finite values")
    if np.any(array <= 0.0):
        raise ValueError(f"{name} must be strictly positive (the model assumes positive skill levels)")
    return array


def require_positive_int(value: int, *, name: str) -> int:
    """Validate that ``value`` is a positive ``int`` (bools rejected)."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def require_int_in_range(value: int, *, name: str, low: int, high: int) -> int:
    """Validate that ``value`` is an ``int`` in the closed range [low, high]."""
    value = require_positive_int(value, name=name) if low > 0 else int(value)
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def require_learning_rate(rate: float, *, name: str = "rate") -> float:
    """Validate the learning-rate parameter ``r``.

    The paper restricts ``r`` to the open interval (0, 1) (it explicitly
    omits the degenerate case ``r = 1``; Section II, footnote 5).
    """
    if isinstance(rate, bool) or not isinstance(rate, (int, float, np.floating, np.integer)):
        raise TypeError(f"{name} must be a float, got {type(rate).__name__}")
    rate = float(rate)
    if not 0.0 < rate < 1.0:
        raise ValueError(f"{name} must lie in the open interval (0, 1), got {rate}")
    return rate


def require_probability(value: float, *, name: str) -> float:
    """Validate a probability-like parameter in the closed interval [0, 1]."""
    if isinstance(value, bool) or not isinstance(value, (int, float, np.floating, np.integer)):
        raise TypeError(f"{name} must be a float, got {type(value).__name__}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def require_divisible_groups(n: int, k: int) -> int:
    """Validate ``k`` groups over ``n`` members and return the group size.

    The TDG formulation (Problem 1) requires ``k`` non-overlapping
    *equi-sized* groups, hence ``k`` must divide ``n`` and every group must
    hold at least two members (a singleton group cannot learn).
    """
    n = require_positive_int(n, name="n")
    k = require_positive_int(k, name="k")
    if k > n:
        raise ValueError(f"cannot form k={k} groups from n={n} members")
    if n % k != 0:
        raise ValueError(f"k={k} must divide n={n} to form equi-sized groups")
    size = n // k
    if size < 2:
        raise ValueError(f"group size n/k must be at least 2 for learning to occur, got {size}")
    return size
