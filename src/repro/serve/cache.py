"""Content-addressed grouping memo with LRU bounds.

The DyGroups-Local groupers depend only on the *rank order* of the skill
array (Algorithms 2 and 3), so two cohorts whose skill values are the
same multiset get the same grouping *structure* — only the member labels
differ, and those follow from each query's own descending order.  The
memo exploits this:

* the **canonical key** is a BLAKE2b digest of ``(mode, k, n)`` plus the
  descending-sorted skill values — a content address of the multiset;
* the stored value is the finished :class:`~repro.core.grouping.Grouping`
  together with a digest of the raw (unsorted) array it was built from.

Lookups take two tiers:

1. **exact tier** — the query's raw bytes match a stored raw digest (the
   common case: replayed trajectories are bitwise equal), so the cached
   immutable ``Grouping`` is returned with no sort and no ``Grouping``
   construction — one hash and one dict probe;
2. **rank tier** — same multiset, different permutation: the grouping is
   re-labeled through the query's own stable argsort via
   :func:`repro.core.batch.flat_rank_listing`, which reproduces the
   scalar grouper bit for bit (property-tested in
   ``tests/properties/test_serve_properties.py``).

:meth:`GroupingCache.propose_batch` is the scheduler's entry point: it
answers exact-tier hits up front and vectorizes every remaining row into
one ``(m, n)`` argsort.

Hit/miss/eviction counters are exported through the process-global
:mod:`repro.obs.metrics` registry under ``serve.cache.*``; the memo is
thread-safe and bounded (least-recently-used eviction).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Sequence

import numpy as np

from repro.analysis import sanitizer as _sanitize
from repro.core.batch import flat_rank_listing
from repro.core.grouping import Grouping
from repro.obs import runtime as _obs

__all__ = ["GroupingCache"]


class _Entry:
    """One memoized grouping plus the raw-array digest it was built from."""

    __slots__ = ("raw_digest", "grouping")

    def __init__(self, raw_digest: bytes, grouping: Grouping) -> None:
        self.raw_digest = raw_digest
        self.grouping = grouping


def _digest(*parts: bytes) -> bytes:
    hasher = hashlib.blake2b(digest_size=16)
    for part in parts:
        hasher.update(part)
    return hasher.digest()


class GroupingCache:
    """Thread-safe LRU memo for DyGroups-Local groupings.

    Args:
        max_entries: LRU bound; the least recently used entry is evicted
            once the bound is exceeded.  Must be positive (a service that
            wants no cache passes ``cache_size=0`` and skips construction).
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if not isinstance(max_entries, int) or isinstance(max_entries, bool) or max_entries <= 0:
            raise ValueError(f"max_entries must be a positive int, got {max_entries!r}")
        self.max_entries = max_entries
        self._lock = _sanitize.lock("serve.cache")
        #: canonical (multiset) key → entry, in LRU order.
        self._entries: "OrderedDict[bytes, _Entry]" = OrderedDict()
        #: raw-array digest → canonical key (the exact-tier index).
        self._raw_index: dict[bytes, bytes] = {}
        registry = _obs.metrics_registry()
        # Registry counters are process-global (every cache in the process
        # shares the serve.cache.* series exported via /metrics); the
        # instance-local ints back stats(), which must describe THIS memo.
        self._hits = registry.counter("serve.cache.hits")
        self._hits_exact = registry.counter("serve.cache.hits_exact")
        self._misses = registry.counter("serve.cache.misses")
        self._evictions = registry.counter("serve.cache.evictions")
        self._local = {"hits": 0, "hits_exact": 0, "misses": 0, "evictions": 0}

    def __len__(self) -> int:
        return len(self._entries)

    # -- entry points ------------------------------------------------------

    def propose(self, skills: np.ndarray, k: int, mode: str) -> Grouping:
        """The memoized DyGroups-Local grouping of ``skills`` into ``k``.

        Bit-identical to ``dygroups_star_local`` / ``dygroups_clique_local``
        on the same inputs, whether served cold, from the exact tier, or
        re-labeled from the rank tier.

        Args:
            skills: 1-D positive ``float64`` skill array (validated by the
                caller; the service routes every request through
                :func:`repro._validation.as_skill_array` first).
            k: number of groups; must divide ``len(skills)``.
            mode: ``"star"`` or ``"clique"``.
        """
        array = np.ascontiguousarray(skills, dtype=np.float64)
        header = f"{mode}|{k}|{array.size}|".encode()
        raw_digest = _digest(header, array.tobytes())
        hit = self._probe_exact(raw_digest)
        if hit is not None:
            return hit
        # The canonical (multiset) key needs the descending order — which
        # doubles as the re-labeling map, so the sort is never wasted: hit
        # or miss, it builds the grouping.
        order = np.argsort(-array, kind="stable")
        return self._settle(array, order, k, mode, header, raw_digest)

    def propose_batch(
        self, arrays: Sequence[np.ndarray], k: int, mode: str
    ) -> list[Grouping]:
        """Memoized groupings for a batch of same-length skill vectors.

        Exact-tier hits are answered without sorting; all remaining rows
        share a single vectorized ``(m, n)`` argsort before being settled
        (counted and stored) individually.
        """
        results: "list[Grouping | None]" = [None] * len(arrays)
        pending: list[tuple[int, np.ndarray, bytes, bytes]] = []
        for i, skills in enumerate(arrays):
            array = np.ascontiguousarray(skills, dtype=np.float64)
            header = f"{mode}|{k}|{array.size}|".encode()
            raw_digest = _digest(header, array.tobytes())
            hit = self._probe_exact(raw_digest)
            if hit is not None:
                results[i] = hit
            else:
                pending.append((i, array, header, raw_digest))
        if pending:
            matrix = np.stack([array for _, array, _, _ in pending])
            orders = np.argsort(-matrix, axis=1, kind="stable")
            for (i, array, header, raw_digest), order in zip(pending, orders):
                results[i] = self._settle(array, order, k, mode, header, raw_digest)
        return results  # type: ignore[return-value]  # every slot is filled above

    # -- internals ---------------------------------------------------------

    def _probe_exact(self, raw_digest: bytes) -> "Grouping | None":
        """Exact-tier probe; counts a hit, never a miss (caller settles)."""
        with self._lock:
            canonical_key = self._raw_index.get(raw_digest)
            if canonical_key is None:
                return None
            entry = self._entries[canonical_key]
            self._entries.move_to_end(canonical_key)
            self._hits.inc()
            self._hits_exact.inc()
            self._local["hits"] += 1
            self._local["hits_exact"] += 1
            return entry.grouping

    def _settle(
        self,
        array: np.ndarray,
        order: np.ndarray,
        k: int,
        mode: str,
        header: bytes,
        raw_digest: bytes,
    ) -> Grouping:
        """Build the grouping from ``order``, count rank-hit/miss, store."""
        canonical_key = _digest(header, array[order].tobytes())
        listing = flat_rank_listing(array.size, k, mode)
        # order[listing] is a permutation of 0..n-1, so the trusted
        # constructor can skip the partition checks (hot on every miss).
        grouping = Grouping.from_members(
            order[listing].reshape(k, array.size // k)
        )
        with self._lock:
            previous = self._entries.get(canonical_key)
            if previous is not None:
                # Rank-tier hit: same multiset, new permutation.  Re-index
                # the exact tier to the newest raw form so replays of
                # *this* cohort hit it next time.
                self._hits.inc()
                self._local["hits"] += 1
                self._raw_index.pop(previous.raw_digest, None)
            else:
                self._misses.inc()
                self._local["misses"] += 1
            self._entries[canonical_key] = _Entry(raw_digest, grouping)
            self._entries.move_to_end(canonical_key)
            self._raw_index[raw_digest] = canonical_key
            while len(self._entries) > self.max_entries:
                _, evicted = self._entries.popitem(last=False)
                self._raw_index.pop(evicted.raw_digest, None)
                self._evictions.inc()
                self._local["evictions"] += 1
        return grouping

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """This memo's counts plus current size (for ``/healthz`` payloads)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                **self._local,
            }

    def clear(self) -> None:
        """Drop every entry (counters are left running)."""
        with self._lock:
            self._entries.clear()
            self._raw_index.clear()

    def __repr__(self) -> str:
        return f"GroupingCache(entries={len(self._entries)}, max_entries={self.max_entries})"
