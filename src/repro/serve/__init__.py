"""repro.serve — the grouping service layer.

Serves the reproduction's DyGroups engine as a long-running service:

* :mod:`repro.serve.sessions` — in-memory cohort store with TTL eviction;
* :mod:`repro.serve.cache` — content-addressed grouping memo (LRU);
* :mod:`repro.serve.scheduler` — micro-batching propose executor with
  bounded queues and explicit backpressure;
* :mod:`repro.serve.http` — stdlib JSON API (``dygroups serve``);
* :mod:`repro.serve.client` — in-process and urllib clients;
* :mod:`repro.serve.errors` — typed failures with HTTP statuses.

The service path is bit-identical to the offline engine: a cohort
advanced ``α`` rounds over the API reproduces ``simulate()`` with the
same seed exactly, whether proposals come from the scalar grouper, the
memo, or a vectorized batch (pinned by the integration and property
tests).
"""

from repro.serve.cache import GroupingCache
from repro.serve.client import HttpClient, InProcessClient
from repro.serve.config import ServeConfig
from repro.serve.errors import (
    CapacityExhausted,
    CohortNotFound,
    DuplicateJoin,
    InvalidRequest,
    MatchmakingDisabled,
    ParticipantNotFound,
    RequestTimeout,
    SchedulerSaturated,
    ServeError,
    ServiceClosed,
    SessionExpired,
)
from repro.serve.http import GroupingHTTPServer, run_server, start_server
from repro.serve.scheduler import BatchScheduler
from repro.serve.service import GroupingService
from repro.serve.sessions import CohortSession, SessionStore

__all__ = [
    "BatchScheduler",
    "CapacityExhausted",
    "CohortNotFound",
    "CohortSession",
    "DuplicateJoin",
    "GroupingCache",
    "GroupingHTTPServer",
    "GroupingService",
    "HttpClient",
    "InProcessClient",
    "InvalidRequest",
    "MatchmakingDisabled",
    "ParticipantNotFound",
    "RequestTimeout",
    "SchedulerSaturated",
    "ServeConfig",
    "ServeError",
    "ServiceClosed",
    "SessionExpired",
    "SessionStore",
    "run_server",
    "start_server",
]
