"""Stdlib HTTP front-end for the grouping service.

A :class:`GroupingHTTPServer` is a ``ThreadingHTTPServer`` whose handler
routes a small JSON API onto one :class:`~repro.serve.service.GroupingService`:

========  ==============================  =======================================
method    path                            operation
========  ==============================  =======================================
POST      ``/v1/cohorts``                 create a cohort (skills, k, mode, ...)
GET       ``/v1/cohorts/{id}``            inspect a cohort and its trajectory
POST      ``/v1/cohorts/{id}/rounds``     advance rounds (body ``{"rounds": m}``)
DELETE    ``/v1/cohorts/{id}``            remove a cohort
POST      ``/v1/join``                    join the matchmaking queue (202)
GET       ``/v1/participants/{id}``       participant status (waiting/matched/…)
DELETE    ``/v1/participants/{id}``       leave the matchmaking queue
GET       ``/v1/matchmaking``             queue depths, specs, condensed cohorts
GET       ``/healthz``                    liveness + cache stats
GET       ``/metrics``                    metrics-registry snapshot (JSON)
GET       ``/metrics?format=prometheus``  same registry, Prometheus text format
========  ==============================  =======================================

The ``/v1/join`` family requires ``dygroups serve --matchmaking``
(``ServeConfig.matchmaking``); without it those routes answer ``404
matchmaking_disabled``.  A successful join responds ``202 Accepted`` —
the participant is queued, not yet grouped — unless the join itself
condensed a full cohort, in which case the body already reports
``matched`` (still 202: the resource to poll is the participant).

When the service was configured with SLO targets (``ServeConfig.slo``),
both ``/metrics`` formats carry the verdict block next to the raw
series.

Failures are structured envelopes —
``{"error": {"code": "...", "message": "..."}}`` — with the status from
the :mod:`repro.serve.errors` taxonomy (400 validation, 404 unknown id,
410 expired session, 429 backpressure, 504 propose timeout).  Every
request is traced (``serve.http`` span), counted (``serve.http.*``
metrics), and journaled (``http_request`` events) when observability is
on.  Shutdown is graceful: ``close()`` stops the accept loop, drains the
scheduler, and drops the sessions.

``src/repro/serve/`` is on the DYG103 allowlist: request timing and TTL
bookkeeping legitimately read clocks; nothing here feeds results.
"""

from __future__ import annotations

import json
import logging
import re
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs

from repro.obs import runtime as _obs
from repro.obs import trace as _trace
from repro.serve.config import REQUEST_HISTOGRAM_KEEP, ServeConfig
from repro.serve.errors import InvalidRequest, ServeError
from repro.serve.service import GroupingService

__all__ = ["GroupingHTTPServer", "start_server", "run_server"]

_log = logging.getLogger("repro.serve.http")

#: Largest accepted request body (a 1M-member cohort is ~20 MB of JSON).
MAX_BODY_BYTES = 32 * 1024 * 1024

_COHORT_PATH = re.compile(r"^/v1/cohorts/(?P<id>[A-Za-z0-9_.-]+)$")
_ROUNDS_PATH = re.compile(r"^/v1/cohorts/(?P<id>[A-Za-z0-9_.-]+)/rounds$")
_PARTICIPANT_PATH = re.compile(r"^/v1/participants/(?P<id>[A-Za-z0-9_.-]+)$")


class _Handler(BaseHTTPRequestHandler):
    """Routes the JSON API; one instance per request (threaded server)."""

    server_version = "dygroups-serve/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    @property
    def service(self) -> GroupingService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        _log.debug("%s - %s", self.address_string(), format % args)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise InvalidRequest(f"request body exceeds {MAX_BODY_BYTES} bytes")
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            raise InvalidRequest(f"request body is not valid JSON: {error}") from error

    def _respond(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self._status = status

    def _respond_text(self, status: int, text: str, *, content_type: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self._status = status

    # -- request dispatch --------------------------------------------------

    def _handle(self, method: str) -> None:
        self._status = 500
        registry = _obs.metrics_registry()
        registry.counter("serve.http.requests").inc()
        timer = registry.timer("serve.http.request_seconds", keep=REQUEST_HISTOGRAM_KEEP)
        path, _, query = self.path.partition("?")
        self._query = parse_qs(query)
        try:
            with timer.time(), _trace.span("serve.http", method=method, path=path):
                self._route(method, path)
        except ServeError as error:
            self._respond(error.status, error.envelope())
        except Exception as error:
            _log.exception("unhandled error serving %s %s", method, path)
            self._respond(
                500, {"error": {"code": "internal_error", "message": str(error)}}
            )
        finally:
            registry.counter(f"serve.http.status.{self._status // 100}xx").inc()
            state = _obs.state()
            if state is not None and state.journal is not None:
                state.journal.emit(
                    "http_request", method=method, path=path, status=self._status
                )

    def _route(self, method: str, path: str) -> None:
        if method == "GET" and path == "/healthz":
            self._respond(200, self.service.healthz())
            return
        if method == "GET" and path == "/metrics":
            format_ = (self._query.get("format") or ["json"])[-1]
            if format_ == "prometheus":
                self._respond_text(
                    200,
                    self.service.metrics_prometheus(),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
                return
            if format_ != "json":
                raise InvalidRequest(
                    f"unknown metrics format {format_!r} (expected json or prometheus)"
                )
            self._respond(200, self.service.metrics_snapshot())
            return
        if method == "POST" and path == "/v1/cohorts":
            payload = self._read_body()
            self._respond(201, self.service.create_cohort(payload))
            return
        if method == "POST" and path == "/v1/join":
            payload = self._read_body()
            self._respond(202, self.service.join(payload))
            return
        if method == "GET" and path == "/v1/matchmaking":
            self._respond(200, self.service.matchmaking_snapshot())
            return
        participant_match = _PARTICIPANT_PATH.match(path)
        if participant_match is not None:
            participant_id = participant_match.group("id")
            if method == "GET":
                self._respond(200, self.service.participant_status(participant_id))
                return
            if method == "DELETE":
                self._respond(200, self.service.leave_queue(participant_id))
                return
            self._respond(
                405,
                {"error": {"code": "method_not_allowed", "message": f"{method} not allowed here"}},
            )
            return
        rounds_match = _ROUNDS_PATH.match(path)
        if rounds_match is not None and method == "POST":
            payload = self._read_body()
            if not isinstance(payload, dict):
                raise InvalidRequest("request body must be a JSON object")
            rounds = payload.get("rounds", 1)
            self._respond(200, self.service.advance_rounds(rounds_match.group("id"), rounds))
            return
        cohort_match = _COHORT_PATH.match(path)
        if cohort_match is not None:
            cohort_id = cohort_match.group("id")
            if method == "GET":
                self._respond(200, self.service.get_cohort(cohort_id, include_history=True))
                return
            if method == "DELETE":
                self._respond(200, self.service.delete_cohort(cohort_id))
                return
            self._respond(
                405,
                {"error": {"code": "method_not_allowed", "message": f"{method} not allowed here"}},
            )
            return
        self._respond(
            404, {"error": {"code": "not_found", "message": f"no route for {method} {path}"}}
        )

    def do_GET(self) -> None:
        self._handle("GET")

    def do_POST(self) -> None:
        self._handle("POST")

    def do_DELETE(self) -> None:
        self._handle("DELETE")


class GroupingHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`GroupingService`.

    Request threads are daemonic so a hung client can never block
    shutdown; :meth:`close` stops the accept loop, closes the service
    (scheduler drain + session drop), and releases the socket.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, service: GroupingService, host: str, port: int) -> None:
        super().__init__((host, port), _Handler)
        self.service = service

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0`` ephemeral binds)."""
        return int(self.server_address[1])

    @property
    def url(self) -> str:
        """Base URL of the bound server."""
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    def close(self) -> None:
        """Graceful shutdown: stop accepting, drain, release the socket."""
        self.shutdown()
        self.service.close()
        self.server_close()


def start_server(
    service: GroupingService, *, host: "str | None" = None, port: "int | None" = None
) -> GroupingHTTPServer:
    """Bind a :class:`GroupingHTTPServer` and serve it on a daemon thread.

    The returned server is already accepting requests; call
    :meth:`GroupingHTTPServer.close` to stop it.  Host/port default to
    the service's own :class:`~repro.serve.config.ServeConfig`.
    """
    config = service.config
    server = GroupingHTTPServer(
        service,
        config.host if host is None else host,
        config.port if port is None else port,
    )
    thread = threading.Thread(
        target=server.serve_forever, name="dygroups-serve-accept", daemon=True
    )
    thread.start()
    return server


def _install_shutdown_signals() -> None:
    """Route SIGTERM/SIGINT to ``KeyboardInterrupt`` for a graceful stop.

    Two cases need explicit handlers: service managers stop daemons with
    SIGTERM (which would otherwise kill the process mid-request), and a
    shell backgrounding ``dygroups serve &`` starts it with SIGINT set
    to SIG_IGN, so Python never installs its own handler and ``kill
    -INT`` would be silently discarded.
    """

    def _graceful(signum: int, frame: Any) -> None:
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _graceful)
        signal.signal(signal.SIGINT, _graceful)
    except ValueError:  # not the main thread (embedded use) — caller's job
        pass


def run_server(config: "ServeConfig | None" = None) -> int:
    """Blocking entry point behind ``dygroups serve``.

    Boots a service + server from ``config``, serves until interrupted
    (SIGINT/SIGTERM), then shuts down gracefully.  Returns a process
    exit code.
    """
    config = config if config is not None else ServeConfig()
    service = GroupingService(config)
    try:
        server = GroupingHTTPServer(service, config.host, config.port)
    except OSError as error:
        service.close()
        print(f"dygroups serve: cannot bind {config.host}:{config.port}: {error}")
        return 1
    _install_shutdown_signals()
    try:
        # Everything after handler installation sits inside the try: a
        # signal can land while we are still printing the banner, and it
        # must shut down gracefully from there too.
        state = _obs.state()
        if state is not None and state.journal is not None:
            state.journal.emit(
                "serve_start", host=config.host, port=server.port, workers=config.workers
            )
        print(f"dygroups serve: listening on {server.url} (ctrl-c to stop)", flush=True)
        _log.info("serving on %s with %d workers", server.url, config.workers)
        server.serve_forever()
    except KeyboardInterrupt:
        print("\ndygroups serve: shutting down")
    finally:
        # serve_forever already returned on shutdown(); avoid re-entry.
        server.service.close()
        server.server_close()
        state = _obs.state()
        if state is not None and state.journal is not None:
            state.journal.emit("serve_stop", port=server.port)
    return 0
