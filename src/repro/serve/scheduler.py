"""Micro-batching propose executor with bounded queues and backpressure.

Concurrent ``propose`` requests for the deterministic DyGroups groupers
are pure functions of ``(skills, k, mode)`` — no generator state — so
they can be coalesced: a worker drains up to ``batch_max`` queued
requests, groups them by ``(n, k, mode)``, and answers each group with
one vectorized :func:`repro.core.batch.propose_batch` call (a single
``(m, n)`` argsort instead of ``m`` Python round trips).  Requests whose
array is already memoized are answered straight from the
:class:`~repro.serve.cache.GroupingCache`.

Backpressure is explicit: the request queue is bounded and
:meth:`BatchScheduler.submit` *rejects* work with
:class:`~repro.serve.errors.SchedulerSaturated` (the HTTP layer's 429)
instead of queueing unboundedly.  Shutdown is graceful — workers drain
the queue's sentinel and every in-flight future resolves.

Metrics (``serve.scheduler.*`` in the :mod:`repro.obs.metrics`
registry): batches executed, batch-size histogram, rejections, and a
bounded wait-time timer.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any

import numpy as np

from repro.core.batch import BATCH_MODES, propose_batch
from repro.core.grouping import Grouping
from repro.obs import runtime as _obs
from repro.serve.cache import GroupingCache
from repro.serve.errors import RequestTimeout, SchedulerSaturated, ServiceClosed

__all__ = ["BatchScheduler"]

#: Queue sentinel that tells one worker to exit.
_STOP = object()


class _Request:
    """One queued propose request and the future its caller waits on."""

    __slots__ = ("skills", "k", "mode", "future", "enqueued")

    def __init__(self, skills: np.ndarray, k: int, mode: str, enqueued: float) -> None:
        self.skills = skills
        self.k = k
        self.mode = mode
        self.future: "Future[Grouping]" = Future()
        self.enqueued = enqueued


class BatchScheduler:
    """Coalesces concurrent propose requests into vectorized batches.

    Args:
        cache: grouping memo consulted before (and filled after) every
            batch compute; ``None`` disables memoization.
        workers: worker-thread count (must be positive — a service that
            wants inline computation simply doesn't build a scheduler).
        queue_depth: request-queue bound; submissions beyond it raise
            :class:`~repro.serve.errors.SchedulerSaturated`.
        batch_max: most requests coalesced into one drain.
    """

    def __init__(
        self,
        cache: "GroupingCache | None" = None,
        *,
        workers: int = 2,
        queue_depth: int = 256,
        batch_max: int = 32,
    ) -> None:
        if not isinstance(workers, int) or isinstance(workers, bool) or workers <= 0:
            raise ValueError(f"workers must be a positive int, got {workers!r}")
        if not isinstance(queue_depth, int) or isinstance(queue_depth, bool) or queue_depth <= 0:
            raise ValueError(f"queue_depth must be a positive int, got {queue_depth!r}")
        if not isinstance(batch_max, int) or isinstance(batch_max, bool) or batch_max <= 0:
            raise ValueError(f"batch_max must be a positive int, got {batch_max!r}")
        self.cache = cache
        self.batch_max = batch_max
        self.queue_depth = queue_depth
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=queue_depth)
        self._closed = False
        self._lock = threading.Lock()
        registry = _obs.metrics_registry()
        self._batches = registry.counter("serve.scheduler.batches")
        self._batch_size = registry.histogram("serve.scheduler.batch_size", keep=1024)
        self._rejections = registry.counter("serve.scheduler.rejections")
        self._wait_seconds = registry.timer("serve.scheduler.wait_seconds", keep=1024)
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"dygroups-serve-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def submit(self, skills: np.ndarray, k: int, mode: str) -> "Future[Grouping]":
        """Enqueue one propose request; returns the future resolving to it.

        Raises:
            ServiceClosed: after :meth:`close`.
            SchedulerSaturated: when the bounded queue is full (the
                caller should surface 429 and let the client retry).
            ValueError: for a mode without a vectorized grouper.
        """
        if self._closed:
            raise ServiceClosed("scheduler is shut down")
        if mode not in BATCH_MODES:
            raise ValueError(f"mode {mode!r} is not batchable; expected one of {BATCH_MODES}")
        request = _Request(skills, k, mode, time.perf_counter())
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            self._rejections.inc()
            raise SchedulerSaturated(
                f"propose queue is full ({self.queue_depth} requests queued); retry later"
            ) from None
        return request.future

    def propose(
        self, skills: np.ndarray, k: int, mode: str, *, timeout: "float | None" = None
    ) -> Grouping:
        """Blocking submit-and-wait.

        Raises:
            RequestTimeout: the future did not resolve within ``timeout``.
            (plus everything :meth:`submit` raises)
        """
        future = self.submit(skills, k, mode)
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            raise RequestTimeout(
                f"propose request did not complete within {timeout:g}s"
            ) from None

    def close(self, *, timeout: float = 5.0) -> None:
        """Stop accepting work, drain the queue, and join the workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._workers:
            self._queue.put(_STOP)
        for worker in self._workers:
            worker.join(timeout=timeout)

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- worker side -------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            batch: list[_Request] = [item]
            while len(batch) < self.batch_max:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    # Another worker's shutdown sentinel — hand it back.
                    self._queue.put(extra)
                    break
                batch.append(extra)
            now = time.perf_counter()
            for request in batch:
                self._wait_seconds.observe(now - request.enqueued)
            self._batches.inc()
            self._batch_size.observe(len(batch))
            self._execute(batch)

    def _execute(self, batch: list[_Request]) -> None:
        """Answer a drained batch, vectorizing compatible requests together."""
        by_shape: dict[tuple[int, int, str], list[_Request]] = {}
        for request in batch:
            if request.future.set_running_or_notify_cancel():
                key = (int(request.skills.size), request.k, request.mode)
                by_shape.setdefault(key, []).append(request)
        for (_, k, mode), requests in by_shape.items():
            arrays = [request.skills for request in requests]
            try:
                if self.cache is not None:
                    groupings = self.cache.propose_batch(arrays, k, mode)
                else:
                    groupings = propose_batch(np.stack(arrays), k, mode)
            except Exception as error:
                for request in requests:
                    request.future.set_exception(error)
                continue
            for request, grouping in zip(requests, groupings):
                request.future.set_result(grouping)
