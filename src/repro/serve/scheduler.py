"""Micro-batching round-step executor with bounded queues and backpressure.

Concurrent ``propose`` requests for the deterministic DyGroups groupers
are pure functions of ``(skills, k, mode)`` — no generator state — so
they can be coalesced: a worker drains up to ``batch_max`` queued
requests, groups them by ``(n, k, mode)``, and answers each group with
one vectorized :func:`repro.core.batch.propose_batch` call (a single
``(m, n)`` argsort instead of ``m`` Python round trips).  Requests whose
array is already memoized are answered straight from the
:class:`~repro.serve.cache.GroupingCache`.

Full *round steps* batch the same way: :meth:`BatchScheduler.step`
enqueues a whole propose → update → gain round for a cohort session, and
the worker advances every same-``(n, k, mode, rate)`` cohort it drained
with one batched proposal plus one stacked skill update
(:func:`repro.engine.stacked.apply_update_many` — the vectorized
engine's kernel, bit-identical to the scalar round step).  Cohorts are
advanced in *waves* of distinct sessions, locks taken in session-id
order, so concurrent advances of one cohort stay sequential and
deadlock-free.

Backpressure is explicit: the request queue is bounded and
:meth:`BatchScheduler.submit` *rejects* work with
:class:`~repro.serve.errors.SchedulerSaturated` (the HTTP layer's 429)
instead of queueing unboundedly.  Shutdown is graceful — workers drain
the queue's sentinel and every in-flight future resolves.

Metrics (``serve.scheduler.*`` in the :mod:`repro.obs.metrics`
registry): batches executed, batch-size histogram, rejections, a
``queue_depth`` gauge (live backlog + high-water mark), an
``inflight_waves`` gauge, and the per-stage latency decomposition the
scenario harness reports — ``wait_seconds`` (enqueue → dequeue),
``batch_assembly_seconds`` (dequeue → compute start), and
``kernel_seconds`` (the vectorized compute itself).  All request-path
series are retention-bounded by
:data:`repro.serve.config.REQUEST_HISTOGRAM_KEEP`.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.analysis import contracts as _contracts
from repro.analysis import sanitizer as _sanitize
from repro.core.batch import BATCH_MODES, propose_batch
from repro.core.grouping import Grouping
from repro.engine.stacked import apply_update_many, grouping_to_members
from repro.obs import runtime as _obs
from repro.serve.cache import GroupingCache
from repro.serve.config import REQUEST_HISTOGRAM_KEEP
from repro.serve.errors import RequestTimeout, SchedulerSaturated, ServiceClosed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.sessions import CohortSession

__all__ = ["BatchScheduler"]

#: Queue sentinel that tells one worker to exit.
_STOP = object()


class _Request:
    """One queued propose request and the future its caller waits on."""

    __slots__ = ("skills", "k", "mode", "future", "enqueued")

    def __init__(self, skills: np.ndarray, k: int, mode: str, enqueued: float) -> None:
        self.skills = skills
        self.k = k
        self.mode = mode
        self.future: "Future[Grouping]" = Future()
        self.enqueued = enqueued


class _StepRequest:
    """One queued full-round-step request for a cohort session."""

    __slots__ = ("session", "future", "enqueued")

    def __init__(self, session: "CohortSession", enqueued: float) -> None:
        self.session = session
        self.future: "Future[dict[str, Any]]" = Future()
        self.enqueued = enqueued


class BatchScheduler:
    """Coalesces concurrent propose requests into vectorized batches.

    Args:
        cache: grouping memo consulted before (and filled after) every
            batch compute; ``None`` disables memoization.
        workers: worker-thread count (must be positive — a service that
            wants inline computation simply doesn't build a scheduler).
        queue_depth: request-queue bound; submissions beyond it raise
            :class:`~repro.serve.errors.SchedulerSaturated`.
        batch_max: most requests coalesced into one drain.
    """

    def __init__(
        self,
        cache: "GroupingCache | None" = None,
        *,
        workers: int = 2,
        queue_depth: int = 256,
        batch_max: int = 32,
    ) -> None:
        if not isinstance(workers, int) or isinstance(workers, bool) or workers <= 0:
            raise ValueError(f"workers must be a positive int, got {workers!r}")
        if not isinstance(queue_depth, int) or isinstance(queue_depth, bool) or queue_depth <= 0:
            raise ValueError(f"queue_depth must be a positive int, got {queue_depth!r}")
        if not isinstance(batch_max, int) or isinstance(batch_max, bool) or batch_max <= 0:
            raise ValueError(f"batch_max must be a positive int, got {batch_max!r}")
        self.cache = cache
        self.batch_max = batch_max
        self.queue_depth = queue_depth
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=queue_depth)
        self._closed = False
        self._lock = _sanitize.lock("serve.scheduler.close")
        registry = _obs.metrics_registry()
        self._batches = registry.counter("serve.scheduler.batches")
        self._batch_size = registry.histogram(
            "serve.scheduler.batch_size", keep=REQUEST_HISTOGRAM_KEEP
        )
        self._step_batches = registry.counter("serve.scheduler.step_batches")
        self._step_batch_size = registry.histogram(
            "serve.scheduler.step_batch_size", keep=REQUEST_HISTOGRAM_KEEP
        )
        self._rejections = registry.counter("serve.scheduler.rejections")
        self._wait_seconds = registry.timer(
            "serve.scheduler.wait_seconds", keep=REQUEST_HISTOGRAM_KEEP
        )
        self._assembly_seconds = registry.timer(
            "serve.scheduler.batch_assembly_seconds", keep=REQUEST_HISTOGRAM_KEEP
        )
        self._kernel_seconds = registry.timer(
            "serve.scheduler.kernel_seconds", keep=REQUEST_HISTOGRAM_KEEP
        )
        self._queue_gauge = registry.gauge("serve.scheduler.queue_depth")
        self._inflight_waves = registry.gauge("serve.scheduler.inflight_waves")
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"dygroups-serve-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def submit(self, skills: np.ndarray, k: int, mode: str) -> "Future[Grouping]":
        """Enqueue one propose request; returns the future resolving to it.

        Raises:
            ServiceClosed: after :meth:`close`.
            SchedulerSaturated: when the bounded queue is full (the
                caller should surface 429 and let the client retry).
            ValueError: for a mode without a vectorized grouper.
        """
        if self._closed:
            raise ServiceClosed("scheduler is shut down")
        if mode not in BATCH_MODES:
            raise ValueError(f"mode {mode!r} is not batchable; expected one of {BATCH_MODES}")
        request = _Request(skills, k, mode, time.perf_counter())
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            self._rejections.inc()
            raise SchedulerSaturated(
                f"propose queue is full ({self.queue_depth} requests queued); retry later"
            ) from None
        self._queue_gauge.inc()
        return request.future

    def propose(
        self, skills: np.ndarray, k: int, mode: str, *, timeout: "float | None" = None
    ) -> Grouping:
        """Blocking submit-and-wait.

        Raises:
            RequestTimeout: the future did not resolve within ``timeout``.
            (plus everything :meth:`submit` raises)
        """
        future = self.submit(skills, k, mode)
        _sanitize.check_blocking("future.result(propose)")
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            raise RequestTimeout(
                f"propose request did not complete within {timeout:g}s"
            ) from None

    def submit_step(self, session: "CohortSession") -> "Future[dict[str, Any]]":
        """Enqueue one full round step for ``session``.

        The future resolves to the round record
        (``{"round": t, "gain": g, "groups": ...}``) once a worker has
        advanced the cohort — possibly together with other queued
        same-configuration cohorts in one batched round step.

        Raises:
            ServiceClosed: after :meth:`close`.
            SchedulerSaturated: when the bounded queue is full.
            ValueError: for a session whose mode/gain has no batched
                update (the service routes only DyGroups cohorts here).
        """
        if self._closed:
            raise ServiceClosed("scheduler is shut down")
        if session.mode.name not in BATCH_MODES:
            raise ValueError(
                f"mode {session.mode.name!r} is not batchable; expected one of {BATCH_MODES}"
            )
        if session.mode.name == "clique" and not session.gain_fn.is_linear:
            raise ValueError("batched clique round steps require a linear gain function")
        request = _StepRequest(session, time.perf_counter())
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            self._rejections.inc()
            raise SchedulerSaturated(
                f"propose queue is full ({self.queue_depth} requests queued); retry later"
            ) from None
        self._queue_gauge.inc()
        return request.future

    def step(self, session: "CohortSession", *, timeout: "float | None" = None) -> dict[str, Any]:
        """Blocking submit-and-wait for one round step.

        Raises:
            RequestTimeout: the future did not resolve within ``timeout``.
            (plus everything :meth:`submit_step` raises)
        """
        future = self.submit_step(session)
        _sanitize.check_blocking("future.result(step)")
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            raise RequestTimeout(
                f"round-step request did not complete within {timeout:g}s"
            ) from None

    def close(self, *, timeout: float = 5.0) -> None:
        """Stop accepting work, drain the queue, and join the workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._workers:
            self._queue.put(_STOP)
        _sanitize.check_blocking("worker.join(shutdown)")
        for worker in self._workers:
            worker.join(timeout=timeout)

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- worker side -------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            _sanitize.check_blocking("queue.get(worker)")
            item = self._queue.get()
            if item is _STOP:
                return
            drained = time.perf_counter()
            self._queue_gauge.dec()
            batch: list[_Request] = [item]
            while len(batch) < self.batch_max:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    # Another worker's shutdown sentinel — hand it back.
                    self._queue.put(extra)
                    break
                self._queue_gauge.dec()
                batch.append(extra)
            now = time.perf_counter()
            for request in batch:
                self._wait_seconds.observe(now - request.enqueued)
            proposals = [r for r in batch if isinstance(r, _Request)]
            steps = [r for r in batch if isinstance(r, _StepRequest)]
            self._assembly_seconds.observe(now - drained)
            if proposals:
                self._batches.inc()
                self._batch_size.observe(len(proposals))
                with self._kernel_seconds.time():
                    self._execute(proposals)
            if steps:
                self._step_batches.inc()
                self._step_batch_size.observe(len(steps))
                with self._kernel_seconds.time():
                    self._execute_steps(steps)

    def _execute(self, batch: list[_Request]) -> None:
        """Answer a drained batch, vectorizing compatible requests together."""
        by_shape: dict[tuple[int, int, str], list[_Request]] = {}
        for request in batch:
            if request.future.set_running_or_notify_cancel():
                key = (int(request.skills.size), request.k, request.mode)
                by_shape.setdefault(key, []).append(request)
        for (_, k, mode), requests in by_shape.items():
            arrays = [request.skills for request in requests]
            try:
                if self.cache is not None:
                    groupings = self.cache.propose_batch(arrays, k, mode)
                else:
                    groupings = propose_batch(np.stack(arrays), k, mode)
            except Exception as error:
                for request in requests:
                    request.future.set_exception(error)
                continue
            for request, grouping in zip(requests, groupings):
                request.future.set_result(grouping)

    def _execute_steps(self, batch: "list[_StepRequest]") -> None:
        """Advance a drained batch of cohorts, batching compatible rounds.

        Requests are grouped by ``(n, k, mode, rate)`` — the full round
        configuration — then advanced in waves of *distinct* sessions so
        that two queued advances of one cohort play sequential rounds
        (its lock is not reentrant, and round indices must not collide).
        """
        by_config: "dict[tuple[int, int, str, float], list[_StepRequest]]" = {}
        for request in batch:
            if request.future.set_running_or_notify_cancel():
                session = request.session
                key = (session.n, session.k, session.mode.name, session.rate)
                by_config.setdefault(key, []).append(request)
        for requests in by_config.values():
            remaining = requests
            while remaining:
                wave: "list[_StepRequest]" = []
                later: "list[_StepRequest]" = []
                seen: set[int] = set()
                for request in remaining:
                    if id(request.session) in seen:
                        later.append(request)
                    else:
                        seen.add(id(request.session))
                        wave.append(request)
                self._execute_step_wave(wave)
                remaining = later

    def _execute_step_wave(self, wave: "list[_StepRequest]") -> None:
        """One batched round step over distinct same-configuration cohorts.

        Bit-identity with the inline path is the invariant: the proposal
        comes from the same memo/batched grouper, and the stacked update
        is :func:`repro.engine.stacked.apply_update_many` — pinned equal
        to the scalar kernel per row — with the row-wise gain reduction
        summing the same operands in the same order.
        """
        # Locks are taken in session-id order — a global order shared by
        # every wave, so two workers locking overlapping waves cannot
        # deadlock — and held across the compute: the wave reads every
        # cohort's skills, advances them in one stacked update, and
        # writes the results back atomically per session.
        wave = sorted(wave, key=lambda request: request.session.id)
        sessions = [request.session for request in wave]
        for session in sessions:
            session._lock.acquire()
        self._inflight_waves.inc()
        try:
            first = sessions[0]
            k, mode, gain_fn = first.k, first.mode, first.gain_fn
            arrays = [session.skills for session in sessions]
            if self.cache is not None:
                groupings = self.cache.propose_batch(arrays, k, mode.name)
            else:
                groupings = propose_batch(np.stack(arrays), k, mode.name)
            checking = _contracts.contracts_enabled()
            if checking:
                for skills, grouping in zip(arrays, groupings):
                    # Parity with the inline fast path, which checks
                    # Theorem 1 and the partition shape per proposal.
                    _contracts.check_top_k_teachers(skills, grouping)
                    _contracts.check_partition(grouping, n=skills.size, k=k)
            stacked = np.stack(arrays)
            members = np.stack([grouping_to_members(grouping) for grouping in groupings])
            updated = apply_update_many(stacked, members, k, mode, gain_fn)
            gains = np.sum(updated - stacked, axis=1)
            if checking:
                for row, (skills, grouping) in enumerate(zip(arrays, groupings)):
                    if mode.name == "star":
                        _contracts.check_star_teacher_unchanged(skills, updated[row], grouping)
                    elif mode.name == "clique":
                        _contracts.check_clique_order_preserved(skills, updated[row], grouping)
                _contracts.check_gains_nonnegative(gains)
            for row, request in enumerate(wave):
                record = request.session.record_round_locked(
                    groupings[row], updated[row].copy(), float(gains[row])
                )
                request.future.set_result(record)
        except Exception as error:
            for request in wave:
                if not request.future.done():
                    request.future.set_exception(error)
        finally:
            self._inflight_waves.dec()
            for session in sessions:
                session._lock.release()
