"""Micro-batching round-step executor with bounded queues and backpressure.

Concurrent ``propose`` requests for the deterministic DyGroups groupers
are pure functions of ``(skills, k, mode)`` — no generator state — so
they can be coalesced: a worker drains up to ``batch_max`` queued
requests, groups them by ``(n, k, mode)``, and answers each group with
one vectorized :func:`repro.core.batch.propose_batch` call (a single
``(m, n)`` argsort instead of ``m`` Python round trips).  Requests whose
array is already memoized are answered straight from the
:class:`~repro.serve.cache.GroupingCache`.

Full *round steps* batch the same way — but **adaptively**:
:meth:`BatchScheduler.step_rounds` enqueues a whole multi-round
propose → update → gain sequence as ONE request only when at least
``batch_min`` same-``(n, k, mode, rate)`` steps are in flight (so a
worker has something to stack it with) AND more than one hardware
thread backs the workers (``parallelism``); otherwise it falls through
to the inline kernel path — the exact ``session.advance_round`` call a
worker-less service makes — and skips the enqueue → drain → future
round trip entirely.  Multi-round requests amortize that round trip
over every round of an ``advance_rounds`` call, and a drained wave
keeps its cohorts stacked together for all of them.  The same decision
repeats at drain time: a config group that drained as a single request
is answered inline rather than through a wave of one.  Both outcomes
are bit-identical (that is the whole design), so the racy backlog probe
is safe: it only ever picks between two equal-output paths.  When a
wave does form, the worker advances every same-configuration cohort it
drained with one batched proposal plus one stacked skill update
(:func:`repro.engine.stacked.apply_update_many` — the vectorized
engine's kernel, bit-identical to the scalar round step).  Cohorts are
advanced in *waves* of distinct sessions, locks taken in session-id
order, so concurrent advances of one cohort stay sequential and
deadlock-free.  ``adaptive=False`` restores unconditional enqueueing.

Backpressure is explicit: the request queue is bounded and
:meth:`BatchScheduler.submit` *rejects* work with
:class:`~repro.serve.errors.SchedulerSaturated` (the HTTP layer's 429)
instead of queueing unboundedly.  Shutdown is graceful — workers drain
the queue's sentinel and every in-flight future resolves.

Metrics (``serve.scheduler.*`` in the :mod:`repro.obs.metrics`
registry): batches executed, batch-size histogram, rejections, a
``queue_depth`` gauge (live backlog + high-water mark), an
``inflight_waves`` gauge, ``step_inline_fallthrough`` (round steps
answered via the inline kernel because no same-configuration backlog
existed — at submit or at drain), and the per-stage latency
decomposition the scenario harness reports — ``wait_seconds`` (enqueue
→ dequeue), ``batch_assembly_seconds`` (dequeue → compute start), and
``kernel_seconds`` (the vectorized compute itself).  All request-path
series are retention-bounded by
:data:`repro.serve.config.REQUEST_HISTOGRAM_KEEP`.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.analysis import contracts as _contracts
from repro.analysis import sanitizer as _sanitize
from repro.core.batch import BATCH_MODES, propose_batch
from repro.core.grouping import Grouping
from repro.engine.stacked import apply_update_many, grouping_to_members
from repro.obs import runtime as _obs
from repro.serve.cache import GroupingCache
from repro.serve.config import REQUEST_HISTOGRAM_KEEP
from repro.serve.errors import RequestTimeout, SchedulerSaturated, ServiceClosed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.sessions import CohortSession

__all__ = ["BatchScheduler"]

#: Queue sentinel that tells one worker to exit.
_STOP = object()


class _Request:
    """One queued propose request and the future its caller waits on."""

    __slots__ = ("skills", "k", "mode", "future", "enqueued")

    def __init__(self, skills: np.ndarray, k: int, mode: str, enqueued: float) -> None:
        self.skills = skills
        self.k = k
        self.mode = mode
        self.future: "Future[Grouping]" = Future()
        self.enqueued = enqueued


class _StepRequest:
    """One queued round-step request: ``rounds`` sequential rounds of one cohort.

    Multi-round requests are the handoff amortizer: a client advancing a
    cohort by R rounds pays one enqueue → drain → future round trip for
    the whole sequence instead of R of them, and the drained wave keeps
    the cohorts stacked together for all R rounds.  The future resolves
    to the list of round records, in play order.
    """

    __slots__ = ("session", "rounds", "future", "enqueued")

    def __init__(self, session: "CohortSession", rounds: int, enqueued: float) -> None:
        self.session = session
        self.rounds = rounds
        self.future: "Future[list[dict[str, Any]]]" = Future()
        self.enqueued = enqueued


class BatchScheduler:
    """Coalesces concurrent propose requests into vectorized batches.

    Args:
        cache: grouping memo consulted before (and filled after) every
            batch compute; ``None`` disables memoization.
        workers: worker-thread count (must be positive — a service that
            wants inline computation simply doesn't build a scheduler).
        queue_depth: request-queue bound; submissions beyond it raise
            :class:`~repro.serve.errors.SchedulerSaturated`.
        batch_max: most requests coalesced into one drain.
        adaptive: batch a round step only when a same-configuration
            backlog exists; fall through to the inline kernel otherwise
            (both paths are bit-identical).  ``False`` restores
            unconditional enqueueing.
        batch_min: smallest same-configuration backlog worth stacking
            (adaptive mode only).  Below it a wave's fixed costs — the
            queue round trip, the stack/unstack, waking the waiters —
            outweigh the vectorization win, so smaller backlogs fall
            through to the inline kernel at submit AND at drain time.
        parallelism: hardware threads assumed to back the workers;
            defaults to ``os.cpu_count()``.  Adaptive step waves form
            only when ``min(workers, parallelism) > 1`` — on a single
            core the wave's serial handoff costs always lose to the
            inline kernel, so the adaptive path answers every step
            inline there.  Tests pin this to exercise wave formation
            deterministically regardless of host.
    """

    def __init__(
        self,
        cache: "GroupingCache | None" = None,
        *,
        workers: int = 2,
        queue_depth: int = 256,
        batch_max: int = 32,
        adaptive: bool = True,
        batch_min: int = 4,
        parallelism: "int | None" = None,
    ) -> None:
        if not isinstance(workers, int) or isinstance(workers, bool) or workers <= 0:
            raise ValueError(f"workers must be a positive int, got {workers!r}")
        if not isinstance(queue_depth, int) or isinstance(queue_depth, bool) or queue_depth <= 0:
            raise ValueError(f"queue_depth must be a positive int, got {queue_depth!r}")
        if not isinstance(batch_max, int) or isinstance(batch_max, bool) or batch_max <= 0:
            raise ValueError(f"batch_max must be a positive int, got {batch_max!r}")
        if not isinstance(batch_min, int) or isinstance(batch_min, bool) or batch_min < 2:
            raise ValueError(f"batch_min must be an int >= 2, got {batch_min!r}")
        if parallelism is not None and (
            not isinstance(parallelism, int) or isinstance(parallelism, bool) or parallelism < 1
        ):
            raise ValueError(f"parallelism must be a positive int or None, got {parallelism!r}")
        self.cache = cache
        self.parallelism = parallelism if parallelism is not None else (os.cpu_count() or 1)
        # A step wave only pays when workers genuinely overlap: its fixed
        # costs (queue round trip, future wakeups) are serial, and on a
        # single hardware thread they double the per-round price instead
        # of hiding behind parallel compute.  Adaptive mode therefore
        # forms waves only when more than one core backs the workers;
        # legacy (adaptive=False) queueing is never gated.
        self._wave_parallel = min(workers, self.parallelism) > 1
        self.batch_max = batch_max
        self.batch_min = batch_min
        self.queue_depth = queue_depth
        self.adaptive = bool(adaptive)
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=queue_depth)
        self._closed = False
        self._lock = _sanitize.lock("serve.scheduler.close")
        # Same-configuration step calls currently in flight (submitted but
        # not yet answered), keyed by (n, k, mode, rate) — the adaptive
        # backlog probe.  The lock guards only these counters and is never
        # held across compute or another acquisition.
        self._step_inflight: "dict[tuple[int, int, str, float], int]" = {}
        self._backlog_lock = _sanitize.lock("serve.scheduler.backlog")
        registry = _obs.metrics_registry()
        self._batches = registry.counter("serve.scheduler.batches")
        self._batch_size = registry.histogram(
            "serve.scheduler.batch_size", keep=REQUEST_HISTOGRAM_KEEP
        )
        self._step_batches = registry.counter("serve.scheduler.step_batches")
        self._step_batch_size = registry.histogram(
            "serve.scheduler.step_batch_size", keep=REQUEST_HISTOGRAM_KEEP
        )
        self._rejections = registry.counter("serve.scheduler.rejections")
        self._inline_fallthrough = registry.counter("serve.scheduler.step_inline_fallthrough")
        self._wait_seconds = registry.timer(
            "serve.scheduler.wait_seconds", keep=REQUEST_HISTOGRAM_KEEP
        )
        self._assembly_seconds = registry.timer(
            "serve.scheduler.batch_assembly_seconds", keep=REQUEST_HISTOGRAM_KEEP
        )
        self._kernel_seconds = registry.timer(
            "serve.scheduler.kernel_seconds", keep=REQUEST_HISTOGRAM_KEEP
        )
        self._queue_gauge = registry.gauge("serve.scheduler.queue_depth")
        self._inflight_waves = registry.gauge("serve.scheduler.inflight_waves")
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"dygroups-serve-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def submit(self, skills: np.ndarray, k: int, mode: str) -> "Future[Grouping]":
        """Enqueue one propose request; returns the future resolving to it.

        Raises:
            ServiceClosed: after :meth:`close`.
            SchedulerSaturated: when the bounded queue is full (the
                caller should surface 429 and let the client retry).
            ValueError: for a mode without a vectorized grouper.
        """
        if self._closed:
            raise ServiceClosed("scheduler is shut down")
        if mode not in BATCH_MODES:
            raise ValueError(f"mode {mode!r} is not batchable; expected one of {BATCH_MODES}")
        request = _Request(skills, k, mode, time.perf_counter())
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            self._rejections.inc()
            raise SchedulerSaturated(
                f"propose queue is full ({self.queue_depth} requests queued); retry later"
            ) from None
        self._queue_gauge.inc()
        return request.future

    def propose(
        self, skills: np.ndarray, k: int, mode: str, *, timeout: "float | None" = None
    ) -> Grouping:
        """Blocking submit-and-wait.

        Raises:
            RequestTimeout: the future did not resolve within ``timeout``.
            (plus everything :meth:`submit` raises)
        """
        future = self.submit(skills, k, mode)
        _sanitize.check_blocking("future.result(propose)")
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            raise RequestTimeout(
                f"propose request did not complete within {timeout:g}s"
            ) from None

    def submit_step(
        self, session: "CohortSession", rounds: int = 1
    ) -> "Future[list[dict[str, Any]]]":
        """Enqueue ``rounds`` sequential round steps for ``session``.

        The future resolves to the list of round records
        (``{"round": t, "gain": g, "groups": ...}``) once a worker has
        advanced the cohort — possibly together with other queued
        same-configuration cohorts, stacked for the whole multi-round
        sequence.

        Raises:
            ServiceClosed: after :meth:`close`.
            SchedulerSaturated: when the bounded queue is full.
            ValueError: for a session whose mode/gain has no batched
                update (the service routes only DyGroups cohorts here),
                or a non-positive round count.
        """
        self._validate_step(session)
        if not isinstance(rounds, int) or isinstance(rounds, bool) or rounds <= 0:
            raise ValueError(f"rounds must be a positive int, got {rounds!r}")
        request = _StepRequest(session, rounds, time.perf_counter())
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            self._rejections.inc()
            raise SchedulerSaturated(
                f"propose queue is full ({self.queue_depth} requests queued); retry later"
            ) from None
        self._queue_gauge.inc()
        return request.future

    def _validate_step(self, session: "CohortSession") -> None:
        """Shared admission checks for queued and inline round steps."""
        if self._closed:
            raise ServiceClosed("scheduler is shut down")
        if session.mode.name not in BATCH_MODES:
            raise ValueError(
                f"mode {session.mode.name!r} is not batchable; expected one of {BATCH_MODES}"
            )
        if session.mode.name == "clique" and not session.gain_fn.is_linear:
            raise ValueError("batched clique round steps require a linear gain function")

    @staticmethod
    def _step_key(session: "CohortSession") -> "tuple[int, int, str, float]":
        """The batching configuration: only same-key steps can share a wave."""
        return (session.n, session.k, session.mode.name, session.rate)

    def step(self, session: "CohortSession", *, timeout: "float | None" = None) -> dict[str, Any]:
        """Blocking single round step (see :meth:`step_rounds`)."""
        return self.step_rounds(session, 1, timeout=timeout)[0]

    def step_rounds(
        self, session: "CohortSession", rounds: int, *, timeout: "float | None" = None
    ) -> "list[dict[str, Any]]":
        """Blocking multi-round step: batch when a backlog exists, inline otherwise.

        Adaptive mode probes the in-flight count of this session's
        ``(n, k, mode, rate)`` configuration: with at least ``batch_min``
        same-key requests in flight (this one included) the request
        enqueues as ONE multi-round unit (a worker will stack the
        cohorts and keep them stacked for every round); below the
        threshold it falls through to the inline kernel on the calling
        thread — no queue, no future, no undersized wave.  The probe is
        racy by construction and deliberately so: both paths produce
        bit-identical records, so a mis-predicted branch costs only the
        batching opportunity, never correctness.

        Raises:
            RequestTimeout: the future did not resolve within ``timeout``.
            (plus everything :meth:`submit_step` raises)
        """
        if not isinstance(rounds, int) or isinstance(rounds, bool) or rounds <= 0:
            raise ValueError(f"rounds must be a positive int, got {rounds!r}")
        if not self.adaptive:
            # Legacy unconditional batching queues each round separately —
            # the pre-adaptive contract, preserved for comparison benches.
            return [self._step_queued(session, 1, timeout)[0] for _ in range(rounds)]
        self._validate_step(session)
        key = self._step_key(session)
        with self._backlog_lock:
            count = self._step_inflight.get(key, 0) + 1
            self._step_inflight[key] = count
        try:
            if self._wave_parallel and count >= self.batch_min:
                return self._step_queued(session, rounds, timeout)
            self._inline_fallthrough.inc(rounds)
            return self._step_inline_rounds(session, rounds)
        finally:
            with self._backlog_lock:
                remaining = self._step_inflight[key] - 1
                if remaining:
                    self._step_inflight[key] = remaining
                else:
                    del self._step_inflight[key]

    def _step_queued(
        self, session: "CohortSession", rounds: int, timeout: "float | None"
    ) -> "list[dict[str, Any]]":
        """Enqueue a multi-round step and wait for a worker to answer it."""
        future = self.submit_step(session, rounds)
        _sanitize.check_blocking("future.result(step)")
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            raise RequestTimeout(
                f"round-step request did not complete within {timeout:g}s"
            ) from None

    def _step_inline(self, session: "CohortSession") -> dict[str, Any]:
        """One round through the inline kernel (see :meth:`_step_inline_rounds`)."""
        return self._step_inline_rounds(session, 1)[0]

    def _step_inline_rounds(
        self, session: "CohortSession", rounds: int
    ) -> "list[dict[str, Any]]":
        """The inline kernel path: exactly what a worker-less service runs.

        ``advance_round`` takes the session lock and drives the session's
        :class:`~repro.engine.kernel.RoundKernel`; the propose override
        is the grouping-memo fast path (with the same Theorem-1 contract
        check the service's inline route applies), so the records are
        bit-identical to the batched wave's.  The closure and the kernel
        timer are built once for the whole multi-round sequence — this
        path answers most round steps on single-core hosts, so its
        per-round overhead matters.
        """
        propose = None
        if self.cache is not None:
            cache, mode = self.cache, session.mode.name

            def propose(skills: np.ndarray, k: int, rng: object) -> Grouping:
                grouping = cache.propose(skills, k, mode)
                if _contracts.contracts_enabled():
                    _contracts.check_top_k_teachers(skills, grouping)
                return grouping

        # Inline steps are kernel compute too: keep the stage series
        # complete whichever way the adaptive decision went.
        with self._kernel_seconds.time():
            return [session.advance_round(propose) for _ in range(rounds)]

    def close(self, *, timeout: float = 5.0) -> None:
        """Stop accepting work, drain the queue, and join the workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._workers:
            self._queue.put(_STOP)
        _sanitize.check_blocking("worker.join(shutdown)")
        for worker in self._workers:
            worker.join(timeout=timeout)

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- worker side -------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            _sanitize.check_blocking("queue.get(worker)")
            item = self._queue.get()
            if item is _STOP:
                return
            drained = time.perf_counter()
            self._queue_gauge.dec()
            batch: list[_Request] = [item]
            while len(batch) < self.batch_max:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    # Another worker's shutdown sentinel — hand it back.
                    self._queue.put(extra)
                    break
                self._queue_gauge.dec()
                batch.append(extra)
            now = time.perf_counter()
            for request in batch:
                self._wait_seconds.observe(now - request.enqueued)
            proposals = [r for r in batch if isinstance(r, _Request)]
            steps = [r for r in batch if isinstance(r, _StepRequest)]
            self._assembly_seconds.observe(now - drained)
            if proposals:
                self._batches.inc()
                self._batch_size.observe(len(proposals))
                with self._kernel_seconds.time():
                    self._execute(proposals)
            if steps:
                # Kernel timing happens per wave / per inline step inside
                # _execute_steps, so the series decomposes by decision.
                self._execute_steps(steps)

    def _execute(self, batch: list[_Request]) -> None:
        """Answer a drained batch, vectorizing compatible requests together."""
        by_shape: dict[tuple[int, int, str], list[_Request]] = {}
        for request in batch:
            if request.future.set_running_or_notify_cancel():
                key = (int(request.skills.size), request.k, request.mode)
                by_shape.setdefault(key, []).append(request)
        for (_, k, mode), requests in by_shape.items():
            arrays = [request.skills for request in requests]
            try:
                if self.cache is not None:
                    groupings = self.cache.propose_batch(arrays, k, mode)
                else:
                    groupings = propose_batch(np.stack(arrays), k, mode)
            except Exception as error:
                for request in requests:
                    request.future.set_exception(error)
                continue
            for request, grouping in zip(requests, groupings):
                request.future.set_result(grouping)

    def _execute_steps(self, batch: "list[_StepRequest]") -> None:
        """Advance a drained batch of cohorts, batching compatible rounds.

        Requests are grouped by ``(n, k, mode, rate)`` — the full round
        configuration — then advanced in waves of *distinct* sessions so
        that two queued advances of one cohort play sequential rounds
        (its lock is not reentrant, and round indices must not collide).

        The drain-time half of the adaptive decision lives here: a wave
        below ``batch_min`` cohorts has no batching win to pay for its
        stacking overhead, so (in adaptive mode) it is answered through
        the inline kernel path instead — counted in
        ``step_inline_fallthrough``, exactly like a submit-time
        fall-through.  ``step_batches`` / ``step_batch_size`` describe
        only the waves that actually stacked.
        """
        by_config: "dict[tuple[int, int, str, float], list[_StepRequest]]" = {}
        for request in batch:
            if request.future.set_running_or_notify_cancel():
                by_config.setdefault(self._step_key(request.session), []).append(request)
        for requests in by_config.values():
            remaining = requests
            while remaining:
                wave: "list[_StepRequest]" = []
                later: "list[_StepRequest]" = []
                seen: set[int] = set()
                for request in remaining:
                    if id(request.session) in seen:
                        later.append(request)
                    else:
                        seen.add(id(request.session))
                        wave.append(request)
                if self.adaptive and len(wave) < self.batch_min:
                    for request in wave:
                        self._inline_fallthrough.inc(request.rounds)
                        self._execute_step_request_inline(request)
                else:
                    self._step_batches.inc()
                    self._step_batch_size.observe(len(wave))
                    with self._kernel_seconds.time():
                        self._execute_step_wave(wave)
                remaining = later

    def _execute_step_request_inline(self, request: "_StepRequest") -> None:
        """Answer one drained multi-round step through the inline kernel path."""
        try:
            records = self._step_inline_rounds(request.session, request.rounds)
        except Exception as error:
            request.future.set_exception(error)
        else:
            request.future.set_result(records)

    def _execute_step_wave(self, wave: "list[_StepRequest]") -> None:
        """Batched multi-round steps over distinct same-configuration cohorts.

        The wave stays stacked for as long as any member has rounds left:
        each iteration advances every still-active cohort by one round
        with one batched proposal plus one stacked skill update, reading
        the skills the previous iteration wrote.  Bit-identity with the
        inline path is the invariant: the proposal comes from the same
        memo/batched grouper, and the stacked update is
        :func:`repro.engine.stacked.apply_update_many` — pinned equal to
        the scalar kernel per row — with the row-wise gain reduction
        summing the same operands in the same order.
        """
        # Locks are taken in session-id order — a global order shared by
        # every wave, so two workers locking overlapping waves cannot
        # deadlock — and held across the whole multi-round compute: each
        # cohort's rounds are read, advanced, and written back with no
        # other thread interleaving.  Futures resolve only after every
        # lock is released, so woken waiters never block straight back
        # on a lock this wave still holds.
        wave = sorted(wave, key=lambda request: request.session.id)
        sessions = [request.session for request in wave]
        for session in sessions:
            session._lock.acquire()
        self._inflight_waves.inc()
        finished: "list[_StepRequest]" = []
        records: "dict[int, list[dict[str, Any]]]" = {id(r): [] for r in wave}
        error: "Exception | None" = None
        try:
            first = sessions[0]
            k, mode, gain_fn = first.k, first.mode, first.gain_fn
            checking = _contracts.contracts_enabled()
            pending: "list[tuple[_StepRequest, int]]" = [
                (request, request.rounds) for request in wave
            ]
            while pending:
                arrays = [request.session.skills for request, _ in pending]
                if self.cache is not None:
                    groupings = self.cache.propose_batch(arrays, k, mode.name)
                else:
                    groupings = propose_batch(np.stack(arrays), k, mode.name)
                if checking:
                    for skills, grouping in zip(arrays, groupings):
                        # Parity with the inline fast path, which checks
                        # Theorem 1 and the partition shape per proposal.
                        _contracts.check_top_k_teachers(skills, grouping)
                        _contracts.check_partition(grouping, n=skills.size, k=k)
                stacked = np.stack(arrays)
                members = np.stack(
                    [grouping_to_members(grouping) for grouping in groupings]
                )
                updated = apply_update_many(stacked, members, k, mode, gain_fn)
                gains = np.sum(updated - stacked, axis=1)
                if checking:
                    for row, (skills, grouping) in enumerate(zip(arrays, groupings)):
                        if mode.name == "star":
                            _contracts.check_star_teacher_unchanged(
                                skills, updated[row], grouping
                            )
                        elif mode.name == "clique":
                            _contracts.check_clique_order_preserved(
                                skills, updated[row], grouping
                            )
                    _contracts.check_gains_nonnegative(gains)
                still: "list[tuple[_StepRequest, int]]" = []
                for row, (request, remaining) in enumerate(pending):
                    record = request.session.record_round_locked(
                        groupings[row], updated[row].copy(), float(gains[row])
                    )
                    records[id(request)].append(record)
                    if remaining > 1:
                        still.append((request, remaining - 1))
                    else:
                        finished.append(request)
                pending = still
        except Exception as caught:
            error = caught
        finally:
            self._inflight_waves.dec()
            for session in sessions:
                session._lock.release()
        finished_ids = {id(request) for request in finished}
        for request in finished:
            request.future.set_result(records[id(request)])
        if error is not None:
            for request in wave:
                if id(request) not in finished_ids and not request.future.done():
                    request.future.set_exception(error)
