"""Clients for the grouping service: in-process and over-the-wire.

Both clients expose the same operations with the same payloads and
raise the same typed :mod:`repro.serve.errors` exceptions, so tests and
benchmarks can swap transports freely:

* :class:`InProcessClient` calls a :class:`~repro.serve.service.GroupingService`
  directly — zero serialization, ideal for closed-loop benchmarks that
  should measure the service and not the socket;
* :class:`HttpClient` speaks the JSON API over :mod:`urllib` (stdlib
  only) and rebuilds typed errors from the structured envelope.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Mapping, Sequence

from repro.serve.errors import ServeError, error_from_envelope
from repro.serve.service import GroupingService

__all__ = ["InProcessClient", "HttpClient"]


def _cohort_payload(
    skills: Sequence[float],
    k: int,
    *,
    mode: str = "star",
    rate: float = 0.5,
    policy: str = "dygroups",
    seed: int = 0,
    record_history: bool = False,
) -> dict[str, Any]:
    return {
        "skills": [float(s) for s in skills],
        "k": k,
        "mode": mode,
        "rate": rate,
        "policy": policy,
        "seed": seed,
        "record_history": record_history,
    }


def _join_payload(
    skill: float, *, participant: "str | None", spec: "str | None"
) -> dict[str, Any]:
    payload: dict[str, Any] = {"skill": float(skill)}
    if participant is not None:
        payload["participant"] = participant
    if spec is not None:
        payload["spec"] = spec
    return payload


class InProcessClient:
    """Client facade over a live :class:`GroupingService` in this process."""

    def __init__(self, service: GroupingService) -> None:
        self.service = service

    def create_cohort(
        self,
        skills: Sequence[float],
        k: int,
        *,
        mode: str = "star",
        rate: float = 0.5,
        policy: str = "dygroups",
        seed: int = 0,
        record_history: bool = False,
    ) -> dict[str, Any]:
        """Create a cohort; returns its summary (including the new id)."""
        return self.service.create_cohort(
            _cohort_payload(
                skills,
                k,
                mode=mode,
                rate=rate,
                policy=policy,
                seed=seed,
                record_history=record_history,
            )
        )

    def advance_rounds(self, cohort_id: str, rounds: int = 1) -> dict[str, Any]:
        """Advance ``rounds`` rounds; returns the played records."""
        return self.service.advance_rounds(cohort_id, rounds)

    def get_cohort(self, cohort_id: str) -> dict[str, Any]:
        """Inspect a cohort and its trajectory."""
        return self.service.get_cohort(cohort_id, include_history=True)

    def delete_cohort(self, cohort_id: str) -> dict[str, Any]:
        """Remove a cohort; returns its final summary."""
        return self.service.delete_cohort(cohort_id)

    def join(
        self,
        skill: float,
        *,
        participant: "str | None" = None,
        spec: "str | None" = None,
    ) -> dict[str, Any]:
        """Join the matchmaking queue; returns the participant payload."""
        return self.service.join(_join_payload(skill, participant=participant, spec=spec))

    def participant_status(self, participant_id: str) -> dict[str, Any]:
        """Status of a queued participant (waiting/matched/expired/left)."""
        return self.service.participant_status(participant_id)

    def leave_queue(self, participant_id: str) -> dict[str, Any]:
        """Withdraw a waiting participant; idempotent on resolved ones."""
        return self.service.leave_queue(participant_id)

    def matchmaking(self) -> dict[str, Any]:
        """Matchmaking snapshot: queue depths, specs, condensed cohorts."""
        return self.service.matchmaking_snapshot()

    def healthz(self) -> dict[str, Any]:
        """Service liveness payload."""
        return self.service.healthz()

    def metrics(self) -> dict[str, Any]:
        """Metrics-registry snapshot."""
        return self.service.metrics_snapshot()


class HttpClient:
    """Stdlib-urllib client for a running grouping server.

    Args:
        base_url: server root, e.g. ``"http://127.0.0.1:8750"``.
        timeout: per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(
        self, method: str, path: str, payload: "Mapping[str, Any] | None" = None
    ) -> dict[str, Any]:
        body = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=body,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as error:
            try:
                envelope = json.loads(error.read())
            except (json.JSONDecodeError, OSError):
                envelope = None
            raise error_from_envelope(envelope, status=error.code) from None
        except urllib.error.URLError as error:
            raise ServeError(f"cannot reach grouping server at {self.base_url}: {error.reason}") from None

    def create_cohort(
        self,
        skills: Sequence[float],
        k: int,
        *,
        mode: str = "star",
        rate: float = 0.5,
        policy: str = "dygroups",
        seed: int = 0,
        record_history: bool = False,
    ) -> dict[str, Any]:
        """Create a cohort; returns its summary (including the new id)."""
        return self._request(
            "POST",
            "/v1/cohorts",
            _cohort_payload(
                skills,
                k,
                mode=mode,
                rate=rate,
                policy=policy,
                seed=seed,
                record_history=record_history,
            ),
        )

    def advance_rounds(self, cohort_id: str, rounds: int = 1) -> dict[str, Any]:
        """Advance ``rounds`` rounds; returns the played records."""
        return self._request("POST", f"/v1/cohorts/{cohort_id}/rounds", {"rounds": rounds})

    def get_cohort(self, cohort_id: str) -> dict[str, Any]:
        """Inspect a cohort and its trajectory."""
        return self._request("GET", f"/v1/cohorts/{cohort_id}")

    def delete_cohort(self, cohort_id: str) -> dict[str, Any]:
        """Remove a cohort; returns its final summary."""
        return self._request("DELETE", f"/v1/cohorts/{cohort_id}")

    def join(
        self,
        skill: float,
        *,
        participant: "str | None" = None,
        spec: "str | None" = None,
    ) -> dict[str, Any]:
        """Join the matchmaking queue; returns the participant payload."""
        return self._request(
            "POST", "/v1/join", _join_payload(skill, participant=participant, spec=spec)
        )

    def participant_status(self, participant_id: str) -> dict[str, Any]:
        """Status of a queued participant (waiting/matched/expired/left)."""
        return self._request("GET", f"/v1/participants/{participant_id}")

    def leave_queue(self, participant_id: str) -> dict[str, Any]:
        """Withdraw a waiting participant; idempotent on resolved ones."""
        return self._request("DELETE", f"/v1/participants/{participant_id}")

    def matchmaking(self) -> dict[str, Any]:
        """Matchmaking snapshot: queue depths, specs, condensed cohorts."""
        return self._request("GET", "/v1/matchmaking")

    def healthz(self) -> dict[str, Any]:
        """Server liveness payload."""
        return self._request("GET", "/healthz")

    def metrics(self) -> dict[str, Any]:
        """Metrics-registry snapshot from the server process."""
        return self._request("GET", "/metrics")
