"""The grouping service: sessions + cache + scheduler behind one facade.

:class:`GroupingService` is the transport-agnostic application layer —
the HTTP front-end (:mod:`repro.serve.http`) and the in-process client
(:mod:`repro.serve.client`) both call the same operations with the same
JSON-shaped payloads, so validation, routing, metrics, and journal
events live in exactly one place.  When
:attr:`~repro.serve.config.ServeConfig.matchmaking` is configured the
service also fronts a :class:`repro.matchmaking.Matchmaker` — the
streaming admission layer condensing individual joins into cohorts
through this very ``create_cohort`` path (off by default; its endpoints
answer ``404 matchmaking_disabled``).

Round routing: the deterministic DyGroups groupers take the fast path —
full batched round steps through the micro-batching scheduler when
workers are configured (same-configuration cohorts advance together in
one stacked update), else the grouping memo feeding the session's round
kernel inline; every other registered policy — stochastic or stateful —
runs inline on its per-cohort instance with the cohort's own seeded
generator, preserving the offline engine's reproducibility guarantees.

Cohorts are created from the unified policy registry
(:mod:`repro.registry`): the ``policy`` field accepts any registered
name *or* a typed spec string such as ``"percentile:p=0.9"``.

All request validation routes through :mod:`repro._validation`;
violations surface as :class:`~repro.serve.errors.InvalidRequest`
(HTTP 400) with the validator's message intact.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

import numpy as np

from repro._validation import (
    as_skill_array,
    require_divisible_groups,
    require_learning_rate,
    require_positive_int,
)
from repro.analysis import contracts as _contracts
from repro.analysis import sanitizer as _sanitize
from repro.core.batch import BATCH_MODES
from repro.core.gain_functions import LinearGain
from repro.core.grouping import Grouping
from repro.core.interactions import get_mode
from repro.obs import runtime as _obs
from repro.obs import trace as _trace
from repro.obs.metrics import render_prometheus
from repro.registry import PolicySpec, build_policy
from repro.scenarios.slo import SLOReport, evaluate_slos, slo_prometheus_lines
from repro.scenarios.spec import SLOSpec
from repro.serve.cache import GroupingCache
from repro.serve.config import ServeConfig
from repro.serve.errors import InvalidRequest, MatchmakingDisabled, ServiceClosed
from repro.serve.scheduler import BatchScheduler
from repro.serve.sessions import CohortSession, SessionStore

__all__ = ["GroupingService"]

#: Policy names routed through the cache/scheduler fast path (their
#: propose step is the deterministic DyGroups-Local grouper).
_FAST_PATH_POLICIES = frozenset({"dygroups", "dygroups-star", "dygroups-clique"})


def _field(payload: Mapping[str, Any], name: str, default: Any = None, *, required: bool = False) -> Any:
    if name in payload:
        return payload[name]
    if required:
        raise InvalidRequest(f"missing required field {name!r}")
    return default


class GroupingService:
    """Long-running grouping service over the reproduction's core.

    Args:
        config: service tunables; defaults to :class:`ServeConfig()`.
        clock: injectable monotonic clock for the session store (tests
            fake it to drive TTL eviction).
    """

    def __init__(
        self,
        config: "ServeConfig | None" = None,
        *,
        clock: Any = time.monotonic,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self._closed = False
        self._close_lock = _sanitize.lock("serve.service.close")
        self._started = time.monotonic()
        registry = _obs.metrics_registry()
        self._cohorts_created = registry.counter("serve.cohorts.created")
        self._cohorts_deleted = registry.counter("serve.cohorts.deleted")
        self._cohorts_evicted = registry.counter("serve.cohorts.evicted")
        self._rounds_advanced = registry.counter("serve.rounds.advanced")
        self._sessions_active = registry.gauge("serve.sessions.active")
        self.slo = SLOSpec.from_dict(self.config.slo) if self.config.slo else None
        self.store = SessionStore(
            ttl_seconds=self.config.session_ttl,
            max_sessions=self.config.max_cohorts,
            clock=clock,
            on_evict=self._record_eviction,
        )
        self.cache = GroupingCache(self.config.cache_size) if self.config.cache_size > 0 else None
        self.scheduler = (
            BatchScheduler(
                self.cache,
                workers=self.config.workers,
                queue_depth=self.config.queue_depth,
                batch_max=self.config.batch_max,
                batch_min=self.config.batch_min,
                adaptive=self.config.adaptive_batch,
            )
            if self.config.workers > 0
            else None
        )
        self.matchmaker = (
            self._build_matchmaker(self.config.matchmaking, clock)
            if self.config.matchmaking is not None
            else None
        )

    def _build_matchmaker(self, payload: Mapping[str, Any], clock: Any) -> Any:
        """Construct the matchmaking layer from ``ServeConfig.matchmaking``.

        Imported lazily: :mod:`repro.matchmaking` builds on the serve
        errors/config modules, so a top-level import here would cycle.
        """
        from repro.matchmaking.matchmaker import DEFAULT_TICK_INTERVAL, Matchmaker
        from repro.matchmaking.spec import GroupSpec

        options = dict(payload)
        specs_payload = options.pop("specs", None)
        tick_interval = options.pop("tick_interval", DEFAULT_TICK_INTERVAL)
        if options:
            raise ValueError(f"unknown matchmaking fields: {sorted(options)}")
        if specs_payload is None:
            specs_payload = [{}]
        if isinstance(specs_payload, (str, bytes)) or not isinstance(specs_payload, (list, tuple)):
            raise ValueError(
                f"matchmaking specs must be a list of group-spec mappings, got {specs_payload!r}"
            )
        specs = [GroupSpec.from_dict(item) for item in specs_payload]
        return Matchmaker(self, specs, clock=clock, tick_interval=tick_interval)

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Shut the scheduler down and drop every session (idempotent)."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        if self.matchmaker is not None:
            self.matchmaker.close()
        if self.scheduler is not None:
            self.scheduler.close()
        self.store.clear()

    def __enter__(self) -> "GroupingService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise ServiceClosed("the grouping service is shut down")

    def _record_eviction(self, session: CohortSession) -> None:
        self._cohorts_evicted.inc()
        self._sessions_active.set(len(self.store))
        state = _obs.state()
        if state is not None and state.journal is not None:
            state.journal.emit("cohort_evict", cohort=session.id, rounds=session.rounds)

    # -- operations --------------------------------------------------------

    def create_cohort(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Create a cohort session from a JSON-shaped payload.

        Payload fields: ``skills`` (required list of positive numbers),
        ``k`` (required int dividing ``n``), ``mode`` (``"star"``, the
        default, or ``"clique"``), ``rate`` (learning rate in (0, 1),
        default 0.5), ``policy`` (any registered name or typed spec
        string like ``"percentile:p=0.9"``, default ``"dygroups"``),
        ``seed`` (int, default 0), ``record_history`` (bool, default
        false).

        Raises:
            InvalidRequest: on any validation failure.
            CapacityExhausted: when the store is full.
        """
        self._require_open()
        if not isinstance(payload, Mapping):
            raise InvalidRequest(f"request body must be a JSON object, got {type(payload).__name__}")
        unknown = set(payload) - {"skills", "k", "mode", "rate", "policy", "seed", "record_history"}
        if unknown:
            raise InvalidRequest(f"unknown fields in request: {sorted(unknown)}")
        try:
            skills = as_skill_array(_field(payload, "skills", required=True))
            k = require_positive_int(_field(payload, "k", required=True), name="k")
            require_divisible_groups(len(skills), k)
            mode = get_mode(_field(payload, "mode", "star"))
            rate = require_learning_rate(_field(payload, "rate", 0.5))
            seed_raw = _field(payload, "seed", 0)
            if isinstance(seed_raw, bool) or not isinstance(seed_raw, int):
                raise TypeError(f"seed must be an int, got {type(seed_raw).__name__}")
            seed = int(seed_raw)
            record_history = bool(_field(payload, "record_history", False))
            spec = PolicySpec.parse(str(_field(payload, "policy", "dygroups")))
            policy_name = spec.canonical()
            policy = build_policy(spec, mode=mode.name, rate=rate)
        except (TypeError, ValueError) as error:
            raise InvalidRequest(str(error)) from error

        with _trace.span("serve.create_cohort", policy=policy_name, n=len(skills), k=k):
            session = self.store.add(
                lambda session_id: CohortSession(
                    session_id,
                    policy=policy,
                    policy_name=policy_name,
                    mode=mode,
                    gain_fn=LinearGain(rate),
                    k=k,
                    rate=rate,
                    seed=seed,
                    skills=skills,
                    record_history=record_history,
                )
            )
        self._cohorts_created.inc()
        self._sessions_active.set(len(self.store))
        state = _obs.state()
        if state is not None and state.journal is not None:
            state.journal.emit(
                "cohort_create",
                cohort=session.id,
                policy=policy_name,
                mode=mode.name,
                n=session.n,
                k=k,
            )
        return session.describe()

    def advance_rounds(self, cohort_id: str, rounds: int = 1) -> dict[str, Any]:
        """Advance a cohort by ``rounds`` rounds; returns the new records.

        Raises:
            InvalidRequest: for a non-positive round count.
            CohortNotFound / SessionExpired: for unknown or aged-out ids.
            SchedulerSaturated / RequestTimeout: from the propose path.
        """
        self._require_open()
        try:
            rounds = require_positive_int(rounds, name="rounds")
        except (TypeError, ValueError) as error:
            raise InvalidRequest(str(error)) from error
        session = self.store.get(cohort_id)
        played: list[dict[str, Any]] = []
        with _trace.span("serve.advance", cohort=cohort_id, rounds=rounds):
            if self.scheduler is not None and self._fast_path(session):
                # Batched round steps: the scheduler advances this cohort
                # together with any concurrently queued same-(n, k, mode,
                # rate) cohorts in one stacked update.
                # One multi-round request amortizes the queue handoff
                # over all rounds and keeps the wave stacked round after
                # round (each round reads the previous round's skills).
                timeout = self.config.request_timeout
                records = self.scheduler.step_rounds(session, rounds, timeout=timeout)
                self._rounds_advanced.inc(rounds)
                played.extend(records)
            else:
                propose = self._propose_fn(session)
                for _ in range(rounds):
                    record = session.advance_round(propose)
                    self._rounds_advanced.inc()
                    played.append(record)
        state = _obs.state()
        if state is not None and state.journal is not None:
            for record in played:
                state.journal.emit(
                    "cohort_round",
                    cohort=cohort_id,
                    round=record["round"],
                    gain=record["gain"],
                )
        return {
            "cohort": cohort_id,
            "rounds": session.rounds,
            "total_gain": session.total_gain,
            "played": played,
        }

    def get_cohort(self, cohort_id: str, *, include_history: bool = False) -> dict[str, Any]:
        """Inspect a cohort and its trajectory (refreshes its TTL)."""
        self._require_open()
        return self.store.get(cohort_id).describe(include_history=include_history)

    def delete_cohort(self, cohort_id: str) -> dict[str, Any]:
        """Remove a cohort; returns its final summary."""
        self._require_open()
        session = self.store.delete(cohort_id)
        self._cohorts_deleted.inc()
        self._sessions_active.set(len(self.store))
        state = _obs.state()
        if state is not None and state.journal is not None:
            state.journal.emit("cohort_delete", cohort=cohort_id, rounds=session.rounds)
        return session.describe()

    # -- matchmaking -------------------------------------------------------

    def _matchmaker_required(self) -> Any:
        if self.matchmaker is None:
            raise MatchmakingDisabled(
                "this service was started without matchmaking; "
                "restart with `dygroups serve --matchmaking`"
            )
        return self.matchmaker

    def join(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Admit one participant into the join queue (``POST /v1/join``).

        Raises:
            MatchmakingDisabled: the layer is off for this service.
            InvalidRequest / DuplicateJoin / CapacityExhausted: from the
                matchmaker's admission path.
        """
        self._require_open()
        return self._matchmaker_required().join(payload)

    def participant_status(self, participant_id: str) -> dict[str, Any]:
        """One participant's lifecycle state (``waiting | matched | expired | left``)."""
        self._require_open()
        return self._matchmaker_required().status(participant_id)

    def leave_queue(self, participant_id: str) -> dict[str, Any]:
        """Remove a waiting participant from the queue (``DELETE``)."""
        self._require_open()
        return self._matchmaker_required().leave(participant_id)

    def matchmaking_snapshot(self) -> dict[str, Any]:
        """Queue depths, spec states, and condensed cohorts (``GET /v1/matchmaking``)."""
        self._require_open()
        return self._matchmaker_required().snapshot()

    def healthz(self) -> dict[str, Any]:
        """Liveness payload: status, uptime, live cohorts, cache stats."""
        payload: dict[str, Any] = {
            "status": "closed" if self._closed else "ok",
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "cohorts": len(self.store),
            "workers": self.config.workers,
        }
        if self.cache is not None:
            payload["cache"] = self.cache.stats()
        if self.matchmaker is not None:
            payload["matchmaking"] = {
                "waiting": self.matchmaker.queue.depth(),
                "specs": sorted(self.matchmaker.specs),
            }
        return payload

    def metrics_snapshot(self) -> dict[str, Any]:
        """The process-global metrics registry, snapshotted.

        When the service was configured with SLO targets the payload
        gains a top-level ``"slo"`` verdict block evaluated against the
        live ``serve.http.*`` instruments.
        """
        snapshot: dict[str, Any] = _obs.metrics_registry().snapshot()
        if self.slo is not None:
            snapshot["slo"] = self._slo_report(snapshot).to_dict()
        return snapshot

    def metrics_prometheus(self) -> str:
        """The registry in Prometheus text exposition format.

        Configured SLO targets append ``repro_slo_passed`` /
        ``repro_slo_target_passed{target=...}`` gauges to the page.
        """
        snapshot = _obs.metrics_registry().snapshot()
        text = render_prometheus(snapshot)
        if self.slo is not None:
            text += slo_prometheus_lines(self._slo_report(snapshot))
        return text

    def _slo_report(self, snapshot: Mapping[str, Any]) -> SLOReport:
        """Judge the configured SLO targets against ``snapshot``."""
        assert self.slo is not None
        return evaluate_slos(
            self.slo,
            snapshot,
            latency="serve.http.request_seconds",
            requests="serve.http.requests",
            errors=("serve.http.status.4xx", "serve.http.status.5xx"),
            duration_seconds=max(time.monotonic() - self._started, 1e-9),
        )

    # -- propose routing ---------------------------------------------------

    def _fast_path(self, session: CohortSession) -> bool:
        """Whether this cohort's round is the deterministic DyGroups step."""
        return (
            PolicySpec.parse(session.policy_name).name in _FAST_PATH_POLICIES
            and session.mode.name in BATCH_MODES
        )

    def _propose_fn(self, session: CohortSession) -> Any:
        """The propose callable for one inline advance call, or ``None``
        for the session policy's own propose."""
        if self.cache is None or not self._fast_path(session):
            return None
        mode = session.mode.name

        def propose(skills: np.ndarray, k: int, rng: np.random.Generator) -> Grouping:
            grouping = self.cache.propose(skills, k, mode)
            if _contracts.contracts_enabled():
                # Parity with DyGroupsStar/Clique.propose, which check
                # Theorem 1 on every offline proposal.
                _contracts.check_top_k_teachers(skills, grouping)
            return grouping

        return propose

    def __repr__(self) -> str:
        return (
            f"GroupingService(cohorts={len(self.store)}, workers={self.config.workers}, "
            f"cache={'on' if self.cache is not None else 'off'}, closed={self._closed})"
        )
