"""Error model of the serving layer.

Every failure the service can report maps to one :class:`ServeError`
subclass carrying an HTTP ``status`` and a stable machine-readable
``code``.  The HTTP front-end renders them as a structured envelope::

    {"error": {"code": "cohort_not_found", "message": "..."}}

and the clients re-raise them from that envelope, so in-process and
over-the-wire callers see the same exception types.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "ServeError",
    "InvalidRequest",
    "CohortNotFound",
    "SessionExpired",
    "SchedulerSaturated",
    "CapacityExhausted",
    "RequestTimeout",
    "ServiceClosed",
    "ParticipantNotFound",
    "DuplicateJoin",
    "MatchmakingDisabled",
    "error_from_envelope",
]


class ServeError(Exception):
    """Base class for service failures.

    Attributes:
        status: HTTP status the front-end responds with.
        code: stable machine-readable error code for the envelope.
    """

    status: int = 500
    code: str = "internal_error"

    def envelope(self) -> dict[str, Any]:
        """The structured error payload the HTTP layer serializes."""
        return {"error": {"code": self.code, "message": str(self)}}


class InvalidRequest(ServeError):
    """The request payload failed validation (bad skills, k, mode, ...)."""

    status = 400
    code = "invalid_request"


class CohortNotFound(ServeError):
    """No cohort is registered under the requested id."""

    status = 404
    code = "cohort_not_found"


class SessionExpired(ServeError):
    """The cohort existed but was evicted after its TTL elapsed."""

    status = 410
    code = "session_expired"


class SchedulerSaturated(ServeError):
    """The propose queue is full — backpressure, retry later."""

    status = 429
    code = "scheduler_saturated"


class CapacityExhausted(ServeError):
    """The session store holds its maximum number of live cohorts."""

    status = 429
    code = "capacity_exhausted"


class RequestTimeout(ServeError):
    """A queued propose request did not complete within the deadline."""

    status = 504
    code = "request_timeout"


class ServiceClosed(ServeError):
    """The service is shutting down and no longer accepts work."""

    status = 503
    code = "service_closed"


class ParticipantNotFound(ServeError):
    """No participant is registered under the requested id (or it aged
    out of the queue's bounded resolved memory)."""

    status = 404
    code = "participant_not_found"


class DuplicateJoin(ServeError):
    """The participant id is already registered in the join queue."""

    status = 409
    code = "duplicate_join"


class MatchmakingDisabled(ServeError):
    """The service was started without the matchmaking layer."""

    status = 404
    code = "matchmaking_disabled"


_BY_CODE: dict[str, type[ServeError]] = {
    cls.code: cls
    for cls in (
        ServeError,
        InvalidRequest,
        CohortNotFound,
        SessionExpired,
        SchedulerSaturated,
        CapacityExhausted,
        RequestTimeout,
        ServiceClosed,
        ParticipantNotFound,
        DuplicateJoin,
        MatchmakingDisabled,
    )
}


def error_from_envelope(payload: Any, *, status: int | None = None) -> ServeError:
    """Rebuild the typed :class:`ServeError` from a response envelope.

    Unknown or malformed envelopes degrade to a plain :class:`ServeError`
    (never raises on bad input — this runs in client error paths).
    """
    code = ""
    message = "unknown service error"
    if isinstance(payload, dict):
        error = payload.get("error")
        if isinstance(error, dict):
            code = str(error.get("code", ""))
            message = str(error.get("message", message))
    cls = _BY_CODE.get(code, ServeError)
    exc = cls(message)
    if status is not None:
        exc.status = status
    return exc
