"""Serving-layer configuration.

One frozen dataclass holds every tunable of the grouping service —
session TTLs, cache bounds, scheduler sizing, HTTP binding — validated
eagerly through :mod:`repro._validation` so a bad ``dygroups serve``
invocation fails at startup with an actionable message, not mid-request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro._validation import require_positive_int

__all__ = ["ServeConfig", "DEFAULT_PORT", "REQUEST_HISTOGRAM_KEEP"]

#: Default TCP port of ``dygroups serve``.
DEFAULT_PORT = 8750

#: Raw-retention bound for every request-path histogram/timer (HTTP
#: request latency, scheduler wait/assembly/kernel stages, scenario
#: load-generator latencies).  A long-lived ``dygroups serve`` process
#: records one observation per request; unbounded retention would grow
#: memory without bound, so percentiles describe the most recent
#: ``REQUEST_HISTOGRAM_KEEP`` observations while count/total/min/max
#: keep tracking the full stream.
REQUEST_HISTOGRAM_KEEP = 4096


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of the grouping service.

    Attributes:
        host: interface the HTTP server binds to.
        port: TCP port (0 lets the OS pick an ephemeral port).
        workers: scheduler worker threads; 0 disables the batching
            scheduler and computes proposals inline on the request thread.
        cache_size: maximum entries in the grouping memo; 0 disables it.
        session_ttl: seconds of inactivity before a cohort is evicted.
        max_cohorts: upper bound on live cohorts (admission control).
        queue_depth: bound of the scheduler's request queue — submissions
            beyond it are rejected with ``429 scheduler_saturated``.
        batch_max: most propose requests coalesced into one batch.
        batch_min: smallest same-shape backlog worth stacking when
            ``adaptive_batch`` is on.  Below it the wave's fixed costs
            (queue round trip, stack/unstack, waking waiters) outweigh
            the vectorization win, so the step falls through inline.
            Must be an int ``>= 2``; ignored when ``adaptive_batch`` is
            off.
        adaptive_batch: batch a round step only when a same-``(n, k,
            mode, rate)`` backlog exists; fall through to the inline
            kernel otherwise (both paths are bit-identical, so this is
            purely a latency/throughput knob).  ``False`` restores
            unconditional enqueueing — every step waits for a worker
            drain even with nothing to stack it with.
        request_timeout: seconds a request waits on the scheduler before
            giving up.
        slo: optional SLO target mapping (the fields of
            :class:`repro.scenarios.spec.SLOSpec`, e.g.
            ``{"latency_p95_ms": 250}``).  When set, ``GET /metrics``
            evaluates the targets against the live registry and serves
            the verdict block; parsed and fully validated by the
            service at startup.
        matchmaking: optional matchmaking-layer configuration; ``None``
            (the default) leaves the layer off and its endpoints answer
            ``404 matchmaking_disabled``.  Keys: ``"specs"`` — a list of
            :class:`repro.matchmaking.spec.GroupSpec` field mappings
            (default: one spec with all defaults) — and
            ``"tick_interval"`` — the condenser-thread period in
            seconds (``None`` disables the thread; tests drive
            ``Matchmaker.tick`` directly).  Parsed and fully validated
            by the service at startup.
    """

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    workers: int = 2
    cache_size: int = 1024
    session_ttl: float = 1800.0
    max_cohorts: int = 4096
    queue_depth: int = 256
    batch_max: int = 32
    batch_min: int = 4
    adaptive_batch: bool = True
    request_timeout: float = 30.0
    slo: "Mapping[str, float] | None" = None
    matchmaking: "Mapping[str, Any] | None" = None

    def __post_init__(self) -> None:
        if not isinstance(self.port, int) or isinstance(self.port, bool) or not 0 <= self.port <= 65535:
            raise ValueError(f"port must be an int in [0, 65535], got {self.port!r}")
        if not isinstance(self.workers, int) or isinstance(self.workers, bool) or self.workers < 0:
            raise ValueError(f"workers must be a non-negative int, got {self.workers!r}")
        if not isinstance(self.cache_size, int) or isinstance(self.cache_size, bool) or self.cache_size < 0:
            raise ValueError(f"cache_size must be a non-negative int, got {self.cache_size!r}")
        if not self.session_ttl > 0:
            raise ValueError(f"session_ttl must be positive, got {self.session_ttl!r}")
        if not self.request_timeout > 0:
            raise ValueError(f"request_timeout must be positive, got {self.request_timeout!r}")
        require_positive_int(self.max_cohorts, name="max_cohorts")
        require_positive_int(self.queue_depth, name="queue_depth")
        require_positive_int(self.batch_max, name="batch_max")
        if not isinstance(self.batch_min, int) or isinstance(self.batch_min, bool) or self.batch_min < 2:
            raise ValueError(f"batch_min must be an int >= 2, got {self.batch_min!r}")
        if not isinstance(self.adaptive_batch, bool):
            raise ValueError(f"adaptive_batch must be a bool, got {self.adaptive_batch!r}")
        if not self.host or not isinstance(self.host, str):
            raise ValueError(f"host must be a non-empty string, got {self.host!r}")
        if self.slo is not None and not isinstance(self.slo, Mapping):
            raise ValueError(f"slo must be a mapping of SLO targets, got {self.slo!r}")
        if self.matchmaking is not None and not isinstance(self.matchmaking, Mapping):
            raise ValueError(
                f"matchmaking must be a configuration mapping, got {self.matchmaking!r}"
            )
