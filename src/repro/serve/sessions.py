"""In-memory cohort sessions with TTL eviction.

A :class:`CohortSession` is one live cohort: its immutable configuration
(policy, mode, ``k``, learning rate, seed), its evolving state (current
skills, the per-round generator, gains, optional history), and a private
``_lock`` that serializes round advancement — concurrent ``advance``
calls on the same cohort interleave safely and every round gets a unique
index.  Locks come from the :mod:`repro.analysis.sanitizer` factories:
plain stdlib locks in production, instrumented wrappers under
``REPRO_SANITIZE=1`` that check the scheduler's sorted-wave ordering
discipline (session locks rank by session id) at test time.

The :class:`SessionStore` is the thread-safe registry: create/get/delete
by id, lazy TTL eviction on every access (plus an explicit
:meth:`SessionStore.evict_expired` sweep), and a bounded memory of
recently evicted ids so the API can answer ``410 session_expired``
rather than a bare 404 for cohorts that aged out.

Round advancement *is* the offline engine's round step: each session
owns a :class:`repro.engine.kernel.RoundKernel` (built with
``instrument=False`` so served rounds emit no ``core.*`` events) and
delegates propose → update → gain → contracts to it, so a cohort
advanced ``α`` times over the service is bit-identical to an offline
``simulate`` run with the same seed (pinned by the integration tests).
The batched scheduler path records externally computed rounds through
:meth:`CohortSession.record_round_locked` instead.

Clock discipline: TTLs are measured on an injectable *monotonic* clock
(never jumps backwards); the wall clock is read only for the
``created_utc`` display timestamp.  ``src/repro/serve/`` is on the
documented DYG103 allowlist for exactly this kind of read.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from datetime import datetime, timezone
from typing import Any, Callable

import numpy as np

from repro.core.gain_functions import GainFunction
from repro.core.grouping import Grouping
from repro.core.interactions import InteractionMode
from repro.core.simulation import GroupingPolicy
from repro.engine.kernel import ProposeFn, RoundKernel
from repro.analysis import sanitizer as _sanitize
from repro.serve.errors import CapacityExhausted, CohortNotFound, SessionExpired

__all__ = ["CohortSession", "SessionStore"]

#: How many evicted cohort ids the store remembers for 410 answers.
_EVICTED_MEMORY = 1024


class CohortSession:
    """One live cohort and its trajectory.

    Built by :meth:`SessionStore.create`; callers advance it through
    :meth:`advance_round` while holding no external locks — the session
    serializes itself.
    """

    def __init__(
        self,
        session_id: str,
        *,
        policy: GroupingPolicy,
        policy_name: str,
        mode: InteractionMode,
        gain_fn: GainFunction,
        k: int,
        rate: float,
        seed: int,
        skills: np.ndarray,
        record_history: bool = False,
    ) -> None:
        self.id = session_id
        self.policy = policy
        self.policy_name = policy_name
        self.mode = mode
        self.gain_fn = gain_fn
        self.k = int(k)
        self.rate = float(rate)
        self.seed = int(seed)
        self.initial_skills = skills.copy()
        self.skills = skills.copy()
        self.rng = np.random.default_rng(seed)
        self.round_gains: list[float] = []
        self.skill_history: "list[np.ndarray] | None" = [skills.copy()] if record_history else None
        # Rank = session id: the scheduler's wave acquires session locks
        # sorted by id, so ids double as the sanctioned lock ordering.
        self._lock = _sanitize.lock("serve.session", rank=session_id)
        self.created_utc = datetime.now(timezone.utc).isoformat(timespec="seconds")
        # instrument=False: served rounds emit serve.* telemetry from the
        # service layer, never the offline engine's core.* events.
        self._kernel = RoundKernel(policy, mode, gain_fn, instrument=False)
        self.policy.reset()

    @property
    def n(self) -> int:
        """Number of participants."""
        return int(self.skills.size)

    @property
    def rounds(self) -> int:
        """Rounds advanced so far."""
        return len(self.round_gains)

    @property
    def total_gain(self) -> float:
        """Aggregated learning gain over every advanced round."""
        return float(np.sum(self.round_gains)) if self.round_gains else 0.0

    def advance_round(self, propose: "ProposeFn | None" = None) -> dict[str, Any]:
        """Advance one round and return its record.

        Delegates the round step — propose, shape check, skill update,
        gain accounting, runtime contracts — to the session's
        :class:`~repro.engine.kernel.RoundKernel`, the same kernel the
        offline ``simulate`` driver runs.

        Args:
            propose: optional override for the propose step (the service
                passes the grouping-memo fast path for DyGroups
                policies); defaults to the session policy's own
                :meth:`~repro.core.simulation.GroupingPolicy.propose`.

        Returns:
            ``{"round": t, "gain": g, "groups": [[...], ...]}`` where
            ``t`` is the 0-based index of the round just played.
        """
        with self._lock:
            outcome = self._kernel.step(
                self.skills,
                self.k,
                self.rng,
                round_index=len(self.round_gains),
                propose=propose,
            )
            return self.record_round_locked(outcome.grouping, outcome.updated, outcome.gain)

    def record_round_locked(
        self, grouping: Grouping, updated: np.ndarray, gain: float
    ) -> dict[str, Any]:
        """Record one computed round; the caller must hold ``self._lock``.

        Shared tail of the two advancement paths: the inline kernel step
        above, and the scheduler's batched round step, which computes a
        whole wave of same-configuration cohorts with one stacked update
        while holding every wave member's lock.
        """
        self.skills = updated
        self.round_gains.append(gain)
        if self.skill_history is not None:
            self.skill_history.append(updated.copy())
        return {
            "round": len(self.round_gains) - 1,
            "gain": gain,
            "groups": [list(group) for group in grouping],
        }

    def describe(self, *, include_history: bool = False) -> dict[str, Any]:
        """JSON-ready summary of the cohort and its trajectory."""
        with self._lock:
            payload: dict[str, Any] = {
                "cohort": self.id,
                "policy": self.policy_name,
                "mode": self.mode.name,
                "n": self.n,
                "k": self.k,
                "rate": self.rate,
                "seed": self.seed,
                "rounds": self.rounds,
                "total_gain": self.total_gain,
                "round_gains": [float(g) for g in self.round_gains],
                "skills": [float(s) for s in self.skills],
                "created_utc": self.created_utc,
            }
            if include_history and self.skill_history is not None:
                payload["skill_history"] = [[float(s) for s in row] for row in self.skill_history]
            return payload

    def __repr__(self) -> str:
        return (
            f"CohortSession(id={self.id!r}, policy={self.policy_name!r}, "
            f"mode={self.mode.name!r}, n={self.n}, k={self.k}, rounds={self.rounds})"
        )


class SessionStore:
    """Thread-safe cohort registry with TTL eviction.

    Args:
        ttl_seconds: seconds of inactivity (no get/advance) before a
            cohort is evicted.
        max_sessions: admission bound; :meth:`create` raises
            :class:`~repro.serve.errors.CapacityExhausted` beyond it.
        clock: monotonic-clock callable, injectable for tests.
        on_evict: optional callback invoked with each evicted session
            (the service uses it for journal events and counters).
    """

    def __init__(
        self,
        *,
        ttl_seconds: float = 1800.0,
        max_sessions: int = 4096,
        clock: Callable[[], float] = time.monotonic,
        on_evict: "Callable[[CohortSession], None] | None" = None,
    ) -> None:
        if not ttl_seconds > 0:
            raise ValueError(f"ttl_seconds must be positive, got {ttl_seconds!r}")
        if not isinstance(max_sessions, int) or isinstance(max_sessions, bool) or max_sessions <= 0:
            raise ValueError(f"max_sessions must be a positive int, got {max_sessions!r}")
        self.ttl_seconds = float(ttl_seconds)
        self.max_sessions = max_sessions
        self._clock = clock
        self._on_evict = on_evict
        # RLock: delete() re-enters get() under the same lock.
        self._lock = _sanitize.rlock("serve.sessions.store")
        self._sessions: dict[str, CohortSession] = {}
        self._deadlines: dict[str, float] = {}
        self._evicted_ids: "deque[str]" = deque(maxlen=_EVICTED_MEMORY)
        self._evicted_set: set[str] = set()
        self._counter = itertools.count(1)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def ids(self) -> list[str]:
        """Live cohort ids (eviction runs first)."""
        with self._lock:
            self._evict_expired_locked()
            return sorted(self._sessions)

    def add(self, build: Callable[[str], CohortSession]) -> CohortSession:
        """Admit a new session built by ``build(new_id)``.

        The two-step shape keeps id allocation inside the store's lock
        while the (potentially heavy) session construction stays outside
        critical work done by other threads.

        Raises:
            CapacityExhausted: when the store is at ``max_sessions`` even
                after evicting expired cohorts.
        """
        with self._lock:
            self._evict_expired_locked()
            if len(self._sessions) >= self.max_sessions:
                raise CapacityExhausted(
                    f"session store holds {len(self._sessions)} cohorts "
                    f"(max_sessions={self.max_sessions}); retry after TTL eviction"
                )
            session_id = f"c{next(self._counter):06d}"
            session = build(session_id)
            self._sessions[session_id] = session
            self._deadlines[session_id] = self._clock() + self.ttl_seconds
            return session

    def get(self, session_id: str, *, touch: bool = True) -> CohortSession:
        """Look up a live cohort; refreshes its TTL by default.

        Raises:
            SessionExpired: the cohort existed but aged out.
            CohortNotFound: the id was never (recently) registered.
        """
        with self._lock:
            self._evict_expired_locked()
            session = self._sessions.get(session_id)
            if session is None:
                if session_id in self._evicted_set:
                    raise SessionExpired(
                        f"cohort {session_id!r} expired after {self.ttl_seconds:g}s idle"
                    )
                raise CohortNotFound(f"no cohort registered under id {session_id!r}")
            if touch:
                self._deadlines[session_id] = self._clock() + self.ttl_seconds
            return session

    def delete(self, session_id: str) -> CohortSession:
        """Remove and return a cohort (404/410 semantics as :meth:`get`)."""
        with self._lock:
            session = self.get(session_id, touch=False)
            del self._sessions[session_id]
            del self._deadlines[session_id]
            return session

    def evict_expired(self) -> list[str]:
        """Evict every expired cohort; returns the evicted ids."""
        with self._lock:
            return self._evict_expired_locked()

    def _evict_expired_locked(self) -> list[str]:
        now = self._clock()
        expired = [sid for sid, deadline in self._deadlines.items() if deadline <= now]
        evicted: list[str] = []
        for sid in expired:
            session = self._sessions.pop(sid)
            del self._deadlines[sid]
            if len(self._evicted_ids) == self._evicted_ids.maxlen:
                self._evicted_set.discard(self._evicted_ids[0])
            self._evicted_ids.append(sid)
            self._evicted_set.add(sid)
            evicted.append(sid)
            if self._on_evict is not None:
                self._on_evict(session)
        return evicted

    def clear(self) -> None:
        """Drop every session and the eviction memory."""
        with self._lock:
            self._sessions.clear()
            self._deadlines.clear()
            self._evicted_ids.clear()
            self._evicted_set.clear()

    def __repr__(self) -> str:
        return (
            f"SessionStore(sessions={len(self._sessions)}, "
            f"ttl_seconds={self.ttl_seconds:g}, max_sessions={self.max_sessions})"
        )
