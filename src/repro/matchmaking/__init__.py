"""repro.matchmaking — the streaming admission layer.

Condenses individual arrivals (``POST /v1/join``) into real cohort
sessions on the grouping service:

* :mod:`repro.matchmaking.spec` — quota-bounded :class:`GroupSpec`
  shapes (target size, fill window, deadline, cohort quota);
* :mod:`repro.matchmaking.queue` — the thread-safe
  :class:`JoinQueue` of waiting/resolved :class:`Participant` records;
* :mod:`repro.matchmaking.matchmaker` — the deadline-driven
  :class:`Matchmaker` with rank-window (skill-compatible) admission.

Matched cohorts ride the unchanged session/kernel path and reproduce
``POST /v1/cohorts`` — and offline ``simulate()`` — bit for bit on the
same skill multiset and seed (see docs/matchmaking.md).
"""

from repro.matchmaking.matchmaker import Matchmaker
from repro.matchmaking.queue import JoinQueue, Participant
from repro.matchmaking.spec import DEFAULT_SPEC_NAME, GroupSpec

__all__ = [
    "DEFAULT_SPEC_NAME",
    "GroupSpec",
    "JoinQueue",
    "Matchmaker",
    "Participant",
]
