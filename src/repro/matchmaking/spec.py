"""Quota-bounded group specifications for the matchmaking layer.

A :class:`GroupSpec` declares one *kind* of cohort the matchmaker may
condense out of the arrival stream: the target size ``n`` and group
parameter ``k`` (exactly the fields ``POST /v1/cohorts`` takes), the
policy spec string, and the admission knobs that only exist in a
streaming world — the fill window (``min_fill`` / ``max_fill``, both
multiples of ``k``), the per-wave ``deadline_seconds``, and an optional
``max_cohorts`` quota after which further joins are rejected with
``429 capacity_exhausted``.

Like every other spec in the repo it is frozen, validated eagerly in
``__post_init__`` through :mod:`repro._validation`, and
JSON-round-trippable (``to_dict`` / ``from_dict``) so matchmaking
configurations live in ``ServeConfig.matchmaking`` payloads and CLI
flags, not in code.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Mapping

from repro._validation import (
    require_divisible_groups,
    require_learning_rate,
    require_positive_int,
)
from repro.core.interactions import get_mode
from repro.registry import PolicySpec

__all__ = ["GroupSpec", "DEFAULT_SPEC_NAME"]

#: Name of the implicit spec a bare ``--matchmaking`` serves.
DEFAULT_SPEC_NAME = "default"

#: Spec names must be addressable in URL paths and JSON payloads.
_NAME_RE = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")


def _require_positive_number(value: Any, *, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)) or not value > 0:
        raise ValueError(f"{name} must be a positive number, got {value!r}")
    return float(value)


@dataclass(frozen=True)
class GroupSpec:
    """One condensable cohort shape and its admission bounds.

    Attributes:
        name: spec identifier participants join with (``spec`` field of
            ``POST /v1/join``).
        n: target cohort size — the matchmaker condenses as soon as
            ``n`` compatible participants are pending.
        k: group-size parameter handed to the grouping policy; must
            divide ``n`` (and bound every condensed size).
        policy: registry :class:`~repro.registry.PolicySpec` string.
        mode: interaction mode (``"star"`` or ``"clique"``).
        rate: learning rate in (0, 1).
        seed: base seed; the ``i``-th cohort condensed from this spec is
            created with ``seed + i`` so matched cohorts are exactly
            reproducible offline.
        min_fill: smallest cohort a deadline flush may condense
            (multiple of ``k`` in ``[2*k, n]``; default ``2*k``, the
            smallest size that still gives every group two members).  A
            wave whose deadline fires below it expires instead.
        max_fill: largest cohort a deadline flush may condense
            (multiple of ``k`` in ``[min_fill, n]``; default ``n``).
        deadline_seconds: seconds a wave may wait before the condenser
            must either flush (``≥ min_fill`` pending) or expire it.
        max_cohorts: quota on condensed cohorts; ``None`` is unbounded.
            Joins beyond the quota are rejected with
            ``429 capacity_exhausted``.
    """

    name: str = DEFAULT_SPEC_NAME
    n: int = 30
    k: int = 5
    policy: str = "dygroups"
    mode: str = "star"
    rate: float = 0.5
    seed: int = 0
    min_fill: "int | None" = None
    max_fill: "int | None" = None
    deadline_seconds: float = 30.0
    max_cohorts: "int | None" = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not _NAME_RE.match(self.name):
            raise ValueError(
                f"spec name must match {_NAME_RE.pattern}, got {self.name!r}"
            )
        require_positive_int(self.n, name="n")
        require_positive_int(self.k, name="k")
        require_divisible_groups(self.n, self.k)
        PolicySpec.parse(self.policy)
        get_mode(self.mode)
        require_learning_rate(self.rate)
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ValueError(f"seed must be an int, got {self.seed!r}")
        _require_positive_number(self.deadline_seconds, name="deadline_seconds")
        for bound in ("min_fill", "max_fill"):
            value = getattr(self, bound)
            if value is None:
                continue
            require_positive_int(value, name=bound)
            if value % self.k != 0:
                raise ValueError(f"{bound} must be a multiple of k={self.k}, got {value}")
            if value > self.n:
                raise ValueError(f"{bound} must not exceed n={self.n}, got {value}")
            if value < 2 * self.k:
                raise ValueError(
                    f"{bound} must be at least 2*k={2 * self.k} so every group "
                    f"keeps two members, got {value}"
                )
        if self.fill_min > self.fill_max:
            raise ValueError(
                f"min_fill={self.fill_min} must not exceed max_fill={self.fill_max}"
            )
        if self.max_cohorts is not None:
            require_positive_int(self.max_cohorts, name="max_cohorts")

    @property
    def fill_min(self) -> int:
        """Resolved smallest deadline-condensable size (default ``2*k``)."""
        return 2 * self.k if self.min_fill is None else self.min_fill

    @property
    def fill_max(self) -> int:
        """Resolved largest deadline-condensable size (default ``n``)."""
        return self.n if self.max_fill is None else self.max_fill

    def cohort_payload(self, skills: "list[float]", cohort_index: int) -> dict[str, Any]:
        """The ``POST /v1/cohorts`` payload of this spec's next cohort."""
        return {
            "skills": skills,
            "k": self.k,
            "mode": self.mode,
            "rate": self.rate,
            "policy": self.policy,
            "seed": self.seed + cohort_index,
        }

    def to_dict(self) -> dict[str, Any]:
        """JSON-able representation (fill bounds resolved)."""
        payload: dict[str, Any] = {
            "name": self.name,
            "n": self.n,
            "k": self.k,
            "policy": self.policy,
            "mode": self.mode,
            "rate": self.rate,
            "seed": self.seed,
            "min_fill": self.fill_min,
            "max_fill": self.fill_max,
            "deadline_seconds": self.deadline_seconds,
        }
        if self.max_cohorts is not None:
            payload["max_cohorts"] = self.max_cohorts
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "GroupSpec":
        """Inverse of :meth:`to_dict`; unknown keys raise."""
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"a group spec must be a mapping, got {type(payload).__name__}"
            )
        known = {
            "name",
            "n",
            "k",
            "policy",
            "mode",
            "rate",
            "seed",
            "min_fill",
            "max_fill",
            "deadline_seconds",
            "max_cohorts",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown group-spec fields: {sorted(unknown)}")
        return cls(**dict(payload))
