"""The deadline-driven condenser: arrivals in, cohort sessions out.

A :class:`Matchmaker` sits in front of one
:class:`~repro.serve.service.GroupingService` and turns the individual
arrival stream of ``POST /v1/join`` into real cohort sessions:

* **fill condensation** — the moment a spec's pending pool reaches its
  target size ``n``, the joining request itself condenses the cohort
  (synchronously, under the matchmaker lock), so a full wave never
  waits on the background tick;
* **deadline condensation** — :meth:`tick` (driven by an optional
  daemon thread, or directly by tests with a fake clock) flushes waves
  whose deadline fired: the largest multiple of ``k`` within
  ``[min_fill, max_fill]`` of the pending pool condenses, leftovers
  re-arm a fresh deadline, and a wave below ``min_fill`` expires whole;
* **rank-window admission** — condensed members are the skill-rank
  window (over the spec's pool sorted by descending skill, arrival
  order breaking ties) centred on the longest-waiting participant, so
  backfill picks skill-compatible neighbours instead of an arbitrary
  prefix, and nobody is starved by later, stronger arrivals.

Determinism contract: the members of a condensed cohort are ordered by
``(-skill, arrival seq)`` and the ``i``-th cohort of a spec is created
with ``seed + i`` through the *unchanged*
:meth:`~repro.serve.service.GroupingService.create_cohort` path —
so a matched cohort's trajectory is bit-identical to ``POST
/v1/cohorts`` with the same skill multiset, and to an offline
``simulate()`` run (pinned by the matchmaking property tests).

Locking: one coarse ``matchmaking.matchmaker`` sanitizer-factory lock
serializes every compound operation (join → maybe-condense, tick,
leave); it nests over the queue's own ``matchmaking.queue`` lock and —
through ``create_cohort`` — over the serve-layer store/session locks,
one global order with no reverse path.  Status reads bypass it and take
only the queue lock.
"""

from __future__ import annotations

import logging
import re
import threading
import time
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.analysis import sanitizer as _sanitize
from repro.matchmaking.queue import JoinQueue, Participant
from repro.matchmaking.spec import DEFAULT_SPEC_NAME, GroupSpec
from repro.obs import runtime as _obs
from repro.serve.config import REQUEST_HISTOGRAM_KEEP
from repro.serve.errors import CapacityExhausted, InvalidRequest, ServiceClosed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (service builds us)
    from repro.serve.service import GroupingService

__all__ = ["Matchmaker"]

_log = logging.getLogger("repro.matchmaking")

#: Participant ids must be addressable as ``/v1/participants/{id}``.
_ID_RE = re.compile(r"^[A-Za-z0-9_.-]{1,128}$")

#: Default condenser-thread tick interval in seconds.
DEFAULT_TICK_INTERVAL = 0.05


def _member_order(participant: Participant) -> tuple[float, int]:
    """Canonical member sort key: skill descending, arrival breaking ties."""
    return (-participant.skill, participant.seq)


class Matchmaker:
    """Streaming admission layer over one grouping service.

    Args:
        service: the grouping service condensed cohorts are created on.
        specs: the condensable :class:`GroupSpec` shapes (≥ 1, unique
            names).
        clock: injectable monotonic clock shared with deadlines and
            wait accounting (tests fake it to drive :meth:`tick`).
        tick_interval: condenser-thread period in seconds; ``None``
            disables the thread so tests drive :meth:`tick` directly.
    """

    def __init__(
        self,
        service: "GroupingService",
        specs: Sequence[GroupSpec],
        *,
        clock: Any = time.monotonic,
        tick_interval: "float | None" = DEFAULT_TICK_INTERVAL,
    ) -> None:
        if not specs:
            raise ValueError("matchmaking requires at least one group spec")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"group-spec names must be unique, got {names}")
        if tick_interval is not None and (
            isinstance(tick_interval, bool)
            or not isinstance(tick_interval, (int, float))
            or not tick_interval > 0
        ):
            raise ValueError(
                f"tick_interval must be a positive number or None, got {tick_interval!r}"
            )
        self._service = service
        self.specs: dict[str, GroupSpec] = {spec.name: spec for spec in specs}
        self._clock = clock
        self._lock = _sanitize.lock("matchmaking.matchmaker")
        self.queue = JoinQueue()
        for name in self.specs:
            self.queue.register_spec(name)
        self._deadlines: dict[str, float] = {}
        self._condensed: dict[str, int] = {name: 0 for name in self.specs}
        self._cohort_ids: dict[str, list[str]] = {name: [] for name in self.specs}
        self._closed = False
        registry = _obs.metrics_registry()
        self._joins = registry.counter("matchmaking.joins")
        self._matched = registry.counter("matchmaking.matched")
        self._expired = registry.counter("matchmaking.expired")
        self._left = registry.counter("matchmaking.left")
        self._cohorts = registry.counter("matchmaking.cohorts")
        self._depth_gauge = registry.gauge("matchmaking.queue_depth")
        self._waiting_oldest = registry.gauge("matchmaking.oldest_wait_seconds")
        self._time_to_match = registry.histogram(
            "matchmaking.time_to_match_seconds", keep=REQUEST_HISTOGRAM_KEEP
        )
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None
        if tick_interval is not None:
            self._thread = threading.Thread(
                target=self._run_condenser,
                args=(float(tick_interval),),
                name="dygroups-matchmaker",
                daemon=True,
            )
            self._thread.start()

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Stop the condenser thread and refuse further work (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def _require_open_locked(self) -> None:
        if self._closed:
            raise ServiceClosed("the matchmaking layer is shut down")

    def _run_condenser(self, interval: float) -> None:
        while True:
            _sanitize.check_blocking("event.wait(matchmaker tick)")
            if self._stop.wait(interval):
                return
            try:
                self.tick()
            except Exception:  # pragma: no cover - diagnostics only
                _log.exception("matchmaker tick failed")

    # -- operations --------------------------------------------------------

    def join(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Admit one arrival; condenses its spec when the pool fills.

        Payload fields: ``skill`` (required positive number), ``spec``
        (a configured spec name; optional when only one spec exists or
        the ``default`` spec is configured), ``participant`` (optional
        caller-chosen id).

        Raises:
            InvalidRequest: on validation failure.
            DuplicateJoin: the participant id is already registered.
            CapacityExhausted: the spec's cohort quota is spent (or the
                session store is full at condensation time).
        """
        participant_id, skill, spec = self._parse_join(payload)
        with self._lock:
            self._require_open_locked()
            if (
                spec.max_cohorts is not None
                and self._condensed[spec.name] >= spec.max_cohorts
            ):
                raise CapacityExhausted(
                    f"group spec {spec.name!r} condensed its quota of "
                    f"{spec.max_cohorts} cohort(s); joins are closed"
                )
            now = self._clock()
            participant = self.queue.join(participant_id, skill=skill, spec=spec.name, now=now)
            self._joins.inc()
            if self.queue.pending_count(spec.name) == 1:
                self._deadlines[spec.name] = now + spec.deadline_seconds
            self._emit("participant_join", participant=participant.id, spec=spec.name, skill=skill)
            if self.queue.pending_count(spec.name) >= spec.n:
                try:
                    self._condense_locked(spec, spec.n, now, trigger="fill")
                except CapacityExhausted:
                    # Session store full: the join itself succeeded — the
                    # wave stays pending and the deadline tick retries
                    # once the store frees capacity.
                    pass
            self._update_gauges_locked(now)
            return self.queue.describe(participant.id, now)

    def status(self, participant_id: str) -> dict[str, Any]:
        """``GET /v1/participants/{id}``: the participant's lifecycle state.

        Raises:
            ParticipantNotFound: unknown or aged-out id.
        """
        return self.queue.describe(participant_id, self._clock())

    def leave(self, participant_id: str) -> dict[str, Any]:
        """``DELETE /v1/participants/{id}``: remove a waiting participant.

        An already-resolved participant is reported unchanged — the
        response body carries the final status either way.

        Raises:
            ParticipantNotFound: unknown or aged-out id.
        """
        with self._lock:
            self._require_open_locked()
            now = self._clock()
            participant, removed = self.queue.leave(participant_id, now=now)
            if removed:
                self._left.inc()
                self._emit("participant_leave", participant=participant_id, spec=participant.spec)
                if self.queue.pending_count(participant.spec) == 0:
                    self._deadlines.pop(participant.spec, None)
            self._update_gauges_locked(now)
            return self.queue.describe(participant_id, now)

    def tick(self) -> "list[dict[str, Any]]":
        """Flush or expire every wave whose deadline fired.

        Returns the summaries of cohorts condensed by this call.  Safe
        to call concurrently with joins (one coarse lock) and cheap
        when no deadline is due.
        """
        condensed: list[dict[str, Any]] = []
        with self._lock:
            if self._closed:
                return condensed
            now = self._clock()
            for name, spec in self.specs.items():
                deadline = self._deadlines.get(name)
                if deadline is None or now < deadline:
                    continue
                pending = self.queue.pending_count(name)
                if pending == 0:
                    self._deadlines.pop(name, None)
                    continue
                quota_open = (
                    spec.max_cohorts is None
                    or self._condensed[name] < spec.max_cohorts
                )
                viable = (min(pending, spec.fill_max) // spec.k) * spec.k
                if quota_open and viable >= spec.fill_min:
                    try:
                        condensed.append(
                            self._condense_locked(spec, viable, now, trigger="deadline")
                        )
                    except CapacityExhausted:
                        # Session store full: leave the wave pending and
                        # retry at the next tick.
                        continue
                else:
                    self._expire_locked(spec, now)
            self._update_gauges_locked(now)
        return condensed

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready matchmaking state (``GET /v1/matchmaking``)."""
        with self._lock:
            now = self._clock()
            specs: dict[str, Any] = {}
            for name, spec in self.specs.items():
                deadline = self._deadlines.get(name)
                specs[name] = {
                    **spec.to_dict(),
                    "pending": self.queue.pending_count(name),
                    "condensed": self._condensed[name],
                    "cohorts": list(self._cohort_ids[name]),
                    "deadline_in_seconds": (
                        None if deadline is None else round(max(0.0, deadline - now), 6)
                    ),
                }
            return {
                "enabled": True,
                "waiting": self.queue.depth(),
                "condensed": sum(self._condensed.values()),
                "specs": specs,
            }

    # -- internals ---------------------------------------------------------

    def _parse_join(self, payload: Mapping[str, Any]) -> tuple["str | None", float, GroupSpec]:
        if not isinstance(payload, Mapping):
            raise InvalidRequest(
                f"request body must be a JSON object, got {type(payload).__name__}"
            )
        unknown = set(payload) - {"skill", "spec", "participant"}
        if unknown:
            raise InvalidRequest(f"unknown fields in request: {sorted(unknown)}")
        skill = payload.get("skill")
        if isinstance(skill, bool) or not isinstance(skill, (int, float)) or not skill > 0:
            raise InvalidRequest(f"skill must be a positive number, got {skill!r}")
        spec_name = payload.get("spec")
        if spec_name is None:
            if DEFAULT_SPEC_NAME in self.specs:
                spec_name = DEFAULT_SPEC_NAME
            elif len(self.specs) == 1:
                spec_name = next(iter(self.specs))
            else:
                raise InvalidRequest(
                    f"spec is required (configured specs: {sorted(self.specs)})"
                )
        if spec_name not in self.specs:
            raise InvalidRequest(
                f"unknown group spec {spec_name!r} (configured: {sorted(self.specs)})"
            )
        participant_id = payload.get("participant")
        if participant_id is not None and (
            not isinstance(participant_id, str) or not _ID_RE.match(participant_id)
        ):
            raise InvalidRequest(
                f"participant id must match {_ID_RE.pattern}, got {participant_id!r}"
            )
        return participant_id, float(skill), self.specs[spec_name]

    def _select_window_locked(self, spec: GroupSpec, size: int) -> "list[Participant]":
        """Rank-window admission over the sorted pending pool.

        The pool is ranked by descending skill (arrival order breaking
        ties); the window of ``size`` contiguous ranks is centred on the
        longest-waiting participant's rank and clamped into the pool, so
        the condensed cohort is the most skill-compatible neighbourhood
        that still includes the participant owed service first.
        """
        pool = sorted(self.queue.pending(spec.name), key=_member_order)
        anchor = min(pool, key=lambda participant: participant.seq)
        rank = pool.index(anchor)
        start = min(max(rank - (size - 1) // 2, 0), len(pool) - size)
        return pool[start : start + size]

    def _condense_locked(
        self, spec: GroupSpec, size: int, now: float, *, trigger: str
    ) -> dict[str, Any]:
        """Condense ``size`` participants of ``spec`` into a real cohort."""
        members = self._select_window_locked(spec, size)
        members.sort(key=_member_order)
        skills = [participant.skill for participant in members]
        payload = spec.cohort_payload(skills, self._condensed[spec.name])
        # May raise CapacityExhausted (store full): members stay pending
        # and the wave retries at the next fill/deadline opportunity.
        info = self._service.create_cohort(payload)
        cohort_id = str(info["cohort"])
        self.queue.resolve_matched(members, cohort_id, now=now)
        self._condensed[spec.name] += 1
        self._cohort_ids[spec.name].append(cohort_id)
        self._cohorts.inc()
        self._matched.inc(len(members))
        for participant in members:
            self._time_to_match.observe(participant.wait_seconds(now))
        if self.queue.pending_count(spec.name) > 0:
            self._deadlines[spec.name] = now + spec.deadline_seconds
        else:
            self._deadlines.pop(spec.name, None)
        self._emit(
            "cohort_condense",
            spec=spec.name,
            cohort=cohort_id,
            size=len(members),
            trigger=trigger,
            seed=payload["seed"],
        )
        return {
            "cohort": cohort_id,
            "spec": spec.name,
            "size": len(members),
            "trigger": trigger,
            "participants": [participant.id for participant in members],
        }

    def _expire_locked(self, spec: GroupSpec, now: float) -> None:
        expired = self.queue.expire_spec(spec.name, now=now)
        self._deadlines.pop(spec.name, None)
        self._expired.inc(len(expired))
        self._emit(
            "participant_expire",
            spec=spec.name,
            count=len(expired),
            participants=[participant.id for participant in expired],
        )

    def _update_gauges_locked(self, now: float) -> None:
        self._depth_gauge.set(self.queue.depth())
        oldest = 0.0
        for name in self.specs:
            for participant in self.queue.pending(name):
                oldest = max(oldest, participant.wait_seconds(now))
        self._waiting_oldest.set(round(oldest, 6))

    def _emit(self, event: str, **fields: Any) -> None:
        state = _obs.state()
        if state is not None and state.journal is not None:
            state.journal.emit(event, **fields)

    def __repr__(self) -> str:
        return (
            f"Matchmaker(specs={sorted(self.specs)}, waiting={self.queue.depth()}, "
            f"condensed={sum(self._condensed.values())}, closed={self._closed})"
        )
