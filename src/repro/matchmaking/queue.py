"""Thread-safe join queue: the pending pool behind ``POST /v1/join``.

A :class:`Participant` is one arrival: an id, a skill, the
:class:`~repro.matchmaking.spec.GroupSpec` it joined, and a lifecycle
status — ``waiting`` while pending, then exactly one of ``matched``
(with the condensed cohort id and member index), ``expired`` (its wave's
deadline fired below ``min_fill``), or ``left`` (``DELETE
/v1/participants/{id}``).

The :class:`JoinQueue` is the storage layer only — every method is an
atomic operation under one sanitizer-factory lock
(``matchmaking.queue``), and *selection policy* (which participants
condense, when) lives entirely in
:class:`~repro.matchmaking.matchmaker.Matchmaker`, which serializes all
mutating traffic under its own coarser lock.  Status reads
(:meth:`describe`) take only the queue lock, so ``GET
/v1/participants/{id}`` never contends with a condensation in progress
beyond a dictionary lookup.

Resolved participants (matched / expired / left) stay readable through a
bounded memory (mirroring the session store's evicted-id deque): the
oldest resolved records age out after ``resolved_memory`` resolutions
and subsequent lookups raise ``404 participant_not_found``.

Clock discipline: waits and deadlines are measured on the caller's
injectable *monotonic* clock; the wall clock is read only for the
``joined_utc`` display timestamp (``src/repro/matchmaking/`` is on the
documented DYG103 allowlist for exactly this kind of read).
"""

from __future__ import annotations

import itertools
from collections import deque
from datetime import datetime, timezone
from typing import Any, Iterable

from repro.analysis import sanitizer as _sanitize
from repro.serve.errors import DuplicateJoin, ParticipantNotFound

__all__ = ["Participant", "JoinQueue", "PARTICIPANT_STATUSES"]

#: Every lifecycle status a participant can report.
PARTICIPANT_STATUSES = ("waiting", "matched", "expired", "left")

#: How many resolved participants stay readable for status queries.
_RESOLVED_MEMORY = 4096


class Participant:
    """One arrival and its lifecycle state (mutated only by the queue)."""

    __slots__ = (
        "id",
        "skill",
        "spec",
        "seq",
        "joined_at",
        "joined_utc",
        "status",
        "cohort",
        "member",
        "resolved_at",
    )

    def __init__(self, participant_id: str, *, skill: float, spec: str, seq: int, now: float) -> None:
        self.id = participant_id
        self.skill = float(skill)
        self.spec = spec
        self.seq = int(seq)
        self.joined_at = float(now)
        self.joined_utc = datetime.now(timezone.utc).isoformat(timespec="seconds")
        self.status = "waiting"
        self.cohort: "str | None" = None
        self.member: "int | None" = None
        self.resolved_at: "float | None" = None

    def wait_seconds(self, now: float) -> float:
        """Seconds waited: to ``now`` while pending, else to resolution."""
        end = now if self.resolved_at is None else self.resolved_at
        return max(0.0, end - self.joined_at)

    def __repr__(self) -> str:
        return (
            f"Participant(id={self.id!r}, spec={self.spec!r}, "
            f"skill={self.skill:g}, status={self.status!r})"
        )


class JoinQueue:
    """Thread-safe participant registry with per-spec pending pools.

    Args:
        resolved_memory: how many resolved (matched/expired/left)
            participants stay readable before the oldest age out.
    """

    def __init__(self, *, resolved_memory: int = _RESOLVED_MEMORY) -> None:
        if not isinstance(resolved_memory, int) or isinstance(resolved_memory, bool) or resolved_memory <= 0:
            raise ValueError(f"resolved_memory must be a positive int, got {resolved_memory!r}")
        self._lock = _sanitize.lock("matchmaking.queue")
        self._participants: dict[str, Participant] = {}
        # Insertion order of these dicts *is* the arrival order.
        self._pending: dict[str, dict[str, Participant]] = {}
        self._resolved: "deque[str]" = deque()
        self._resolved_memory = resolved_memory
        self._seq = itertools.count(1)
        self._auto = itertools.count(1)

    def register_spec(self, name: str) -> None:
        """Ensure a pending pool exists for spec ``name``."""
        with self._lock:
            self._pending.setdefault(name, {})

    def __len__(self) -> int:
        with self._lock:
            return len(self._participants)

    def depth(self) -> int:
        """Total participants currently waiting, across every spec."""
        with self._lock:
            return sum(len(pool) for pool in self._pending.values())

    def pending_count(self, spec: str) -> int:
        """Participants currently waiting on spec ``spec``."""
        with self._lock:
            return len(self._pending.get(spec, ()))

    def pending(self, spec: str) -> "list[Participant]":
        """The waiting participants of ``spec``, in arrival order."""
        with self._lock:
            return list(self._pending.get(spec, {}).values())

    def join(
        self, participant_id: "str | None", *, skill: float, spec: str, now: float
    ) -> Participant:
        """Admit one arrival into ``spec``'s pending pool.

        Raises:
            DuplicateJoin: the id is already registered (waiting or
                still within the resolved memory).
        """
        with self._lock:
            if participant_id is None:
                while (candidate := f"p{next(self._auto):06d}") in self._participants:
                    pass
                participant_id = candidate
            elif participant_id in self._participants:
                existing = self._participants[participant_id]
                raise DuplicateJoin(
                    f"participant {participant_id!r} already joined "
                    f"(status {existing.status!r}); DELETE it first to rejoin"
                )
            participant = Participant(
                participant_id, skill=skill, spec=spec, seq=next(self._seq), now=now
            )
            self._participants[participant_id] = participant
            self._pending.setdefault(spec, {})[participant_id] = participant
            return participant

    def get(self, participant_id: str) -> Participant:
        """Look up a participant still in memory.

        Raises:
            ParticipantNotFound: never joined, or aged out of the
                resolved memory.
        """
        with self._lock:
            return self._get_locked(participant_id)

    def _get_locked(self, participant_id: str) -> Participant:
        participant = self._participants.get(participant_id)
        if participant is None:
            raise ParticipantNotFound(
                f"no participant registered under id {participant_id!r}"
            )
        return participant

    def describe(self, participant_id: str, now: float) -> dict[str, Any]:
        """The status payload of ``GET /v1/participants/{id}``."""
        with self._lock:
            participant = self._get_locked(participant_id)
            payload: dict[str, Any] = {
                "participant": participant.id,
                "status": participant.status,
                "spec": participant.spec,
                "skill": participant.skill,
                "wait_seconds": round(participant.wait_seconds(now), 6),
                "joined_utc": participant.joined_utc,
            }
            if participant.status == "waiting":
                pool = self._pending.get(participant.spec, {})
                payload["position"] = list(pool).index(participant.id)
            if participant.cohort is not None:
                payload["cohort"] = participant.cohort
                payload["member"] = participant.member
            return payload

    def resolve_matched(
        self, members: "Iterable[Participant]", cohort_id: str, *, now: float
    ) -> None:
        """Mark ``members`` matched into ``cohort_id`` (in member order)."""
        with self._lock:
            for index, participant in enumerate(members):
                pool = self._pending.get(participant.spec, {})
                pool.pop(participant.id, None)
                participant.status = "matched"
                participant.cohort = cohort_id
                participant.member = index
                participant.resolved_at = now
                self._remember_resolved_locked(participant.id)

    def expire_spec(self, spec: str, *, now: float) -> "list[Participant]":
        """Expire every participant waiting on ``spec``; returns them."""
        with self._lock:
            pool = self._pending.get(spec, {})
            expired = list(pool.values())
            pool.clear()
            for participant in expired:
                participant.status = "expired"
                participant.resolved_at = now
                self._remember_resolved_locked(participant.id)
            return expired

    def leave(self, participant_id: str, *, now: float) -> tuple[Participant, bool]:
        """Handle ``DELETE``: remove a waiting participant from its pool.

        Returns ``(participant, removed)`` where ``removed`` is true when
        the participant was waiting and has now left; an
        already-resolved participant is returned unchanged (the DELETE
        is idempotent and its body reports the final status).
        """
        with self._lock:
            participant = self._get_locked(participant_id)
            if participant.status != "waiting":
                return participant, False
            self._pending.get(participant.spec, {}).pop(participant_id, None)
            participant.status = "left"
            participant.resolved_at = now
            self._remember_resolved_locked(participant_id)
            return participant, True

    def _remember_resolved_locked(self, participant_id: str) -> None:
        self._resolved.append(participant_id)
        while len(self._resolved) > self._resolved_memory:
            aged_out = self._resolved.popleft()
            self._participants.pop(aged_out, None)

    def __repr__(self) -> str:
        with self._lock:
            waiting = sum(len(pool) for pool in self._pending.values())
            return f"JoinQueue(participants={len(self._participants)}, waiting={waiting})"
