"""Synthetic skill data: distributions and canned instances."""

from repro.data.datasets import TOY_EXAMPLE, toy_example_skills
from repro.data.scenarios import (
    SCENARIOS,
    bimodal_community,
    classroom,
    crowd_workers,
    expert_panel,
    get_scenario,
    power_law_platform,
)
from repro.data.distributions import (
    DISTRIBUTIONS,
    LOGNORMAL_MU,
    LOGNORMAL_SIGMA,
    ZIPF_SHAPES,
    get_distribution,
    lognormal_skills,
    uniform_skills,
    zipf_skills,
)

__all__ = [
    "TOY_EXAMPLE",
    "toy_example_skills",
    "SCENARIOS",
    "get_scenario",
    "classroom",
    "crowd_workers",
    "expert_panel",
    "bimodal_community",
    "power_law_platform",
    "DISTRIBUTIONS",
    "LOGNORMAL_MU",
    "LOGNORMAL_SIGMA",
    "ZIPF_SHAPES",
    "get_distribution",
    "lognormal_skills",
    "uniform_skills",
    "zipf_skills",
]
