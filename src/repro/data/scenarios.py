"""Named workload scenarios.

The paper motivates TDG with concrete settings — classrooms, social Q&A,
crowdsourcing platforms.  This module provides realistic initial-skill
generators for those settings, used by the examples, the extended benches
and the test suite.  Each scenario returns a strictly positive skill
array and is fully seeded.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro._validation import require_positive_int

__all__ = [
    "classroom",
    "crowd_workers",
    "expert_panel",
    "bimodal_community",
    "power_law_platform",
    "SCENARIOS",
    "get_scenario",
]


def _rng(rng: np.random.Generator | None, seed: int | None) -> np.random.Generator:
    if rng is not None and seed is not None:
        raise ValueError("provide at most one of rng= or seed=")
    return rng if rng is not None else np.random.default_rng(seed)


def classroom(
    n: int, *, rng: np.random.Generator | None = None, seed: int | None = None
) -> np.ndarray:
    """A course cohort: few strong students, a broad middle, some novices.

    Mixture on (0, 1]: 10% strong (0.75-0.95), 60% average (0.35-0.65),
    30% novice (0.05-0.30) — the shape a pre-test typically produces.
    """
    n = require_positive_int(n, name="n")
    generator = _rng(rng, seed)
    n_strong = max(n // 10, 1)
    n_novice = max((n * 3) // 10, 1)
    n_mid = max(n - n_strong - n_novice, 0)
    parts = [
        generator.uniform(0.75, 0.95, size=n_strong),
        generator.uniform(0.35, 0.65, size=n_mid),
        generator.uniform(0.05, 0.30, size=n_novice),
    ]
    return generator.permutation(np.concatenate(parts))[:n]


def crowd_workers(
    n: int, *, rng: np.random.Generator | None = None, seed: int | None = None
) -> np.ndarray:
    """AMT-style workers: clipped normal around moderate familiarity."""
    n = require_positive_int(n, name="n")
    generator = _rng(rng, seed)
    return np.clip(generator.normal(0.45, 0.22, size=n), 1e-6, 1.0)


def expert_panel(
    n: int,
    *,
    expert_fraction: float = 0.02,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> np.ndarray:
    """Almost-novice population seeded with a tiny expert minority.

    The regime where targeted grouping matters most: a couple of experts
    must be leveraged to educate everyone (the misinformation-dispelling
    scenario of the introduction).
    """
    n = require_positive_int(n, name="n")
    if not 0.0 < expert_fraction < 1.0:
        raise ValueError(f"expert_fraction must be in (0, 1), got {expert_fraction}")
    generator = _rng(rng, seed)
    n_experts = max(1, int(round(expert_fraction * n)))
    skills = generator.uniform(0.02, 0.15, size=n)
    expert_idx = generator.choice(n, size=n_experts, replace=False)
    skills[expert_idx] = generator.uniform(0.9, 1.0, size=n_experts)
    return skills


def bimodal_community(
    n: int, *, rng: np.random.Generator | None = None, seed: int | None = None
) -> np.ndarray:
    """Two well-separated skill communities of equal size.

    Stress test for grouping policies: clustering-style heuristics
    (K-Means) keep the communities apart, starving the weak one.
    """
    n = require_positive_int(n, name="n")
    generator = _rng(rng, seed)
    half = n // 2
    low = generator.uniform(0.05, 0.25, size=n - half)
    high = generator.uniform(0.7, 0.95, size=half)
    return generator.permutation(np.concatenate([low, high]))


def power_law_platform(
    n: int,
    *,
    exponent: float = 1.8,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> np.ndarray:
    """Online-platform skill profile: Pareto-like heavy tail.

    Draws ``(1 − u)^{-1/exponent}`` (Pareto with minimum 1) — a long tail
    of casual members with a few extremely knowledgeable ones.
    """
    n = require_positive_int(n, name="n")
    if exponent <= 0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    generator = _rng(rng, seed)
    u = generator.random(n)
    return (1.0 - u) ** (-1.0 / exponent)


#: Named scenarios for examples, benches, and the CLI.
SCENARIOS: dict[str, Callable[..., np.ndarray]] = {
    "classroom": classroom,
    "crowd-workers": crowd_workers,
    "expert-panel": expert_panel,
    "bimodal-community": bimodal_community,
    "power-law-platform": power_law_platform,
}


def get_scenario(name: str) -> Callable[..., np.ndarray]:
    """Look up a named scenario generator.

    Raises:
        ValueError: for an unknown name.
    """
    try:
        return SCENARIOS[name.lower()]
    except KeyError:
        raise ValueError(f"unknown scenario {name!r}; expected one of {sorted(SCENARIOS)}") from None
