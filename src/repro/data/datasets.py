"""Canned instances used throughout the paper, tests, and examples."""

from __future__ import annotations

import numpy as np

__all__ = ["toy_example_skills", "TOY_EXAMPLE"]

#: The Section II toy example: 9 students, skills 0.1 … 0.9.
TOY_EXAMPLE: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def toy_example_skills() -> np.ndarray:
    """Fresh copy of the paper's toy-example skill array.

    The running example of Sections II and III: ``n = 9`` students in a
    Python programming course with ``k = 3`` groups, ``r = 0.5``.  After
    3 rounds, DyGroups-Star achieves a total gain of 2.55, the paper's
    "arbitrary local optimum" walk-through achieves 2.4, and
    DyGroups-Clique achieves 2.334375 — all verified in the test suite.
    """
    return np.array(TOY_EXAMPLE, dtype=np.float64)
