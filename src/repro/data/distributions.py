"""Synthetic initial-skill generators (Section V-B1, "Distribution").

The paper draws initial skills from distributions guaranteed to produce
positive values:

* **log-normal** with ``µ = e`` and ``σ = √e`` (parameters of the
  underlying normal, as passed to the generator);
* **Zipf** with shape parameters ``2.3`` and ``10``;
* **uniform** on (0, 1] — used by the Section V-B3 brute-force validation.

All generators take either a seed or a ``numpy.random.Generator`` and
return strictly positive ``float64`` arrays.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro._validation import require_positive_int

__all__ = [
    "LOGNORMAL_MU",
    "LOGNORMAL_SIGMA",
    "ZIPF_SHAPES",
    "lognormal_skills",
    "zipf_skills",
    "uniform_skills",
    "get_distribution",
    "DISTRIBUTIONS",
]

#: The paper's log-normal location parameter (µ = e).
LOGNORMAL_MU: float = math.e
#: The paper's log-normal scale parameter (σ = √e).
LOGNORMAL_SIGMA: float = math.sqrt(math.e)
#: The paper's two Zipf shape settings.
ZIPF_SHAPES: tuple[float, float] = (2.3, 10.0)


def _resolve_rng(rng: np.random.Generator | None, seed: int | None) -> np.random.Generator:
    if rng is not None and seed is not None:
        raise ValueError("provide at most one of rng= or seed=")
    return rng if rng is not None else np.random.default_rng(seed)


def lognormal_skills(
    n: int,
    *,
    mu: float = LOGNORMAL_MU,
    sigma: float = LOGNORMAL_SIGMA,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> np.ndarray:
    """Draw ``n`` log-normal skills (defaults: the paper's µ=e, σ=√e)."""
    n = require_positive_int(n, name="n")
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    return _resolve_rng(rng, seed).lognormal(mean=mu, sigma=sigma, size=n)


def zipf_skills(
    n: int,
    *,
    shape: float = ZIPF_SHAPES[0],
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> np.ndarray:
    """Draw ``n`` Zipf-distributed skills (positive integers as floats).

    The paper's shape settings are 2.3 and 10.  Shape must exceed 1 for
    the Zipf distribution to be proper.
    """
    n = require_positive_int(n, name="n")
    if shape <= 1.0:
        raise ValueError(f"Zipf shape must exceed 1, got {shape}")
    return _resolve_rng(rng, seed).zipf(a=shape, size=n).astype(np.float64)


def uniform_skills(
    n: int,
    *,
    low: float = 0.0,
    high: float = 1.0,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> np.ndarray:
    """Draw ``n`` uniform skills on (low, high] — strictly positive.

    ``numpy`` samples the half-open interval [low, high); we mirror it to
    (low, high] so a draw of exactly ``low`` (e.g. 0) cannot produce an
    invalid non-positive skill.
    """
    n = require_positive_int(n, name="n")
    if not 0.0 <= low < high:
        raise ValueError(f"need 0 <= low < high, got low={low}, high={high}")
    draws = _resolve_rng(rng, seed).uniform(low, high, size=n)
    return high - (draws - low)


#: Named distributions for the experiment harness and CLI.
DISTRIBUTIONS: dict[str, Callable[..., np.ndarray]] = {
    "lognormal": lognormal_skills,
    "zipf": zipf_skills,
    "zipf-10": lambda n, **kw: zipf_skills(n, shape=ZIPF_SHAPES[1], **kw),
    "uniform": uniform_skills,
}


def get_distribution(name: str) -> Callable[..., np.ndarray]:
    """Look up a named skill distribution generator.

    Raises:
        ValueError: for an unknown name.
    """
    try:
        return DISTRIBUTIONS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown distribution {name!r}; expected one of {sorted(DISTRIBUTIONS)}"
        ) from None
