"""DYG2xx — contract rules.

The reproduction validates eagerly: every public entry point coerces and
checks its inputs through :mod:`repro._validation` before computing, and
array arguments are treated as read-only unless explicitly copied.  These
rules police both halves of that contract:

* ``DYG201`` — a public module-level function taking the model's core
  parameters (``skills``, or ``k`` together with ``rate``/``r``) must
  route through a ``_validation`` helper, validate inline (raise
  ``ValueError``/``TypeError``), or delegate the parameters to another
  repro function that does;
* ``DYG202`` — no in-place mutation of a parameter (subscript stores,
  augmented assignment, ``.sort()``-style mutators) unless the name was
  first rebound to an explicit copy.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.base import FileContext, Finding, Rule, walk_shallow

__all__ = ["ValidationRoutingRule", "ParameterMutationRule"]

#: The helper vocabulary of ``repro._validation`` (its ``__all__``).
VALIDATION_HELPERS = frozenset(
    {
        "as_skill_array",
        "require_positive_int",
        "require_int_in_range",
        "require_learning_rate",
        "require_probability",
        "require_divisible_groups",
    }
)

#: In-place mutator methods on numpy arrays (and the shared ``sort``).
_MUTATOR_METHODS = frozenset({"sort", "fill", "resize", "partition", "put", "byteswap"})

#: ``np.<fn>(target, ...)`` calls that write into their first argument.
_NUMPY_MUTATOR_FUNCS = frozenset({"put", "place", "copyto", "putmask"})


def _function_defs(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function definition in the module, including methods."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = func.args
    names = [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


class ValidationRoutingRule(Rule):
    """DYG201: public entry points must route through ``_validation``."""

    code = "DYG201"
    name = "validation-routing"
    summary = "public function takes skills/k/r but never routes through _validation"
    fix = "validate eagerly via repro.core._validation helpers before computing"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.test_path:
            # Test helpers exercise the validated entry points; they are
            # not themselves part of the public validated surface.
            return
        for node in ctx.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            params = set(_param_names(node))
            core = {"skills"} & params
            if not core and not ({"k"} <= params and ({"rate", "r"} & params)):
                continue
            tracked = core | ({"k", "rate", "r"} & params)
            if self._routes(node, tracked):
                continue
            yield Finding.at(
                node,
                f"public function {node.name}() accepts "
                f"{'/'.join(sorted(tracked))} but neither calls a "
                "repro._validation helper, validates inline, nor delegates "
                "them to a validating function",
            )

    @staticmethod
    def _routes(func: ast.FunctionDef | ast.AsyncFunctionDef, tracked: set[str]) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Raise):
                exc = node.exc
                target = exc.func if isinstance(exc, ast.Call) else exc
                if isinstance(target, ast.Name) and target.id in (
                    "ValueError",
                    "TypeError",
                    "ContractViolation",
                ):
                    return True  # inline eager validation
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if isinstance(callee, ast.Name) and callee.id in VALIDATION_HELPERS:
                return True
            if isinstance(callee, ast.Attribute) and callee.attr in VALIDATION_HELPERS:
                return True
            # Delegation: a tracked parameter forwarded by name to another
            # function.  numpy calls do not count — np.asarray(skills)
            # coerces but validates nothing.
            forwards = any(
                isinstance(a, ast.Name) and a.id in tracked for a in node.args
            ) or any(
                isinstance(kw.value, ast.Name) and kw.value.id in tracked
                for kw in node.keywords
            )
            if forwards and not _is_numpy_callee(callee):
                return True
        return False


def _is_numpy_callee(callee: ast.expr) -> bool:
    """Whether a call target is (an attribute chain rooted at) numpy."""
    node = callee
    while isinstance(node, ast.Attribute):
        node = node.value
    return isinstance(node, ast.Name) and node.id in ("np", "numpy")


class ParameterMutationRule(Rule):
    """DYG202: no in-place mutation of parameters without an explicit copy."""

    code = "DYG202"
    name = "parameter-mutation"
    summary = "in-place mutation of a function parameter without an explicit copy"
    fix = "copy the argument (np.asarray(...).copy()) before mutating it"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for func in _function_defs(ctx.tree):
            params = _param_names(func)
            tracked = {p for p in params if p not in ("self", "cls")}
            if not tracked:
                continue
            yield from self._scan(func, tracked)

    @staticmethod
    def _scan(
        func: ast.FunctionDef | ast.AsyncFunctionDef, tracked: set[str]
    ) -> Iterator[Finding]:
        live = set(tracked)
        for node in walk_shallow(func):
            if isinstance(node, ast.Assign):
                # A plain rebind makes the name a local (typically a copy):
                # stop tracking it.  The subscript-store check below runs
                # first so `p[i] = v` is still caught.
                for target in node.targets:
                    yield from _flag_subscript_store(target, live)
                for target in node.targets:
                    for name in _bound_names(target):
                        live.discard(name)
            elif isinstance(node, ast.AugAssign):
                target = node.target
                if isinstance(target, ast.Name) and target.id in live:
                    yield Finding.at(
                        node,
                        f"augmented assignment mutates parameter {target.id!r} "
                        "in place (for arrays `x += v` writes through); copy "
                        "first or use `x = x + v`",
                    )
                else:
                    yield from _flag_subscript_store(target, live)
            elif isinstance(node, (ast.AnnAssign, ast.For, ast.AsyncFor)):
                target = node.target
                if isinstance(node, ast.AnnAssign):
                    yield from _flag_subscript_store(target, live)
                for name in _bound_names(target):
                    live.discard(name)
            elif isinstance(node, ast.withitem) and node.optional_vars is not None:
                for name in _bound_names(node.optional_vars):
                    live.discard(name)
            elif isinstance(node, ast.Call):
                callee = node.func
                if (
                    isinstance(callee, ast.Attribute)
                    and callee.attr in _MUTATOR_METHODS
                    and isinstance(callee.value, ast.Name)
                    and callee.value.id in live
                ):
                    yield Finding.at(
                        node,
                        f"{callee.value.id}.{callee.attr}() mutates parameter "
                        f"{callee.value.id!r} in place; copy it first",
                    )
                elif (
                    _is_numpy_callee(callee)
                    and isinstance(callee, ast.Attribute)
                    and callee.attr in _NUMPY_MUTATOR_FUNCS
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in live
                ):
                    yield Finding.at(
                        node,
                        f"np.{callee.attr}() writes into parameter "
                        f"{node.args[0].id!r} in place; copy it first",
                    )


def _bound_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _bound_names(element)
    elif isinstance(target, ast.Starred):
        yield from _bound_names(target.value)


def _flag_subscript_store(target: ast.expr, live: set[str]) -> Iterator[Finding]:
    if (
        isinstance(target, ast.Subscript)
        and isinstance(target.value, ast.Name)
        and target.value.id in live
    ):
        yield Finding.at(
            target,
            f"subscript store writes into parameter {target.value.id!r} in "
            "place; copy it first",
        )
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flag_subscript_store(element, live)
