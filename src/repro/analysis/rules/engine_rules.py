"""DYG2xx (engine) — round-step unification rules.

Algorithm 1's round step — propose a grouping, update skills through an
interaction mode, account the gain — lives in exactly one place per
engine: :class:`repro.engine.kernel.RoundKernel` (scalar) and
:class:`repro.engine.stacked.StackedRoundKernel` (batched).  Every other
layer (drivers, experiments, serving, extensions) must delegate to those
kernels rather than re-inline the loop body, or observability events,
contract hooks, and gain accounting silently drift apart.

* ``DYG204`` — a function outside ``repro/core`` and ``repro/engine``
  that calls a policy's ``.propose(...)`` / ``.propose_many(...)`` *and*
  applies a skill update (``.update(skills, grouping, ...)``) is
  hand-inlining the round step.  Legitimate exceptions (e.g. proposing
  on skill *estimates* while updating latent skills, which no kernel
  models) carry a reasoned ``# noqa: DYG204``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable

from repro.analysis.base import FileContext, Finding, Rule

__all__ = ["ManualRoundStepRule", "round_step_exempt_path"]

#: Path components whose modules own the round step and may inline it.
ROUND_STEP_ALLOWLIST = frozenset({"core", "engine"})

#: The propose-step spellings of :class:`~repro.core.simulation.GroupingPolicy`
#: and :class:`~repro.core.vectorized.VectorizedPolicy`.
_PROPOSE_METHODS = frozenset({"propose", "propose_many"})


def round_step_exempt_path(path: "str | Path") -> bool:
    """Whether a module may hand-inline the round step (kernel home turf)."""
    return bool(ROUND_STEP_ALLOWLIST & set(Path(path).parts))


class ManualRoundStepRule(Rule):
    """DYG204: no hand-inlined propose/update round steps outside the kernels."""

    code = "DYG204"
    name = "manual-round-step"
    summary = "propose+update round step inlined outside repro.core/repro.engine"
    fix = "drive rounds through repro.engine.RoundKernel instead of inlining the step"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if round_step_exempt_path(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            proposes = False
            update_call: "ast.Call | None" = None
            for inner in ast.walk(node):
                if not isinstance(inner, ast.Call):
                    continue
                callee = inner.func
                if not isinstance(callee, ast.Attribute):
                    continue
                if callee.attr in _PROPOSE_METHODS:
                    proposes = True
                elif callee.attr == "update" and len(inner.args) >= 2:
                    # Two-plus positional arguments separates the mode's
                    # update(skills, grouping, gain) from dict.update(other).
                    update_call = inner
            if proposes and update_call is not None:
                yield Finding.at(
                    update_call,
                    f"function {node.name}() inlines the propose → update round "
                    "step; delegate to repro.engine.RoundKernel (or "
                    "StackedRoundKernel) so events, contracts, and gain "
                    "accounting stay unified",
                )
