"""DYG3xx — API-hygiene rules.

* ``DYG301`` — ``__all__`` drift: an ``__all__`` entry that names nothing
  defined or imported at module top level (stale exports survive renames
  silently, because ``from m import *`` is rarely exercised by tests);
* ``DYG302`` — float-literal ``==``/``!=`` comparisons (round-trip through
  arithmetic makes exact equality a latent bug; compare with a tolerance,
  or ``# noqa: DYG302`` an intentional exact-sentinel guard);
* ``DYG303`` — bare ``except:`` (swallows ``KeyboardInterrupt``/
  ``SystemExit`` and hides real failures).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.base import FileContext, Finding, Rule

__all__ = ["AllDriftRule", "FloatEqualityRule", "BareExceptRule"]


def _module_bindings(tree: ast.Module) -> set[str]:
    """Names bound at module top level (defs, classes, assigns, imports)."""
    bound: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                bound.update(_target_names(target))
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            bound.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.partition(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    return bound | {"*"}
                bound.add(alias.asname or alias.name)
        elif isinstance(node, (ast.If, ast.Try)):
            # Conditional definitions (TYPE_CHECKING blocks, fallbacks)
            # still bind the name on some path; count them.
            for sub in ast.walk(node):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    bound.add(sub.name)
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        bound.update(_target_names(target))
                elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for alias in sub.names:
                        if alias.name != "*":
                            bound.add(alias.asname or alias.name.partition(".")[0])
    return bound


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


class AllDriftRule(Rule):
    """DYG301: every ``__all__`` entry must name a top-level binding."""

    code = "DYG301"
    name = "all-drift"
    summary = "__all__ entry names nothing defined at module top level"
    fix = "remove the stale entry or define/import the name it exports"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        declaration = None
        for node in ctx.tree.body:
            if (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
                )
                and isinstance(node.value, (ast.List, ast.Tuple))
            ):
                declaration = node
        if declaration is None:
            return
        entries: list[tuple[ast.expr, str]] = []
        for element in declaration.value.elts:  # type: ignore[union-attr]
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                entries.append((element, element.value))
            else:
                return  # dynamically built __all__ — out of scope
        bound = _module_bindings(ctx.tree)
        if "*" in bound:
            return  # star import — resolution is not statically decidable
        seen: set[str] = set()
        for element, name in entries:
            if name in seen:
                yield Finding.at(element, f"duplicate __all__ entry {name!r}")
            seen.add(name)
            if name not in bound:
                yield Finding.at(
                    element,
                    f"__all__ lists {name!r} but the module defines no such name",
                )


class FloatEqualityRule(Rule):
    """DYG302: no ``==``/``!=`` against float literals."""

    code = "DYG302"
    name = "float-equality"
    summary = "exact ==/!= comparison against a float literal"
    fix = "compare with math.isclose/np.isclose (tests asserting exact values are exempt)"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.test_path:
            # Tests assert exact reproducibility on purpose — bit-identical
            # groupings and gains are the repo's core property.
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for position, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(operands[position]) or _is_float_literal(
                    operands[position + 1]
                ):
                    yield Finding.at(
                        node,
                        "exact float comparison; use math.isclose/np.isclose "
                        "(or # noqa: DYG302 for an intentional exact guard)",
                    )
                    break


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and type(node.value) is float


class BareExceptRule(Rule):
    """DYG303: no bare ``except:`` handlers."""

    code = "DYG303"
    name = "bare-except"
    summary = "bare `except:` (catches SystemExit/KeyboardInterrupt)"
    fix = "catch `Exception` (or the specific error) so interrupts propagate"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield Finding.at(
                    node,
                    "bare `except:` catches SystemExit and KeyboardInterrupt; "
                    "name the exceptions (at minimum `except Exception:`)",
                )
