"""DYG4xx — concurrency rules.

The serve and scenario layers are threaded: session stores, grouping
memos, micro-batching schedulers, and load generators all guard shared
state with locks, and the correctness of that guarding used to rest on
convention alone.  These rules prove the conventions at lint time, the
same way ``DYG1xx`` proves seeded-RNG threading:

* ``DYG401`` — unguarded shared-state mutation: an attribute write on
  ``self`` outside a ``with self._lock`` block, in any class that owns a
  ``threading.Lock``/``RLock`` (or a
  :mod:`repro.analysis.sanitizer` factory lock).  ``__init__`` /
  ``__post_init__`` are exempt (no concurrent access before the object
  escapes), as are methods ending in ``_locked`` (the repo's
  caller-holds-the-lock convention) and methods that manage the lock
  manually through ``.acquire()`` (the scheduler's sorted wave);
* ``DYG402`` — lock-ordering cycles: nested ``with`` blocks over
  lock-named objects build a per-module acquisition graph; an edge that
  closes a cycle is a deadlock shape.  The scheduler's sorted-lock wave
  (same-name locks acquired in session-id order via ``.acquire()``) is
  the sanctioned idiom and invisible to this rule by construction — the
  runtime sanitizer checks its rank discipline instead;
* ``DYG403`` — blocking call while holding a lock: ``queue.get``,
  ``subprocess``, ``time.sleep``, socket/HTTP waits, ``future.result``
  inside a lock-guarded ``with`` body stall every contending thread;
* ``DYG404`` — process spawn while holding a lock: ``os.fork``,
  ``multiprocessing.Process``/``Pool``/``get_context``, a
  ``ProcessPoolExecutor``, or the warm worker pool
  (:class:`repro.experiments.parallel.WorkerPool` / ``shared_pool`` —
  which fork at construction/first use) created in a lock-guarded
  region — a forked child inherits held locks mid-state and deadlocks
  on first contact.

What the AST cannot see — acquisition orders threaded through
callbacks, futures, and worker loops — is covered at test time by the
runtime sanitizer (:mod:`repro.analysis.sanitizer`).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.base import FileContext, Finding, ImportMap, Rule

__all__ = [
    "BlockingCallUnderLockRule",
    "LockOrderingCycleRule",
    "ProcessSpawnUnderLockRule",
    "UnguardedSharedStateRule",
]

#: ``threading`` constructors that create a lock.
_LOCK_CTORS = frozenset({"Lock", "RLock"})

#: :mod:`repro.analysis.sanitizer` factory functions that create a lock.
_SANITIZER_FACTORIES = frozenset({"lock", "rlock"})

#: Name fragments marking an object as a lock for the ``with``-walkers.
_LOCKISH_FRAGMENTS = ("lock", "mutex")

#: Blocking module-level callables per module (DYG403).
_BLOCKING_MODULE_CALLS = {
    "time": frozenset({"sleep"}),
    "subprocess": frozenset({"run", "call", "check_call", "check_output", "Popen"}),
    "socket": frozenset({"create_connection"}),
    "urllib.request": frozenset({"urlopen"}),
}

#: ``multiprocessing`` spawn entry points (DYG404).
_MP_SPAWNS = frozenset({"Process", "Pool", "get_context"})

#: Warm-worker-pool entry points (DYG404): the pool forks its workers at
#: construction / first ensure, so building or fetching one under a lock
#: is exactly an under-lock fork.  ``sharded_orders_parallel`` reaches
#: the pool internally, so calling it under a lock forks just the same.
_POOL_SPAWNS = frozenset({"WorkerPool", "shared_pool", "sharded_orders_parallel"})

#: Module that owns the warm worker pool.
_POOL_MODULE = "repro.experiments.parallel"


def _lockish(name: str) -> bool:
    lowered = name.lower()
    return any(fragment in lowered for fragment in _LOCKISH_FRAGMENTS)


def _lock_label(expr: ast.expr) -> "str | None":
    """The lock label of a ``with`` context expression, if it names a lock."""
    if isinstance(expr, ast.Name) and _lockish(expr.id):
        return expr.id
    if isinstance(expr, ast.Attribute) and _lockish(expr.attr):
        return ast.unparse(expr)
    return None


def _is_lock_ctor(call: ast.Call, imports: ImportMap) -> bool:
    """Whether ``call`` constructs a lock (threading or sanitizer factory)."""
    func = call.func
    threading_names = imports.module_aliases("threading")
    sanitizer_names = imports.module_aliases("repro.analysis.sanitizer")
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id in threading_names and func.attr in _LOCK_CTORS:
            return True
        if func.value.id in sanitizer_names and func.attr in _SANITIZER_FACTORIES:
            return True
    if isinstance(func, ast.Name):
        for member in _LOCK_CTORS:
            if func.id in imports.member_aliases("threading", member):
                return True
        for member in _SANITIZER_FACTORIES:
            if func.id in imports.member_aliases("repro.analysis.sanitizer", member):
                return True
    return False


def _self_attr(expr: ast.expr) -> "str | None":
    """``X`` when ``expr`` is exactly ``self.X``."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


class UnguardedSharedStateRule(Rule):
    """DYG401: guard ``self`` attribute writes in lock-owning classes."""

    code = "DYG401"
    name = "unguarded-shared-state"
    summary = "attribute write on self outside `with self._lock` in a lock-owning class"
    fix = "wrap the write in `with self._lock:` (or move it into __init__ / a *_locked helper)"

    #: Methods where unguarded writes are safe by construction.
    _EXEMPT_METHODS = frozenset({"__init__", "__post_init__"})

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        imports = ImportMap.of(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            lock_attrs = self._owned_locks(node, imports)
            if not lock_attrs:
                continue
            for method in node.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name in self._EXEMPT_METHODS or method.name.endswith("_locked"):
                    continue
                if self._manages_lock_manually(method, lock_attrs):
                    continue
                yield from self._scan_body(method.body, False, lock_attrs, node.name)

    @staticmethod
    def _owned_locks(cls: ast.ClassDef, imports: ImportMap) -> frozenset[str]:
        """Attribute names bound to a lock constructor anywhere in the class."""
        owned: set[str] = set()
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
                continue
            if not _is_lock_ctor(node.value, imports):
                continue
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    owned.add(attr)
        return frozenset(owned)

    @staticmethod
    def _manages_lock_manually(
        method: "ast.FunctionDef | ast.AsyncFunctionDef", lock_attrs: frozenset[str]
    ) -> bool:
        """Whether the method calls ``self.<lock>.acquire()`` explicitly.

        Manual acquire/release (the scheduler's sorted session-lock wave)
        cannot be region-tracked statically; the runtime sanitizer owns
        that case.
        """
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("acquire", "release")
                and _self_attr(node.func.value) in lock_attrs
            ):
                return True
        return False

    @classmethod
    def _scan_body(
        cls,
        body: "list[ast.stmt]",
        guarded: bool,
        lock_attrs: frozenset[str],
        class_name: str,
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested defs run later, possibly under a caller's lock
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = guarded or any(
                    _self_attr(item.context_expr) in lock_attrs for item in stmt.items
                )
                yield from cls._scan_body(stmt.body, inner, lock_attrs, class_name)
                continue
            if not guarded:
                yield from cls._flag_writes(stmt, lock_attrs, class_name)
            for field in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, field, None)
                if sub:
                    yield from cls._scan_body(sub, guarded, lock_attrs, class_name)
            for handler in getattr(stmt, "handlers", ()):
                yield from cls._scan_body(handler.body, guarded, lock_attrs, class_name)

    @staticmethod
    def _flag_writes(
        stmt: ast.stmt, lock_attrs: frozenset[str], class_name: str
    ) -> Iterator[Finding]:
        if isinstance(stmt, ast.Assign):
            targets: "list[ast.expr]" = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        else:
            return
        for target in targets:
            attr = _self_attr(target)
            if attr is not None and attr not in lock_attrs:
                yield Finding.at(
                    target,
                    f"{class_name} owns a lock but writes self.{attr} outside "
                    "a `with self.<lock>` block; guard the mutation (or use a "
                    "`*_locked` method whose caller holds the lock)",
                )


class _LockRegionWalker:
    """Shared scope walker for DYG402/403/404.

    Walks one execution scope (the module body or one function body)
    tracking the lexical stack of held lock labels.  Nested function
    definitions start fresh scopes — their bodies execute later, not at
    the definition point.
    """

    def __init__(self) -> None:
        #: every ``outer → inner`` acquisition with its site node.
        self.edges: list[tuple[str, str, ast.AST]] = []
        #: every call made while at least one lock label is held.
        self.guarded_calls: list[tuple[ast.Call, tuple[str, ...]]] = []

    def walk_module(self, tree: ast.Module) -> None:
        scopes: "list[list[ast.stmt]]" = [tree.body]
        collected = 0
        while collected < len(scopes):
            body = scopes[collected]
            collected += 1
            self._walk_body(body, [], scopes)

    def _walk_body(
        self, body: "list[ast.stmt]", stack: "list[str]", scopes: "list[list[ast.stmt]]"
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(stmt.body)
                continue
            if isinstance(stmt, ast.ClassDef):
                scopes.append(stmt.body)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                labels = []
                for item in stmt.items:
                    label = _lock_label(item.context_expr)
                    if label is not None:
                        for outer in stack + labels:
                            if outer != label:
                                self.edges.append((outer, label, stmt))
                        labels.append(label)
                if stack or labels:
                    self._collect_calls(stmt.items, tuple(stack + labels))
                self._walk_body(stmt.body, stack + labels, scopes)
                continue
            if stack:
                self._collect_calls([stmt], tuple(stack))
            for field in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, field, None)
                if sub:
                    self._walk_body(sub, stack, scopes)
            for handler in getattr(stmt, "handlers", ()):
                self._walk_body(handler.body, stack, scopes)

    def _collect_calls(self, roots: Iterable[ast.AST], held: tuple[str, ...]) -> None:
        for root in roots:
            for node in ast.walk(root):  # type: ignore[arg-type]
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    continue
                if isinstance(node, ast.Call):
                    self.guarded_calls.append((node, held))


def _walker(ctx: FileContext) -> _LockRegionWalker:
    walker = _LockRegionWalker()
    walker.walk_module(ctx.tree)
    return walker


class LockOrderingCycleRule(Rule):
    """DYG402: no cycles in the per-module lock-acquisition graph."""

    code = "DYG402"
    name = "lock-ordering-cycle"
    summary = "nested `with` lock acquisitions form an ordering cycle (deadlock shape)"
    fix = "acquire locks in one global order everywhere (sort them, like the scheduler's session-id waves)"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        walker = _walker(ctx)
        if not walker.edges:
            return
        edge_set = {(outer, inner) for outer, inner, _ in walker.edges}
        for outer, inner, node in walker.edges:
            if _reaches(inner, outer, edge_set):
                yield Finding.at(
                    node,
                    f"acquiring {inner!r} while holding {outer!r} completes a "
                    "lock-ordering cycle; pick one global acquisition order "
                    "(the runtime sanitizer checks the dynamic case)",
                )


def _reaches(source: str, target: str, edges: "set[tuple[str, str]]") -> bool:
    frontier = [source]
    visited = {source}
    while frontier:
        node = frontier.pop()
        if node == target:
            return True
        for outer, inner in edges:
            if outer == node and inner not in visited:
                visited.add(inner)
                frontier.append(inner)
    return False


class BlockingCallUnderLockRule(Rule):
    """DYG403: no blocking calls inside a lock-guarded ``with`` body."""

    code = "DYG403"
    name = "blocking-call-under-lock"
    summary = "blocking call (queue.get/sleep/subprocess/socket) while holding a lock"
    fix = "move the blocking call outside the `with` block; hold locks only around state changes"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        imports = ImportMap.of(ctx.tree)
        for call, held in _walker(ctx).guarded_calls:
            description = _blocking_description(call, imports)
            if description is not None:
                yield Finding.at(
                    call,
                    f"{description} while holding {held[-1]!r} stalls every "
                    "thread contending on it; release the lock first",
                )


def _blocking_description(call: ast.Call, imports: ImportMap) -> "str | None":
    """A human-readable label when ``call`` is a known blocking call."""
    func = call.func
    # Module-resolved calls: time.sleep, subprocess.run, socket dials ...
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        for module, members in _BLOCKING_MODULE_CALLS.items():
            if func.value.id in imports.module_aliases(module) and func.attr in members:
                return f"{module}.{func.attr}()"
    if isinstance(func, ast.Name):
        for module, members in _BLOCKING_MODULE_CALLS.items():
            for member in members:
                if func.id in imports.member_aliases(module, member):
                    return f"{func.id}() ({module}.{member})"
    # Receiver-name heuristics: queue.get, future.result, thread joins,
    # socket reads.  The receiver's spelled-out name carries the intent.
    if isinstance(func, ast.Attribute):
        receiver = ast.unparse(func.value).lower()
        if func.attr == "get" and "queue" in receiver:
            return f"{ast.unparse(func.value)}.get()"
        if func.attr == "result" and ("future" in receiver or "fut" in receiver):
            return f"{ast.unparse(func.value)}.result()"
        if func.attr in ("join", "wait") and any(
            fragment in receiver
            for fragment in ("thread", "worker", "proc", "future", "event")
        ):
            return f"{ast.unparse(func.value)}.{func.attr}()"
        if func.attr in ("recv", "recv_into", "accept", "connect", "sendall") and (
            "sock" in receiver or "conn" in receiver
        ):
            return f"{ast.unparse(func.value)}.{func.attr}()"
    return None


class ProcessSpawnUnderLockRule(Rule):
    """DYG404: no fork/process-pool spawn inside a lock-guarded region."""

    code = "DYG404"
    name = "process-spawn-under-lock"
    summary = "fork/ProcessPoolExecutor/multiprocessing spawn while holding a lock"
    fix = "spawn processes before taking locks — a forked child inherits held locks mid-state"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        imports = ImportMap.of(ctx.tree)
        for call, held in _walker(ctx).guarded_calls:
            description = _spawn_description(call, imports)
            if description is not None:
                yield Finding.at(
                    call,
                    f"{description} while holding {held[-1]!r}: a forked child "
                    "inherits the held lock mid-state and deadlocks on first "
                    "contact; spawn workers before locking",
                )


def _spawn_description(call: ast.Call, imports: ImportMap) -> "str | None":
    """A human-readable label when ``call`` spawns a process."""
    func = call.func
    if isinstance(func, ast.Attribute):
        if (
            isinstance(func.value, ast.Name)
            and func.value.id in imports.module_aliases("os")
            and func.attr in ("fork", "forkpty")
        ):
            return f"os.{func.attr}()"
        if (
            isinstance(func.value, ast.Name)
            and func.value.id in imports.module_aliases("multiprocessing")
            and func.attr in _MP_SPAWNS
        ):
            return f"multiprocessing.{func.attr}()"
        if func.attr == "ProcessPoolExecutor":
            return "ProcessPoolExecutor(...)"
        if func.attr in _POOL_SPAWNS:
            return f"{func.attr}(...)"
    if isinstance(func, ast.Name):
        if func.id in imports.member_aliases("concurrent.futures", "ProcessPoolExecutor"):
            return "ProcessPoolExecutor(...)"
        for member in _MP_SPAWNS:
            if func.id in imports.member_aliases("multiprocessing", member):
                return f"multiprocessing.{member}()"
        for member in ("fork", "forkpty"):
            if func.id in imports.member_aliases("os", member):
                return f"os.{member}()"
        for member in _POOL_SPAWNS:
            if func.id in imports.member_aliases(_POOL_MODULE, member):
                return f"{member}(...)"
    return None
