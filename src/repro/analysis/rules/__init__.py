"""Rule registry for the ``repro.analysis`` lint engine.

Every rule class is registered in :data:`ALL_RULES`; the engine
instantiates the selected subset per run.  Codes are grouped by family:
``DYG1xx`` determinism, ``DYG2xx`` contracts, ``DYG3xx`` API hygiene,
``DYG4xx`` concurrency.
"""

from __future__ import annotations

from repro.analysis.base import Rule
from repro.analysis.rules.concurrency import (
    BlockingCallUnderLockRule,
    LockOrderingCycleRule,
    ProcessSpawnUnderLockRule,
    UnguardedSharedStateRule,
)
from repro.analysis.rules.contracts_rules import ParameterMutationRule, ValidationRoutingRule
from repro.analysis.rules.determinism import (
    NumpyGlobalRandomRule,
    StdlibRandomRule,
    WallClockRule,
)
from repro.analysis.rules.engine_rules import ManualRoundStepRule
from repro.analysis.rules.hygiene import AllDriftRule, BareExceptRule, FloatEqualityRule

__all__ = ["ALL_RULES", "rule_catalog"]

#: Every registered rule class, in code order.
ALL_RULES: tuple[type[Rule], ...] = (
    StdlibRandomRule,
    NumpyGlobalRandomRule,
    WallClockRule,
    ValidationRoutingRule,
    ParameterMutationRule,
    ManualRoundStepRule,
    AllDriftRule,
    FloatEqualityRule,
    BareExceptRule,
    UnguardedSharedStateRule,
    LockOrderingCycleRule,
    BlockingCallUnderLockRule,
    ProcessSpawnUnderLockRule,
)


def rule_catalog() -> tuple[tuple[str, str, str, str], ...]:
    """``(code, name, summary, fix)`` for every registered rule, in code order."""
    return tuple((rule.code, rule.name, rule.summary, rule.fix) for rule in ALL_RULES)
