"""DYG1xx — determinism rules.

The reproduction's central promise is that a ``seed`` fully determines a
run.  That only holds while every source of randomness is threaded
through the explicit :class:`numpy.random.Generator` passed down the call
stack, and no result-bearing code reads the wall clock.  These rules ban
the process-global escape hatches by construction:

* ``DYG101`` — calls into the stdlib :mod:`random` module (one hidden
  global Mersenne-Twister shared by the whole process);
* ``DYG102`` — the legacy ``numpy.random.*`` global API (``np.random.seed``
  / ``np.random.rand`` / ``RandomState`` ...), superseded by
  ``np.random.default_rng``;
* ``DYG103`` — wall-clock reads (``time.time()``, ``datetime.now()``, ...)
  outside the allowlisted subsystems
  (:data:`repro.analysis.base.WALLCLOCK_ALLOWLIST`): ``obs``, where
  timestamps are the point, and ``serve``, where request latency, session
  TTLs, and creation stamps legitimately read clocks without feeding
  results.  Monotonic clocks (``perf_counter``/``monotonic``/
  ``process_time``) are allowed everywhere: durations never feed back
  into results.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.base import FileContext, Finding, ImportMap, Rule

__all__ = ["StdlibRandomRule", "NumpyGlobalRandomRule", "WallClockRule"]

#: Instance-based (seedable) constructors on ``numpy.random`` that remain
#: legitimate under the explicit-Generator discipline.
_NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Wall-clock callables per module: calling any of these reads the clock.
_WALLCLOCK_MEMBERS = {
    "time": frozenset({"time", "time_ns", "localtime", "gmtime", "ctime"}),
    "datetime": frozenset({"now", "utcnow", "today", "fromtimestamp"}),
}


def _calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


class StdlibRandomRule(Rule):
    """DYG101: ban the stdlib ``random`` module's process-global RNG."""

    code = "DYG101"
    name = "stdlib-global-random"
    summary = "call into the stdlib `random` module (process-global RNG)"
    fix = "thread a seeded np.random.Generator through the call chain"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        imports = ImportMap.of(ctx.tree)
        module_names = imports.module_aliases("random")
        member_names = frozenset(
            local for local, (mod, _) in imports.members.items() if mod == "random"
        )
        if not module_names and not member_names:
            return
        for call in _calls(ctx.tree):
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in module_names
            ):
                yield Finding.at(
                    call,
                    f"random.{func.attr}() draws from the process-global RNG; "
                    "thread a seeded np.random.Generator instead",
                )
            elif isinstance(func, ast.Name) and func.id in member_names:
                origin = imports.members[func.id][1]
                yield Finding.at(
                    call,
                    f"{func.id}() (random.{origin}) draws from the process-global "
                    "RNG; thread a seeded np.random.Generator instead",
                )


class NumpyGlobalRandomRule(Rule):
    """DYG102: ban the legacy ``numpy.random`` global-state API."""

    code = "DYG102"
    name = "numpy-legacy-random"
    summary = "legacy `np.random.*` global-state API (use np.random.default_rng)"
    fix = "use np.random.default_rng(seed) and pass the Generator explicitly"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        imports = ImportMap.of(ctx.tree)
        numpy_names = imports.module_aliases("numpy")
        # `from numpy import random [as npr]` / `import numpy.random as npr`
        # alias the numpy.random module itself.
        random_names = imports.module_aliases("numpy.random")
        # `from numpy.random import shuffle` binds a legacy function directly.
        legacy_members = frozenset(
            local
            for local, (mod, member) in imports.members.items()
            if mod == "numpy.random" and member not in _NP_RANDOM_ALLOWED
        )
        for call in _calls(ctx.tree):
            func = call.func
            if not isinstance(func, ast.Attribute):
                if isinstance(func, ast.Name) and func.id in legacy_members:
                    origin = imports.members[func.id][1]
                    yield Finding.at(
                        call,
                        f"{func.id}() (numpy.random.{origin}) uses numpy's legacy "
                        "global RNG; use a np.random.default_rng(seed) generator",
                    )
                continue
            if func.attr in _NP_RANDOM_ALLOWED:
                continue
            target = func.value
            is_np_random = (
                isinstance(target, ast.Attribute)
                and target.attr == "random"
                and isinstance(target.value, ast.Name)
                and target.value.id in numpy_names
            ) or (isinstance(target, ast.Name) and target.id in random_names)
            if is_np_random:
                yield Finding.at(
                    call,
                    f"np.random.{func.attr}() uses numpy's legacy global RNG; "
                    "use a np.random.default_rng(seed) generator",
                )


class WallClockRule(Rule):
    """DYG103: ban wall-clock reads outside the allowlisted subsystems."""

    code = "DYG103"
    name = "wall-clock-read"
    summary = "wall-clock read (time.time/datetime.now) outside obs/serve"
    fix = "keep clock reads inside the allowlisted obs/serve/scenarios subsystems"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.wallclock_exempt:
            return
        imports = ImportMap.of(ctx.tree)
        time_names = imports.module_aliases("time")
        datetime_module_names = imports.module_aliases("datetime")
        # Classes `datetime` / `date` imported from the datetime module:
        # `datetime.now()` / `date.today()` are wall-clock constructors.
        class_names = imports.member_aliases("datetime", "datetime") | imports.member_aliases(
            "datetime", "date"
        )
        time_members = frozenset(
            local
            for local, (mod, member) in imports.members.items()
            if mod == "time" and member in _WALLCLOCK_MEMBERS["time"]
        )
        for call in _calls(ctx.tree):
            func = call.func
            if isinstance(func, ast.Name):
                if func.id in time_members:
                    origin = imports.members[func.id][1]
                    yield Finding.at(
                        call,
                        f"{func.id}() (time.{origin}) reads the wall clock; keep "
                        "timestamps inside repro.obs (or use time.perf_counter "
                        "for durations)",
                    )
                continue
            if not isinstance(func, ast.Attribute):
                continue
            target = func.value
            if (
                isinstance(target, ast.Name)
                and target.id in time_names
                and func.attr in _WALLCLOCK_MEMBERS["time"]
            ):
                yield Finding.at(
                    call,
                    f"time.{func.attr}() reads the wall clock; keep timestamps "
                    "inside repro.obs (or use time.perf_counter for durations)",
                )
            elif (
                isinstance(target, ast.Name)
                and target.id in class_names
                and func.attr in _WALLCLOCK_MEMBERS["datetime"]
            ):
                yield Finding.at(
                    call,
                    f"{target.id}.{func.attr}() reads the wall clock; keep "
                    "timestamps inside repro.obs",
                )
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id in datetime_module_names
                and target.attr in ("datetime", "date")
                and func.attr in _WALLCLOCK_MEMBERS["datetime"]
            ):
                yield Finding.at(
                    call,
                    f"datetime.{target.attr}.{func.attr}() reads the wall clock; "
                    "keep timestamps inside repro.obs",
                )
