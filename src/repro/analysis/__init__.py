"""repro.analysis — correctness tooling: static lint + runtime contracts.

Two complementary layers enforce the reproduction's invariants beyond
what the test suite can sample:

* the **AST lint engine** (:mod:`~repro.analysis.engine`) checks the
  source *by construction* — seeded-RNG threading, validation routing,
  API hygiene — via the ``DYG1xx``/``DYG2xx``/``DYG3xx`` rule families
  (``dygroups lint``, and the self-lint test in CI);
* the **runtime contracts** (:mod:`~repro.analysis.contracts`) assert the
  paper's structural guarantees live inside the simulation loop when
  ``REPRO_CONTRACTS=1`` or ``dygroups --contracts`` is set, at zero cost
  when off.

See docs/static-analysis.md for the rule catalog and contracts guide.
"""

from repro.analysis.base import Diagnostic, FileContext, Finding, Rule
from repro.analysis.contracts import (
    ContractViolation,
    check_clique_order_preserved,
    check_gains_nonnegative,
    check_partition,
    check_star_teacher_unchanged,
    check_top_k_teachers,
    contracts_enabled,
    contracts_scope,
    disable_contracts,
    enable_contracts,
)
from repro.analysis.engine import LintEngine, LintReport, lint_paths
from repro.analysis.rules import ALL_RULES, rule_catalog

__all__ = [
    # lint engine
    "ALL_RULES",
    "Diagnostic",
    "FileContext",
    "Finding",
    "LintEngine",
    "LintReport",
    "Rule",
    "lint_paths",
    "rule_catalog",
    # runtime contracts
    "ContractViolation",
    "check_clique_order_preserved",
    "check_gains_nonnegative",
    "check_partition",
    "check_star_teacher_unchanged",
    "check_top_k_teachers",
    "contracts_enabled",
    "contracts_scope",
    "disable_contracts",
    "enable_contracts",
]
