"""repro.analysis — correctness tooling: static lint + runtime contracts.

Two complementary layers enforce the reproduction's invariants beyond
what the test suite can sample:

* the **AST lint engine** (:mod:`~repro.analysis.engine`) checks the
  source *by construction* — seeded-RNG threading, validation routing,
  API hygiene, lock discipline — via the
  ``DYG1xx``/``DYG2xx``/``DYG3xx``/``DYG4xx`` rule families
  (``dygroups lint``, and the self-lint test in CI);
* the **runtime contracts** (:mod:`~repro.analysis.contracts`) assert the
  paper's structural guarantees live inside the simulation loop when
  ``REPRO_CONTRACTS=1`` or ``dygroups --contracts`` is set, at zero cost
  when off;
* the **runtime lock sanitizer** (:mod:`~repro.analysis.sanitizer`)
  instruments the serve/scenario locks when ``REPRO_SANITIZE=1`` or
  ``dygroups --sanitize`` is set, catching cross-thread lock-order
  inversions and held-lock blocking calls the AST cannot see, at zero
  cost when off.

See docs/static-analysis.md for the rule catalog, contracts guide, and
sanitizer guide.
"""

from repro.analysis.base import Diagnostic, FileContext, Finding, Rule
from repro.analysis.contracts import (
    ContractViolation,
    check_clique_order_preserved,
    check_gains_nonnegative,
    check_partition,
    check_star_teacher_unchanged,
    check_top_k_teachers,
    contracts_enabled,
    contracts_scope,
    disable_contracts,
    enable_contracts,
)
from repro.analysis.engine import LintEngine, LintReport, lint_paths
from repro.analysis.rules import ALL_RULES, rule_catalog
from repro.analysis.sanitizer import (
    SanitizedLock,
    check_blocking,
    disable_sanitizer,
    enable_sanitizer,
    sanitize_scope,
    sanitizer_enabled,
    summarize_reports,
)

__all__ = [
    # lint engine
    "ALL_RULES",
    "Diagnostic",
    "FileContext",
    "Finding",
    "LintEngine",
    "LintReport",
    "Rule",
    "lint_paths",
    "rule_catalog",
    # runtime contracts
    "ContractViolation",
    "check_clique_order_preserved",
    "check_gains_nonnegative",
    "check_partition",
    "check_star_teacher_unchanged",
    "check_top_k_teachers",
    "contracts_enabled",
    "contracts_scope",
    "disable_contracts",
    "enable_contracts",
    # runtime lock sanitizer
    "SanitizedLock",
    "check_blocking",
    "disable_sanitizer",
    "enable_sanitizer",
    "sanitize_scope",
    "sanitizer_enabled",
    "summarize_reports",
]
