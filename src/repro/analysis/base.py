"""Shared vocabulary of the lint engine: diagnostics, rules, file context.

A *rule* inspects one parsed module and yields raw findings; the engine
(:mod:`repro.analysis.engine`) turns them into :class:`Diagnostic`
records, applies ``# noqa`` suppressions and ``--select``/``--ignore``
filtering, and aggregates them across files.

Rule codes follow the ``DYG<family><nn>`` scheme:

* ``DYG1xx`` — determinism (seeded-RNG threading, no wall-clock reads);
* ``DYG2xx`` — contracts (eager validation routing, no parameter mutation);
* ``DYG3xx`` — API hygiene (``__all__`` drift, float equality, bare except);
* ``DYG4xx`` — concurrency (lock guarding, ordering, blocking, forking).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Diagnostic",
    "FileContext",
    "Finding",
    "Rule",
    "WALLCLOCK_ALLOWLIST",
    "test_path",
    "wallclock_exempt_path",
]

#: ``# noqa`` / ``# noqa: DYG101, DYG302`` suppression comments.
_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9,\s]+))?", re.IGNORECASE)

#: Modules that may read wall clocks (DYG103 exemption).
#:
#: An entry is either a single path component (exempting a whole
#: subsystem directory) or a ``/``-joined path fragment (exempting one
#: specific module, matched against any consecutive run of the file's
#: path components):
#:
#: * ``obs`` — the observability subsystem timestamps journal records and
#:   trace spans; clock reads are its purpose.
#: * ``serve`` — the serving layer measures request latency, enforces
#:   session TTLs, and stamps cohort creation times; none of those reads
#:   feed simulation results, which stay seed-deterministic.
#: * ``experiments/parallel.py`` — the parallel executor stamps its
#:   ``parallel_start`` journal event with the wall-clock time so merged
#:   journals can be aligned across hosts; simulation work inside the
#:   workers stays seed-deterministic.
#:
#: * ``scenarios`` — open-loop load generation and coordinated-omission
#:   accounting are clock measurement by definition; arrival schedules
#:   themselves are precomputed from seeds and never read the clock.
#:
#: * ``matchmaking`` — join timestamps, wait-time accounting, and
#:   condenser deadlines are clock-driven by design; the cohorts a wave
#:   condenses into stay seed-deterministic (spec seed + cohort index),
#:   so no clock read feeds grouping results.
#:
#: Everything else under ``src/`` stays banned: simulation code that
#: branches on the clock is non-reproducible by construction.
WALLCLOCK_ALLOWLIST = frozenset(
    {"obs", "serve", "scenarios", "matchmaking", "experiments/parallel.py"}
)


def wallclock_exempt_path(path: "str | Path") -> bool:
    """Whether a module path falls under :data:`WALLCLOCK_ALLOWLIST`."""
    parts = Path(path).parts
    for entry in WALLCLOCK_ALLOWLIST:
        needle = tuple(entry.split("/"))
        if len(needle) == 1:
            if entry in parts:
                return True
        elif any(
            parts[i : i + len(needle)] == needle for i in range(len(parts) - len(needle) + 1)
        ):
            return True
    return False


def test_path(path: "str | Path") -> bool:
    """Whether a module path is part of a test tree.

    Tests assert exact values on purpose — ``DYG302`` float-equality and
    ``DYG201`` validation-routing discipline are production-code rules,
    so they exempt paths living under a ``tests/`` directory or named
    ``test_*.py``/``conftest.py``.
    """
    parsed = Path(path)
    if "tests" in parsed.parts:
        return True
    return parsed.name.startswith("test_") or parsed.name == "conftest.py"


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule code anchored to a source location.

    Attributes:
        code: the rule code (``DYG101`` ...; ``DYG000`` for parse errors).
        message: human-readable description of the violation.
        path: the file the finding is in (as given to the engine).
        line: 1-based source line.
        col: 1-based source column.
    """

    code: str
    message: str
    path: str
    line: int
    col: int

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (used by ``dygroups lint --json``)."""
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass(frozen=True)
class Finding:
    """A raw rule finding, before the engine attaches code and path."""

    line: int
    col: int
    message: str

    @classmethod
    def at(cls, node: ast.AST, message: str) -> "Finding":
        """A finding anchored to an AST node (1-based column)."""
        return cls(
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class FileContext:
    """Everything a rule may need to know about the module under analysis.

    Attributes:
        path: the path the module was loaded from (display form).
        source: full source text.
        tree: the parsed :class:`ast.Module`.
        wallclock_exempt: whether the module lives in a subsystem on the
            documented wall-clock allowlist (:data:`WALLCLOCK_ALLOWLIST`),
            where clock reads are the point rather than a bug.
        test_path: whether the module is test code (:func:`test_path`),
            where exact-value assertions are the point.
    """

    def __init__(self, path: "str | Path", source: str, tree: ast.Module) -> None:
        self.path = str(path)
        self.source = source
        self.tree = tree
        self.wallclock_exempt = wallclock_exempt_path(self.path)
        self.test_path = test_path(self.path)
        self._noqa: dict[int, frozenset[str] | None] = {}
        for number, line in enumerate(source.splitlines(), start=1):
            match = _NOQA_RE.search(line)
            if match is None:
                continue
            codes = match.group("codes")
            if codes is None:
                self._noqa[number] = None  # blanket suppression
            else:
                self._noqa[number] = frozenset(
                    c.strip().upper() for c in codes.split(",") if c.strip()
                )

    def suppressed(self, line: int, code: str) -> bool:
        """Whether ``line`` carries a ``# noqa`` covering ``code``."""
        if line not in self._noqa:
            return False
        codes = self._noqa[line]
        return codes is None or code in codes


class Rule:
    """Base class for lint rules; subclasses set the class attributes.

    Attributes:
        code: unique rule code (``DYG101`` ...).
        name: short kebab-case rule name.
        summary: one-line description for the rule catalog.
        fix: one-line fix guidance shown in the rule catalog.
    """

    code: str = ""
    name: str = ""
    summary: str = ""
    fix: str = ""

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Yield raw findings for the module in ``ctx``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(code={self.code!r})"


def walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """Document-order walk that does *not* descend into nested functions.

    Used by per-function rules so a nested ``def`` shadowing a parameter
    name is analyzed on its own, not as part of the enclosing scope.
    """
    for child in ast.iter_child_nodes(node):
        yield child
        if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            yield from walk_shallow(child)


@dataclass
class ImportMap:
    """Module-alias bookkeeping shared by the determinism rules.

    Attributes:
        modules: local name → dotted module it is bound to
            (``import numpy as np`` ⇒ ``{"np": "numpy"}``).
        members: local name → ``(module, member)`` for ``from``-imports
            (``from time import time as now`` ⇒ ``{"now": ("time", "time")}``).
    """

    modules: dict[str, str] = field(default_factory=dict)
    members: dict[str, tuple[str, str]] = field(default_factory=dict)

    @classmethod
    def of(cls, tree: ast.Module) -> "ImportMap":
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.partition(".")[0]
                    bound = alias.name if alias.asname else alias.name.partition(".")[0]
                    imports.modules[local] = bound
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    imports.members[local] = (node.module, alias.name)
        return imports

    def module_aliases(self, dotted: str) -> frozenset[str]:
        """Local names bound to the module ``dotted`` (either import form)."""
        names = {local for local, mod in self.modules.items() if mod == dotted}
        parent, _, child = dotted.rpartition(".")
        if parent:
            names.update(
                local
                for local, (mod, member) in self.members.items()
                if mod == parent and member == child
            )
        return frozenset(names)

    def member_aliases(self, module: str, member: str) -> frozenset[str]:
        """Local names bound to ``from module import member``."""
        return frozenset(
            local
            for local, (mod, name) in self.members.items()
            if mod == module and name == member
        )
