"""The AST lint engine behind ``dygroups lint``.

The engine parses each python file once, runs every selected rule over
the tree, filters ``# noqa`` suppressions, and returns the findings as
sorted :class:`~repro.analysis.base.Diagnostic` records bundled in a
:class:`LintReport`.  Selection mirrors ruff/flake8 conventions:
``--select``/``--ignore`` accept full codes (``DYG302``) or family
prefixes (``DYG3``, ``DYG``).

Typical use::

    from repro.analysis import LintEngine

    report = LintEngine().lint_paths(["src/repro"])
    for diagnostic in report.diagnostics:
        print(diagnostic)
"""

from __future__ import annotations

import ast
import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.base import Diagnostic, FileContext, Rule
from repro.analysis.rules import ALL_RULES

__all__ = ["LintEngine", "LintReport", "lint_paths"]

#: Pseudo-code attached to files the engine cannot parse.
PARSE_ERROR_CODE = "DYG000"


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run.

    Attributes:
        diagnostics: all findings, sorted by path, line, column, code.
        files_checked: number of python files parsed.
    """

    diagnostics: tuple[Diagnostic, ...]
    files_checked: int

    @property
    def clean(self) -> bool:
        """Whether the run produced no findings."""
        return not self.diagnostics

    def counts_by_code(self) -> dict[str, int]:
        """Finding counts per rule code (sorted by code)."""
        counts = Counter(d.code for d in self.diagnostics)
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (used by ``dygroups lint --json``)."""
        return {
            "files_checked": self.files_checked,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "counts": self.counts_by_code(),
        }

    def to_json(self) -> str:
        """The report as an indented JSON document."""
        return json.dumps(self.to_dict(), indent=2)


@dataclass(frozen=True)
class _Selection:
    """Resolved ``--select``/``--ignore`` code filters."""

    select: tuple[str, ...] = ()
    ignore: tuple[str, ...] = ()

    def admits(self, code: str) -> bool:
        if self.select and not any(code.startswith(p) for p in self.select):
            return False
        return not any(code.startswith(p) for p in self.ignore)


def _parse_codes(spec: "str | Sequence[str] | None", *, flag: str) -> tuple[str, ...]:
    if spec is None:
        return ()
    if isinstance(spec, str):
        parts = [p.strip().upper() for p in spec.split(",")]
    else:
        parts = [p.strip().upper() for p in spec]
    codes = tuple(p for p in parts if p)
    known = [rule.code for rule in ALL_RULES]
    for code in codes:
        if not any(k.startswith(code) for k in known):
            raise ValueError(
                f"{flag}: unknown rule code or prefix {code!r} "
                f"(known codes: {', '.join(known)})"
            )
    return codes


class LintEngine:
    """Runs the registered rules over source files.

    Args:
        select: comma-separated string or sequence of codes/prefixes to
            enable (default: all rules).
        ignore: codes/prefixes to disable (applied after ``select``).

    Raises:
        ValueError: on a code that matches no registered rule.
    """

    def __init__(
        self,
        *,
        select: "str | Sequence[str] | None" = None,
        ignore: "str | Sequence[str] | None" = None,
    ) -> None:
        self._selection = _Selection(
            select=_parse_codes(select, flag="select"),
            ignore=_parse_codes(ignore, flag="ignore"),
        )
        self.rules: tuple[Rule, ...] = tuple(
            rule() for rule in ALL_RULES if self._selection.admits(rule.code)
        )

    # -- single-module entry points ---------------------------------------

    def lint_source(self, source: str, *, path: "str | Path" = "<string>") -> list[Diagnostic]:
        """Lint python source text as if it lived at ``path``.

        The path matters: the wall-clock rule exempts modules under an
        ``obs`` directory, and every diagnostic carries the path.
        """
        try:
            tree = ast.parse(source)
        except SyntaxError as error:
            return [
                Diagnostic(
                    code=PARSE_ERROR_CODE,
                    message=f"cannot parse file: {error.msg}",
                    path=str(path),
                    line=error.lineno or 1,
                    col=(error.offset or 0) or 1,
                )
            ]
        ctx = FileContext(path, source, tree)
        found: list[Diagnostic] = []
        for rule in self.rules:
            for finding in rule.check(ctx):
                if ctx.suppressed(finding.line, rule.code):
                    continue
                found.append(
                    Diagnostic(
                        code=rule.code,
                        message=finding.message,
                        path=ctx.path,
                        line=finding.line,
                        col=finding.col,
                    )
                )
        found.sort(key=lambda d: (d.line, d.col, d.code))
        return found

    def lint_file(self, path: "str | Path") -> list[Diagnostic]:
        """Lint one python file."""
        file_path = Path(path)
        source = file_path.read_text(encoding="utf-8")
        return self.lint_source(source, path=file_path)

    # -- tree entry point --------------------------------------------------

    def lint_paths(self, paths: Iterable["str | Path"]) -> LintReport:
        """Lint files and directory trees; directories are walked for ``*.py``.

        Raises:
            FileNotFoundError: if a given path does not exist.
        """
        files: list[Path] = []
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                files.extend(sorted(p for p in path.rglob("*.py") if p.is_file()))
            elif path.is_file():
                files.append(path)
            else:
                raise FileNotFoundError(f"no such file or directory: {path}")
        diagnostics: list[Diagnostic] = []
        for file_path in files:
            diagnostics.extend(self.lint_file(file_path))
        diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.code))
        return LintReport(diagnostics=tuple(diagnostics), files_checked=len(files))


def lint_paths(
    paths: Iterable["str | Path"],
    *,
    select: "str | Sequence[str] | None" = None,
    ignore: "str | Sequence[str] | None" = None,
) -> LintReport:
    """Convenience wrapper: build a :class:`LintEngine` and run it."""
    return LintEngine(select=select, ignore=ignore).lint_paths(paths)
