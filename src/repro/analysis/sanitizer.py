"""Runtime lock sanitizer: instrumented locks for the threaded layers.

The static ``DYG4xx`` rules (:mod:`repro.analysis.rules.concurrency`)
prove lock discipline where the AST can see it; this module catches what
it can't — *dynamic* acquisition orders threaded through callbacks,
futures, and worker loops.  It is a tsan-lite in the spirit of Go's
``-race`` wiring: opt-in instrumentation that records per-thread lock
acquisition stacks and reports two bug classes as they happen:

* **order inversions** — thread A acquires ``x`` then ``y`` while thread
  B (ever) acquires ``y`` then ``x``.  Detected on a *name-level*
  acquisition graph: every ``outer → inner`` acquisition adds an edge,
  and an edge that closes a cycle is reported at the site that closed
  it.  The scheduler's sorted-wave idiom — many same-name session locks
  taken in ascending session-id order — is sanctioned through ``rank``:
  same-name acquisitions are legal exactly when every nested acquisition
  carries a strictly increasing rank.
* **blocking calls under a lock** — instrumented blocking sites
  (:func:`check_blocking` markers at ``queue.get``, ``future.result``,
  load-generator sleeps) report when the calling thread holds *any*
  sanitized lock.

Reports are appended to an in-process list (:func:`reports`), counted in
the metrics registry (``sanitizer.order_inversions`` /
``sanitizer.blocking_calls``), and emitted to an active obs journal as
``sanitizer.order_inversion`` / ``sanitizer.blocking_call`` events —
``dygroups sanitize report <journal.jsonl>`` summarizes them.

The switch follows :mod:`repro.analysis.contracts` exactly: off by
default, enabled by ``REPRO_SANITIZE=1``, the ``dygroups --sanitize``
flag, or :func:`enable_sanitizer` / :func:`sanitize_scope`.  The off
path is a *construction-time* no-op: :func:`lock` / :func:`rlock` return
bare ``threading.Lock`` / ``threading.RLock`` objects — not wrappers —
so disabled code pays nothing per acquisition, and a sanitize-off run is
bit-identical to an uninstrumented one (the test suite pins this).
Enabling the sanitizer only instruments locks constructed *afterwards*.
"""

from __future__ import annotations

import os
import sys
import threading
from contextlib import contextmanager
from typing import Any, Iterable, Iterator, Mapping

__all__ = [
    "SanitizedLock",
    "check_blocking",
    "disable_sanitizer",
    "enable_sanitizer",
    "lock",
    "reports",
    "reset",
    "rlock",
    "sanitize_scope",
    "sanitizer_enabled",
    "summarize_reports",
]

#: Environment variable that switches the sanitizer on at import time.
ENV_VAR = "REPRO_SANITIZE"

#: Journal event names the sanitizer emits (registered in
#: :data:`repro.obs.journal.EVENTS`).
EVENT_ORDER_INVERSION = "sanitizer.order_inversion"
EVENT_BLOCKING_CALL = "sanitizer.blocking_call"


def _env_enabled() -> bool:
    return os.environ.get(ENV_VAR, "").strip().lower() in ("1", "true", "yes", "on")


_enabled: bool = _env_enabled()


def sanitizer_enabled() -> bool:
    """Whether the lock sanitizer is active (the hot-path accessor)."""
    return _enabled


def enable_sanitizer() -> None:
    """Switch the sanitizer on; instruments locks constructed afterwards."""
    global _enabled
    _enabled = True


def disable_sanitizer() -> None:
    """Switch the sanitizer off (already-wrapped locks stay wrapped)."""
    global _enabled
    _enabled = False


@contextmanager
def sanitize_scope(on: bool = True) -> Iterator[None]:
    """Temporarily force the sanitizer on (or off); restores prior state."""
    global _enabled
    previous = _enabled
    _enabled = on
    try:
        yield
    finally:
        _enabled = previous


# -- global detector state -------------------------------------------------

#: Raw (uninstrumented) lock guarding the detector's shared tables.
_state_lock = threading.Lock()

#: name-level acquisition graph: ``(outer, inner) → first-seen site``.
_edges: dict[tuple[str, str], str] = {}

#: every report, in emission order.
_reports: list[dict[str, Any]] = []

#: ``(kind, dedup key)`` pairs already reported (one report per site/edge).
_seen: set[tuple[str, str]] = set()

#: per-thread stack of currently held :class:`SanitizedLock` entries.
_held = threading.local()


def _held_stack() -> "list[SanitizedLock]":
    stack = getattr(_held, "stack", None)
    if stack is None:
        stack = []
        _held.stack = stack
    return stack


def _call_site() -> str:
    """``path:line`` of the nearest caller outside this module."""
    frame = sys._getframe(1)
    while frame is not None and frame.f_globals.get("__name__") == __name__:
        frame = frame.f_back
    if frame is None:
        return "<unknown>"
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"


def _report(kind: str, event: str, message: str, *, dedup: str, **fields: Any) -> None:
    """Record one finding: process list + metrics counters + journal."""
    with _state_lock:
        if (kind, dedup) in _seen:
            return
        _seen.add((kind, dedup))
        record = {
            "kind": kind,
            "message": message,
            "thread": threading.current_thread().name,
            **fields,
        }
        _reports.append(record)
    # Metrics and journal emission run outside the detector lock — the
    # journal takes its own lock and must not nest under this one.
    from repro.obs import runtime as _obs

    registry = _obs.metrics_registry()
    registry.counter(f"sanitizer.{kind}s").inc()
    registry.counter("sanitizer.reports").inc()
    state = _obs.state()
    if state is not None and state.journal is not None:
        state.journal.emit(event, **record)


def _check_order(acquiring: "SanitizedLock", site: str) -> None:
    """Record acquisition edges for ``acquiring`` and flag inversions."""
    stack = _held_stack()
    if not stack:
        return
    same_name = [held for held in stack if held.name == acquiring.name]
    if same_name:
        # Same-name nesting is legal only as the sorted-wave idiom:
        # every nested acquisition carries a strictly increasing rank.
        ranked = all(held.rank is not None for held in same_name)
        if not ranked or acquiring.rank is None or any(
            not held.rank < acquiring.rank for held in same_name  # type: ignore[operator]
        ):
            _report(
                "order_inversion",
                EVENT_ORDER_INVERSION,
                f"same-name lock {acquiring.name!r} acquired while already "
                "held without a strictly increasing rank (sorted-wave "
                f"acquisitions must pass rank=...) at {site}",
                dedup=f"{acquiring.name}@{site}",
                lock=acquiring.name,
                site=site,
            )
    with _state_lock:
        for held in stack:
            if held.name == acquiring.name:
                continue
            edge = (held.name, acquiring.name)
            if edge not in _edges:
                _edges[edge] = site
            if _reaches(acquiring.name, held.name):
                cycle_site = _edges.get((acquiring.name, held.name), "<elsewhere>")
                message = (
                    f"lock order inversion: {held.name!r} → {acquiring.name!r} "
                    f"at {site} completes a cycle ({acquiring.name!r} → "
                    f"{held.name!r} was first seen at {cycle_site})"
                )
                dedup = f"{held.name}->{acquiring.name}"
                break
        else:
            return
    _report(
        "order_inversion",
        EVENT_ORDER_INVERSION,
        message,
        dedup=dedup,
        lock=acquiring.name,
        site=site,
    )


def _reaches(source: str, target: str) -> bool:
    """Whether ``target`` is reachable from ``source`` in the edge graph.

    Caller holds :data:`_state_lock`.
    """
    frontier = [source]
    visited = {source}
    while frontier:
        node = frontier.pop()
        if node == target:
            return True
        for outer, inner in _edges:
            if outer == node and inner not in visited:
                visited.add(inner)
                frontier.append(inner)
    return False


class SanitizedLock:
    """A ``Lock``/``RLock`` wrapper that feeds the order/blocking detector.

    Supports the subset of the lock protocol the codebase uses:
    ``acquire``/``release``, the context-manager form, and ``locked``
    (where the inner lock provides it).  Reentrant acquisition of one
    instance (an ``RLock``) is tracked by depth and never reported.
    """

    __slots__ = ("_inner", "name", "rank", "reentrant")

    def __init__(
        self, inner: Any, name: str, *, rank: "Any | None" = None, reentrant: bool = False
    ) -> None:
        self._inner = inner
        self.name = name
        self.rank = rank
        self.reentrant = reentrant

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        site = _call_site()
        stack = _held_stack()
        reentry = self.reentrant and any(held is self for held in stack)
        if not reentry:
            # Check order *before* blocking: a true deadlock still gets
            # its report even if this acquire never returns.
            _check_order(self, site)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            stack.append(self)
        return acquired

    def release(self) -> None:
        stack = _held_stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is self:
                del stack[index]
                break
        self._inner.release()

    def locked(self) -> bool:
        """Whether the inner lock is held (inner lock permitting)."""
        return bool(self._inner.locked())

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"SanitizedLock(name={self.name!r}, rank={self.rank!r})"


def lock(name: str, *, rank: "Any | None" = None) -> Any:
    """A ``threading.Lock``, instrumented when the sanitizer is enabled.

    Args:
        name: the detector's node label; every lock guarding the same
            shared structure should share one name.
        rank: total-order key sanctioning same-name nesting (the
            scheduler passes the session id, matching its sorted-wave
            acquisition order).

    Returns:
        A bare ``threading.Lock`` when the sanitizer is off (zero
        overhead, bit-identical behavior), else a :class:`SanitizedLock`.
    """
    if not _enabled:
        return threading.Lock()
    return SanitizedLock(threading.Lock(), name, rank=rank)


def rlock(name: str, *, rank: "Any | None" = None) -> Any:
    """A ``threading.RLock``, instrumented when the sanitizer is enabled.

    Reentrant acquisition of the returned lock is tracked by depth and
    never reported (see :func:`lock` for the parameters).
    """
    if not _enabled:
        return threading.RLock()
    return SanitizedLock(threading.RLock(), name, rank=rank, reentrant=True)


def check_blocking(description: str) -> None:
    """Marker placed at a blocking call site (``queue.get``, sleeps, ...).

    Reports when the calling thread holds any sanitized lock — blocking
    while holding a lock stalls every thread contending on it.  A no-op
    (one module-global read) when the sanitizer is off.
    """
    if not _enabled:
        return
    stack = _held_stack()
    if not stack:
        return
    site = _call_site()
    held = ", ".join(entry.name for entry in stack)
    _report(
        "blocking_call",
        EVENT_BLOCKING_CALL,
        f"blocking call {description!r} at {site} while holding {held}",
        dedup=f"{description}@{site}",
        blocking=description,
        site=site,
        held=[entry.name for entry in stack],
    )


def reports() -> tuple[dict[str, Any], ...]:
    """Every report recorded since the last :func:`reset`."""
    with _state_lock:
        return tuple(dict(record) for record in _reports)


def reset() -> None:
    """Drop the acquisition graph, the reports, and the dedup memory.

    Per-thread held stacks are untouched — they empty naturally as the
    locks are released.
    """
    with _state_lock:
        _edges.clear()
        _reports.clear()
        _seen.clear()


def summarize_reports(records: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Summarize ``sanitizer.*`` journal records (or raw reports).

    Accepts journal records (with an ``event`` field) and in-process
    reports (with a ``kind`` field) alike.

    Returns:
        ``{"total": n, "by_kind": {...}, "reports": [...]}`` with one
        entry per sanitizer record, in input order.
    """
    by_kind: dict[str, int] = {}
    kept: list[dict[str, Any]] = []
    for record in records:
        event = str(record.get("event", ""))
        if event and not event.startswith("sanitizer."):
            continue
        kind = str(record.get("kind") or event.partition(".")[2] or "unknown")
        by_kind[kind] = by_kind.get(kind, 0) + 1
        kept.append(
            {
                "kind": kind,
                "message": str(record.get("message", "")),
                "thread": record.get("thread"),
            }
        )
    return {"total": len(kept), "by_kind": dict(sorted(by_kind.items())), "reports": kept}
