"""Runtime invariant contracts for the simulation stack.

Debug-mode assertions for the paper's structural guarantees, checked live
inside the simulation loop when enabled:

* :func:`check_partition` — a proposed grouping is a proper equi-sized
  partition of exactly the expected ``n`` participants into ``k`` groups;
* :func:`check_top_k_teachers` — Theorem 1: the per-group maxima of a
  DyGroups grouping are exactly the global top-``k`` skills;
* :func:`check_star_teacher_unchanged` — a Star-mode round never alters a
  teacher's skill (``f(0) = 0``);
* :func:`check_clique_order_preserved` — a Clique-mode round preserves the
  within-group skill ranking (the Equation 2 averaging property);
* :func:`check_gains_nonnegative` — learning gains never go negative
  (interactions only add skill).

Contracts are **off by default** and follow the observability fast-path
pattern: instrumented code reads :func:`contracts_enabled` once per call
and skips every check when it returns ``False`` — a single module-global
boolean read, no allocation, no numpy work.  Enable them with the
``REPRO_CONTRACTS=1`` environment variable, the ``dygroups --contracts``
CLI flag, or programmatically::

    from repro.analysis import contracts

    contracts.enable_contracts()
    # ... or scoped:
    with contracts.contracts_scope():
        simulate(...)

Every check is read-only and draws no randomness, so enabling contracts
never changes results: a contracts-on run is bit-identical to a
contracts-off run (the test suite pins this).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

import numpy as np

if TYPE_CHECKING:
    from repro.core.grouping import Grouping

__all__ = [
    "ContractViolation",
    "check_clique_order_preserved",
    "check_gains_nonnegative",
    "check_partition",
    "check_star_teacher_unchanged",
    "check_top_k_teachers",
    "contracts_enabled",
    "contracts_scope",
    "disable_contracts",
    "enable_contracts",
]

#: Environment variable that switches contracts on at import time.
ENV_VAR = "REPRO_CONTRACTS"

#: Absolute slack for floating-point comparisons in the checks.
_ATOL = 1e-9


class ContractViolation(AssertionError):
    """A runtime invariant of the model was violated."""


def _env_enabled() -> bool:
    return os.environ.get(ENV_VAR, "").strip().lower() in ("1", "true", "yes", "on")


_enabled: bool = _env_enabled()


def contracts_enabled() -> bool:
    """Whether runtime contracts are active (the hot-path accessor)."""
    return _enabled


def enable_contracts() -> None:
    """Switch runtime contracts on for the process."""
    global _enabled
    _enabled = True


def disable_contracts() -> None:
    """Switch runtime contracts off."""
    global _enabled
    _enabled = False


@contextmanager
def contracts_scope(on: bool = True) -> Iterator[None]:
    """Temporarily force contracts on (or off); restores the prior state."""
    global _enabled
    previous = _enabled
    _enabled = on
    try:
        yield
    finally:
        _enabled = previous


# -- checks ----------------------------------------------------------------


def check_partition(grouping: "Grouping", *, n: int, k: int) -> None:
    """Assert ``grouping`` is a proper equi-sized partition of ``n`` into ``k``.

    Recomputes membership from the raw groups rather than trusting any
    cached attribute, so a buggy policy cannot satisfy the contract by
    accident.

    Raises:
        ContractViolation: on a wrong group count, unequal sizes, or
            members not covering exactly ``0 … n−1`` without duplicates.
    """
    groups = tuple(tuple(g) for g in grouping)
    if len(groups) != k:
        raise ContractViolation(f"grouping has {len(groups)} groups, expected k={k}")
    sizes = {len(g) for g in groups}
    if len(sizes) != 1:
        raise ContractViolation(f"groups are not equi-sized: sizes {sorted(sizes)}")
    members = [m for g in groups for m in g]
    if len(members) != n or set(members) != set(range(n)):
        raise ContractViolation(
            f"grouping does not partition 0..{n - 1}: covers {len(set(members))} "
            f"distinct of {len(members)} listed members"
        )


def check_top_k_teachers(skills: np.ndarray, grouping: "Grouping") -> None:
    """Assert Theorem 1: per-group maxima are exactly the global top-``k``.

    Any round-gain-optimal grouping places the ``k`` highest-skilled
    participants as the ``k`` group teachers; both DyGroups groupers
    guarantee this by construction.  Compared as value multisets so tied
    skills are handled correctly.

    Raises:
        ContractViolation: if some group's best member is not among the
            global top-``k`` skill values.
    """
    values = np.asarray(skills, dtype=np.float64)
    k = len(tuple(grouping))
    teacher_values = np.sort(
        np.array([float(values[list(g)].max()) for g in grouping], dtype=np.float64)
    )
    top_k = np.sort(values)[-k:]
    if not np.allclose(teacher_values, top_k, rtol=0.0, atol=_ATOL):
        raise ContractViolation(
            f"Theorem 1 violated: group maxima {teacher_values.tolist()} != "
            f"global top-{k} skills {top_k.tolist()}"
        )


def check_star_teacher_unchanged(
    before: np.ndarray, after: np.ndarray, grouping: "Grouping"
) -> None:
    """Assert a Star-mode round left every group's teacher untouched.

    The teacher has zero skill gap to itself and every gain function maps
    a zero gap to zero gain, so the highest-skilled member of each group
    must come out of the round with its skill bit-unchanged (up to float
    slack).

    Raises:
        ContractViolation: if some teacher's skill moved.
    """
    pre = np.asarray(before, dtype=np.float64)
    post = np.asarray(after, dtype=np.float64)
    for index, group in enumerate(grouping):
        members = list(group)
        local = pre[members]
        teacher = members[int(np.argmax(local))]
        if abs(post[teacher] - pre[teacher]) > _ATOL * (1.0 + abs(pre[teacher])):
            raise ContractViolation(
                f"star teacher invariant violated in group {index}: teacher "
                f"{teacher} moved {pre[teacher]!r} -> {post[teacher]!r}"
            )


def check_clique_order_preserved(
    before: np.ndarray, after: np.ndarray, grouping: "Grouping"
) -> None:
    """Assert a Clique-mode round preserved the within-group skill ranking.

    Equation 2 averages each member's positive pairwise gains over its
    rank, which keeps the within-group order: if ``s_i ≥ s_j`` before the
    round (same group), then after it too.  Ties are ranked stably by
    member index, matching the update engine's convention.

    Raises:
        ContractViolation: if two members of one group swapped order.
    """
    pre = np.asarray(before, dtype=np.float64)
    post = np.asarray(after, dtype=np.float64)
    for index, group in enumerate(grouping):
        members = sorted(group, key=lambda m: (-float(pre[m]), m))
        ranked_post = post[members]
        slack = _ATOL * (1.0 + float(np.abs(ranked_post).max()))
        drops = np.diff(ranked_post)
        if np.any(drops > slack):
            position = int(np.argmax(drops))
            raise ContractViolation(
                f"clique order invariant violated in group {index}: member "
                f"{members[position + 1]} overtook member {members[position]} "
                f"({ranked_post[position + 1]!r} > {ranked_post[position]!r})"
            )


def check_gains_nonnegative(gains: "float | np.ndarray") -> None:
    """Assert learning gains are non-negative (interactions only add skill).

    Accepts a scalar round gain or an array of per-round gains.

    Raises:
        ContractViolation: on any gain below ``-1e-9``.
    """
    values = np.atleast_1d(np.asarray(gains, dtype=np.float64))
    if values.size and float(values.min()) < -_ATOL:
        position = int(np.argmin(values))
        raise ContractViolation(
            f"negative learning gain {float(values[position])!r} at index {position}"
        )
