"""Declarative scenario specifications.

A :class:`ScenarioSpec` names one complete workload — how traffic
arrives (:class:`ArrivalSpec`), who the learners are
(:class:`PopulationSpec`), which grouping policy serves them, how many
rounds each cohort plays, and what service levels the run must meet
(:class:`SLOSpec`).  Every spec is JSON-round-trippable
(``to_dict``/``from_dict``/``to_json``/``from_json``) so scenarios live
in files, CI configs, and ``BENCH_scenario_<name>.json`` artifacts,
not in code.

The built-in :data:`CATALOG` holds four starter scenarios (see
SCENARIOS.md): ``smoke`` for CI, ``fig05b-rate`` replaying the paper's
fig05b grid point as Poisson traffic, ``saturation-probe``
deliberately overrunning a narrow scheduler queue to observe
backpressure, and ``streaming-smoke`` driving individual arrivals
through the matchmaking layer (see docs/matchmaking.md).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro._validation import (
    require_divisible_groups,
    require_learning_rate,
    require_positive_int,
)
from repro.core.interactions import get_mode
from repro.data.distributions import get_distribution
from repro.registry import PolicySpec

__all__ = [
    "ARRIVAL_KINDS",
    "CATALOG",
    "ArrivalSpec",
    "PopulationSpec",
    "SLOSpec",
    "ScenarioSpec",
    "load_scenario",
]

#: Supported traffic shapes.
ARRIVAL_KINDS = ("closed-loop", "poisson", "burst", "individual")


def _require_positive_number(value: Any, *, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)) or not value > 0:
        raise ValueError(f"{name} must be a positive number, got {value!r}")
    return float(value)


@dataclass(frozen=True)
class ArrivalSpec:
    """How requests arrive at the system.

    Attributes:
        kind: ``"closed-loop"`` (each sender issues its next request when
            the previous response returns), ``"poisson"`` (open-loop,
            exponential inter-arrival times at ``rate`` requests/second),
            ``"burst"`` (open-loop, ``burst_size`` simultaneous
            arrivals every ``burst_interval`` seconds), or
            ``"individual"`` (open-loop Poisson arrivals of *single
            participants* joining the matchmaking queue instead of
            whole-cohort requests; requires the serve-side matchmaking
            layer — see docs/matchmaking.md).
        rate: mean requests/second (``poisson`` and ``individual``).
        burst_size: arrivals per burst (``burst`` only).
        burst_interval: seconds between bursts (``burst`` only).
        concurrency: sender threads.  Closed-loop this *is* the client
            count; open-loop it bounds how many requests can be in
            flight from the generator side.
    """

    kind: str = "closed-loop"
    rate: "float | None" = None
    burst_size: "int | None" = None
    burst_interval: "float | None" = None
    concurrency: int = 4

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(f"arrival kind must be one of {ARRIVAL_KINDS}, got {self.kind!r}")
        require_positive_int(self.concurrency, name="concurrency")
        if self.kind in ("poisson", "individual"):
            if self.rate is None:
                raise ValueError(f"{self.kind} arrivals require rate= (requests/second)")
            _require_positive_number(self.rate, name="rate")
        if self.kind == "burst":
            if self.burst_size is None or self.burst_interval is None:
                raise ValueError("burst arrivals require burst_size= and burst_interval=")
            require_positive_int(self.burst_size, name="burst_size")
            _require_positive_number(self.burst_interval, name="burst_interval")

    @property
    def open_loop(self) -> bool:
        """Whether arrivals follow a precomputed schedule (not responses)."""
        return self.kind != "closed-loop"

    def to_dict(self) -> dict[str, Any]:
        """JSON-able representation (``None`` fields omitted)."""
        payload: dict[str, Any] = {"kind": self.kind, "concurrency": self.concurrency}
        for key in ("rate", "burst_size", "burst_interval"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ArrivalSpec":
        """Inverse of :meth:`to_dict`; unknown keys raise."""
        known = {"kind", "rate", "burst_size", "burst_interval", "concurrency"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown arrival fields: {sorted(unknown)}")
        return cls(**dict(payload))


@dataclass(frozen=True)
class PopulationSpec:
    """Who arrives: cohort sizing and the initial-skill model.

    Attributes:
        n: members per cohort.
        k: group-size parameter handed to the grouping policy
            (must divide ``n``).
        cohorts: how many concurrent cohorts the scenario creates.
        distribution: named skill distribution from
            :data:`repro.data.distributions.DISTRIBUTIONS`.
        mode: interaction mode (``"star"`` or ``"clique"``).
        rate: learning rate in (0, 1).
        skill_seed: base seed for the skill draws; cohort ``i`` draws
            with ``skill_seed + i`` so populations are reproducible and
            distinct.
    """

    n: int = 30
    k: int = 5
    cohorts: int = 3
    distribution: str = "lognormal"
    mode: str = "star"
    rate: float = 0.5
    skill_seed: int = 0

    def __post_init__(self) -> None:
        require_positive_int(self.n, name="n")
        require_positive_int(self.k, name="k")
        require_positive_int(self.cohorts, name="cohorts")
        require_divisible_groups(self.n, self.k)
        require_learning_rate(self.rate)
        get_distribution(self.distribution)
        get_mode(self.mode)
        if isinstance(self.skill_seed, bool) or not isinstance(self.skill_seed, int):
            raise ValueError(f"skill_seed must be an int, got {self.skill_seed!r}")

    def skills(self, cohort_index: int) -> np.ndarray:
        """The seeded initial-skill vector of cohort ``cohort_index``."""
        if not 0 <= cohort_index < self.cohorts:
            raise ValueError(
                f"cohort_index must be in [0, {self.cohorts}), got {cohort_index}"
            )
        draw = get_distribution(self.distribution)
        return draw(self.n, seed=self.skill_seed + cohort_index)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able representation."""
        return {
            "n": self.n,
            "k": self.k,
            "cohorts": self.cohorts,
            "distribution": self.distribution,
            "mode": self.mode,
            "rate": self.rate,
            "skill_seed": self.skill_seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PopulationSpec":
        """Inverse of :meth:`to_dict`; unknown keys raise."""
        known = {"n", "k", "cohorts", "distribution", "mode", "rate", "skill_seed"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown population fields: {sorted(unknown)}")
        return cls(**dict(payload))


#: SLO target keys and the direction the observation must satisfy.
_SLO_FIELDS = (
    "latency_p50_ms",
    "latency_p95_ms",
    "latency_p99_ms",
    "min_throughput_rps",
    "max_error_rate",
    "time_to_match_p50_ms",
    "time_to_match_p95_ms",
)


@dataclass(frozen=True)
class SLOSpec:
    """Service-level targets a scenario run is judged against.

    Latency targets are upper bounds in milliseconds on the respective
    percentile of the total request latency; ``min_throughput_rps`` is a
    lower bound on sustained requests/second; ``max_error_rate`` an
    upper bound on ``errors / requests``; the ``time_to_match_*``
    targets are upper bounds in milliseconds on the respective
    percentile of matchmaking queue-to-cohort wait time (individual
    arrivals only — absent otherwise, and an absent observation fails).
    Every field is optional but at least one target must be set.
    """

    latency_p50_ms: "float | None" = None
    latency_p95_ms: "float | None" = None
    latency_p99_ms: "float | None" = None
    min_throughput_rps: "float | None" = None
    max_error_rate: "float | None" = None
    time_to_match_p50_ms: "float | None" = None
    time_to_match_p95_ms: "float | None" = None

    def __post_init__(self) -> None:
        if all(getattr(self, name) is None for name in _SLO_FIELDS):
            raise ValueError(f"an SLO block must set at least one of {_SLO_FIELDS}")
        for name in (
            "latency_p50_ms",
            "latency_p95_ms",
            "latency_p99_ms",
            "min_throughput_rps",
            "time_to_match_p50_ms",
            "time_to_match_p95_ms",
        ):
            value = getattr(self, name)
            if value is not None:
                _require_positive_number(value, name=name)
        if self.max_error_rate is not None:
            value = self.max_error_rate
            if isinstance(value, bool) or not isinstance(value, (int, float)) or not 0.0 <= value <= 1.0:
                raise ValueError(f"max_error_rate must be in [0, 1], got {value!r}")

    def targets(self) -> dict[str, float]:
        """The configured targets only, as a name → limit mapping."""
        return {
            name: float(getattr(self, name))
            for name in _SLO_FIELDS
            if getattr(self, name) is not None
        }

    def to_dict(self) -> dict[str, Any]:
        """JSON-able representation (configured targets only)."""
        return self.targets()

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SLOSpec":
        """Inverse of :meth:`to_dict`; unknown keys raise."""
        unknown = set(payload) - set(_SLO_FIELDS)
        if unknown:
            raise ValueError(f"unknown SLO fields: {sorted(unknown)}")
        return cls(**dict(payload))


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete declared workload.

    Attributes:
        name: scenario identifier (also names the bench artifact).
        arrival: traffic shape.
        population: cohort sizing and the skill model.
        policy: registry :class:`~repro.registry.PolicySpec` string.
        rounds: rounds each cohort plays; the scenario issues
            ``population.cohorts * rounds`` round-advance requests.
        seed: seed of the precomputed arrival schedule.
        slo: service-level targets, or ``None`` for measurement only.
        serve: optional :class:`~repro.serve.config.ServeConfig` field
            overrides (e.g. ``{"workers": 1, "queue_depth": 4}``) so a
            scenario can pin the service shape it probes.
    """

    name: str
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    population: PopulationSpec = field(default_factory=PopulationSpec)
    policy: str = "dygroups"
    rounds: int = 3
    seed: int = 0
    slo: "SLOSpec | None" = None
    serve: "Mapping[str, Any] | None" = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"name must be a non-empty string, got {self.name!r}")
        require_positive_int(self.rounds, name="rounds")
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ValueError(f"seed must be an int, got {self.seed!r}")
        PolicySpec.parse(self.policy)
        if self.serve is not None:
            if not isinstance(self.serve, Mapping) or not all(
                isinstance(key, str) for key in self.serve
            ):
                raise ValueError(f"serve overrides must be a string-keyed mapping, got {self.serve!r}")

    @property
    def total_requests(self) -> int:
        """Load-generated requests the scenario issues.

        Round-advance requests for cohort workloads; for ``individual``
        arrivals, one join per participant (``cohorts * n`` — the
        round-advance phase after condensation is driven separately).
        """
        if self.arrival.kind == "individual":
            return self.population.cohorts * self.population.n
        return self.population.cohorts * self.rounds

    def to_dict(self) -> dict[str, Any]:
        """JSON-able representation."""
        payload: dict[str, Any] = {
            "name": self.name,
            "arrival": self.arrival.to_dict(),
            "population": self.population.to_dict(),
            "policy": self.policy,
            "rounds": self.rounds,
            "seed": self.seed,
        }
        if self.slo is not None:
            payload["slo"] = self.slo.to_dict()
        if self.serve is not None:
            payload["serve"] = dict(self.serve)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`; unknown keys raise."""
        known = {"name", "arrival", "population", "policy", "rounds", "seed", "slo", "serve"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown scenario fields: {sorted(unknown)}")
        if "name" not in payload:
            raise ValueError("a scenario requires a name")
        kwargs: dict[str, Any] = {"name": payload["name"]}
        if "arrival" in payload:
            kwargs["arrival"] = ArrivalSpec.from_dict(payload["arrival"])
        if "population" in payload:
            kwargs["population"] = PopulationSpec.from_dict(payload["population"])
        for key in ("policy", "rounds", "seed", "serve"):
            if key in payload:
                kwargs[key] = payload[key]
        if payload.get("slo") is not None:
            kwargs["slo"] = SLOSpec.from_dict(payload["slo"])
        return cls(**kwargs)

    def to_json(self, *, indent: "int | None" = 2) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a JSON document produced by :meth:`to_json`."""
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError(f"a scenario document must be a JSON object, got {type(payload).__name__}")
        return cls.from_dict(payload)


#: Built-in starter scenarios (catalogued in SCENARIOS.md).
CATALOG: dict[str, ScenarioSpec] = {
    "smoke": ScenarioSpec(
        name="smoke",
        arrival=ArrivalSpec(kind="closed-loop", concurrency=2),
        population=PopulationSpec(n=30, k=5, cohorts=3, distribution="lognormal", skill_seed=11),
        policy="dygroups",
        rounds=3,
        seed=7,
        slo=SLOSpec(latency_p95_ms=5000.0, max_error_rate=0.0, min_throughput_rps=0.5),
    ),
    "fig05b-rate": ScenarioSpec(
        name="fig05b-rate",
        arrival=ArrivalSpec(kind="poisson", rate=40.0, concurrency=16),
        population=PopulationSpec(n=120, k=10, cohorts=8, distribution="lognormal", skill_seed=42),
        policy="dygroups",
        rounds=5,
        seed=7,
        slo=SLOSpec(
            latency_p50_ms=250.0,
            latency_p95_ms=1000.0,
            latency_p99_ms=2000.0,
            max_error_rate=0.0,
            min_throughput_rps=5.0,
        ),
    ),
    "saturation-probe": ScenarioSpec(
        name="saturation-probe",
        arrival=ArrivalSpec(kind="burst", burst_size=32, burst_interval=0.02, concurrency=32),
        population=PopulationSpec(n=60, k=5, cohorts=16, distribution="lognormal", skill_seed=23),
        policy="dygroups",
        rounds=4,
        seed=7,
        # The probe *wants* to see 429s: a single worker behind a
        # four-deep queue under 32-wide bursts.  It fails only when the
        # service stops answering at all.
        slo=SLOSpec(latency_p99_ms=10_000.0, max_error_rate=0.9),
        serve={"workers": 1, "queue_depth": 4},
    ),
    # Individual arrivals through the matchmaking layer: 36 seeded
    # participants join one at a time; the condenser forms 3 cohorts of
    # 12 which then play 2 rounds each.  concurrency=1 keeps the join
    # order equal to the arrival schedule, so condensation waves — and
    # the resulting groupings — are bit-identical across paradigms.
    "streaming-smoke": ScenarioSpec(
        name="streaming-smoke",
        arrival=ArrivalSpec(kind="individual", rate=300.0, concurrency=1),
        population=PopulationSpec(n=12, k=4, cohorts=3, distribution="lognormal", skill_seed=29),
        policy="dygroups",
        rounds=2,
        seed=7,
        slo=SLOSpec(time_to_match_p95_ms=30_000.0, max_error_rate=0.0),
    ),
}


def load_scenario(name_or_path: "str | Path") -> ScenarioSpec:
    """Resolve a scenario: a :data:`CATALOG` name or a JSON spec file.

    Raises:
        ValueError: for an unknown name / unreadable or invalid file.
    """
    key = str(name_or_path)
    if key in CATALOG:
        return CATALOG[key]
    path = Path(name_or_path)
    if path.is_file():
        return ScenarioSpec.from_json(path.read_text())
    raise ValueError(
        f"unknown scenario {key!r}; expected one of {sorted(CATALOG)} or a JSON spec file"
    )
