"""repro.scenarios — declarative workloads, open-loop load, SLO verdicts.

The repo has 15 policies, 7 extensions, and 3 execution paths (the
in-process client, the HTTP API, the CLI); this package is the unified
way to declare "a workload" and run it everywhere:

* **spec** (:mod:`repro.scenarios.spec`) — a JSON-round-trippable
  :class:`ScenarioSpec`: arrival pattern (closed-loop, Poisson, burst),
  population model, policy, round count, and SLO targets, plus a small
  built-in catalog (``smoke``, ``fig05b-rate``, ``saturation-probe``);
* **loadgen** (:mod:`repro.scenarios.loadgen`) — a deterministic
  open-loop load generator: seeded arrival schedules precomputed up
  front, latencies measured from the *intended* send time so queueing
  delay is never hidden (coordinated-omission-safe);
* **slo** (:mod:`repro.scenarios.slo`) — the verdict engine evaluating
  SLO targets against a metrics-registry snapshot; verdicts surface in
  the JSON artifacts and in serve's ``GET /metrics``;
* **harness** (:mod:`repro.scenarios.harness`) — the paradigm-comparison
  runner driving one scenario through all three execution paths,
  asserting cross-paradigm bit-identity of the produced groupings, and
  emitting one comparison table plus a ``BENCH_scenario_<name>.json``
  artifact.

``harness`` is imported lazily: it depends on :mod:`repro.serve`, which
itself consults :mod:`repro.scenarios.spec`/``slo`` for its ``/metrics``
SLO block — eager package-level imports in both directions would cycle.
"""

from repro.scenarios.loadgen import ArrivalSchedule, LoadResult, run_load
from repro.scenarios.slo import SLOReport, SLOVerdict, evaluate_slos, slo_prometheus_lines
from repro.scenarios.spec import (
    ARRIVAL_KINDS,
    CATALOG,
    ArrivalSpec,
    PopulationSpec,
    ScenarioSpec,
    SLOSpec,
    load_scenario,
)

__all__ = [
    "ARRIVAL_KINDS",
    "CATALOG",
    "ArrivalSchedule",
    "ArrivalSpec",
    "LoadResult",
    "PopulationSpec",
    "SLOReport",
    "SLOSpec",
    "SLOVerdict",
    "ScenarioSpec",
    "compare_scenario",  # noqa: DYG301 — provided lazily by __getattr__
    "evaluate_slos",
    "load_scenario",
    "run_load",
    "run_paradigm",  # noqa: DYG301 — provided lazily by __getattr__
    "slo_prometheus_lines",
    "write_scenario_artifact",  # noqa: DYG301 — provided lazily by __getattr__
]

_LAZY_HARNESS = {"compare_scenario", "run_paradigm", "write_scenario_artifact"}


def __getattr__(name: str):
    if name in _LAZY_HARNESS:
        from repro.scenarios import harness

        return getattr(harness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
