"""SLO verdicts over metrics-registry snapshots.

:func:`evaluate_slos` turns an :class:`~repro.scenarios.spec.SLOSpec`
plus a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` into an
:class:`SLOReport` — one :class:`SLOVerdict` per configured target and
an overall pass/fail.  The same engine serves two consumers with
different metric names:

* the scenario harness evaluates the load generator's own
  ``scenario.*`` instruments after a run;
* ``GET /metrics`` evaluates the live ``serve.http.*`` instruments when
  the service was configured with SLO targets, so a dashboard scraping
  the endpoint sees the verdict next to the raw series.

A target whose observation is missing from the snapshot **fails**:
an SLO that cannot be demonstrated is not met.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.scenarios.spec import SLOSpec

__all__ = ["SLOReport", "SLOVerdict", "evaluate_slos", "slo_prometheus_lines"]


@dataclass(frozen=True)
class SLOVerdict:
    """One target's verdict.

    Attributes:
        target: target name (an :class:`SLOSpec` field).
        limit: the configured bound.
        observed: the measured value, or ``None`` when the metric was
            absent from the snapshot.
        passed: whether the observation satisfies the bound.
    """

    target: str
    limit: float
    observed: "float | None"
    passed: bool

    def to_dict(self) -> dict[str, Any]:
        """JSON-able representation."""
        return {
            "target": self.target,
            "limit": self.limit,
            "observed": self.observed,
            "passed": self.passed,
        }


@dataclass(frozen=True)
class SLOReport:
    """Every configured target's verdict plus the overall outcome."""

    verdicts: tuple[SLOVerdict, ...]

    @property
    def passed(self) -> bool:
        """Whether every target passed."""
        return all(verdict.passed for verdict in self.verdicts)

    @property
    def verdict(self) -> str:
        """``"pass"`` or ``"fail"``."""
        return "pass" if self.passed else "fail"

    def failures(self) -> list[SLOVerdict]:
        """The failing verdicts only."""
        return [verdict for verdict in self.verdicts if not verdict.passed]

    def to_dict(self) -> dict[str, Any]:
        """JSON-able representation (the artifact/``/metrics`` block)."""
        return {
            "verdict": self.verdict,
            "passed": self.passed,
            "targets": [verdict.to_dict() for verdict in self.verdicts],
        }


def _latency_series(
    snapshot: Mapping[str, Any], name: str
) -> "Mapping[str, Any] | None":
    for group in ("timers", "histograms"):
        payload = snapshot.get(group, {}).get(name)
        if payload is not None:
            return payload
    return None


def _counter_sum(snapshot: Mapping[str, Any], names: Sequence[str]) -> "float | None":
    counters = snapshot.get("counters", {})
    values = [counters[name]["value"] for name in names if name in counters]
    if not values:
        return None
    return float(sum(values))


def evaluate_slos(
    slo: SLOSpec,
    snapshot: Mapping[str, Any],
    *,
    latency: str = "scenario.latency.total_seconds",
    requests: str = "scenario.requests",
    errors: Sequence[str] = ("scenario.errors",),
    duration_seconds: "float | None" = None,
    duration_gauge: str = "scenario.duration_seconds",
    match_latency: str = "matchmaking.time_to_match_seconds",
) -> SLOReport:
    """Judge ``slo``'s targets against a registry snapshot.

    Args:
        slo: the configured targets.
        snapshot: a :meth:`MetricsRegistry.snapshot` payload.
        latency: timer/histogram name holding per-request latency
            **seconds** (percentiles are compared in milliseconds).
        requests: counter name of attempted requests.
        errors: counter names summed into the error count (absent
            counters contribute 0 when at least one is present).
        duration_seconds: wall duration for the throughput target;
            when ``None`` it is read from ``duration_gauge``.
        duration_gauge: gauge name holding the run duration in seconds.
        match_latency: histogram name holding matchmaking queue-to-
            cohort wait **seconds** (the ``time_to_match_*`` targets).
    """
    verdicts: list[SLOVerdict] = []
    targets = slo.targets()

    series = _latency_series(snapshot, latency)
    for field, key in (
        ("latency_p50_ms", "p50"),
        ("latency_p95_ms", "p95"),
        ("latency_p99_ms", "p99"),
    ):
        if field not in targets:
            continue
        limit = targets[field]
        observed: "float | None" = None
        if series is not None and series.get("count", 0) > 0:
            observed = 1000.0 * float(series[key])
        verdicts.append(
            SLOVerdict(field, limit, observed, observed is not None and observed <= limit)
        )

    match_series = _latency_series(snapshot, match_latency)
    for field, key in (
        ("time_to_match_p50_ms", "p50"),
        ("time_to_match_p95_ms", "p95"),
    ):
        if field not in targets:
            continue
        limit = targets[field]
        observed = None
        if match_series is not None and match_series.get("count", 0) > 0:
            observed = 1000.0 * float(match_series[key])
        verdicts.append(
            SLOVerdict(field, limit, observed, observed is not None and observed <= limit)
        )

    request_count = _counter_sum(snapshot, (requests,))
    error_count = _counter_sum(snapshot, errors)

    if "min_throughput_rps" in targets:
        limit = targets["min_throughput_rps"]
        if duration_seconds is None:
            gauge = snapshot.get("gauges", {}).get(duration_gauge)
            duration_seconds = None if gauge is None else float(gauge["value"])
        observed = None
        if request_count is not None and duration_seconds is not None and duration_seconds > 0:
            observed = request_count / duration_seconds
        verdicts.append(
            SLOVerdict(
                "min_throughput_rps", limit, observed, observed is not None and observed >= limit
            )
        )

    if "max_error_rate" in targets:
        limit = targets["max_error_rate"]
        observed = None
        if request_count is not None and request_count > 0:
            observed = (error_count or 0.0) / request_count
        verdicts.append(
            SLOVerdict(
                "max_error_rate", limit, observed, observed is not None and observed <= limit
            )
        )

    return SLOReport(tuple(verdicts))


def slo_prometheus_lines(report: SLOReport, *, namespace: str = "repro") -> str:
    """The verdict block in Prometheus text exposition format.

    ``<namespace>_slo_passed`` is the overall verdict (1 pass / 0 fail);
    one ``<namespace>_slo_target_passed{target="..."}`` sample per
    configured target.
    """
    lines = [
        f"# TYPE {namespace}_slo_passed gauge",
        f"{namespace}_slo_passed {1 if report.passed else 0}",
        f"# TYPE {namespace}_slo_target_passed gauge",
    ]
    for verdict in report.verdicts:
        lines.append(
            f'{namespace}_slo_target_passed{{target="{verdict.target}"}} '
            f"{1 if verdict.passed else 0}"
        )
    return "\n".join(lines) + "\n"
