"""Deterministic open-loop load generation.

Closed-loop benches send request *t+1* when response *t* returns, so a
saturated server quietly slows the generator down and the latency
histogram never sees the queue building — the classic coordinated
omission.  This module fixes both halves:

* the arrival schedule is **precomputed** from a seed
  (:class:`ArrivalSchedule`), so a run is reproducible and the intended
  send time of every request is known before the first byte moves;
* latency is measured **from the intended send time**, not from
  whenever a sender thread got around to transmitting — a request that
  should have left at *t* and completed at *t+d* records *d* even when
  the generator itself fell behind, so scheduler saturation shows up in
  the percentiles instead of hiding in the gaps between requests.

Closed-loop schedules are still supported (``ArrivalSchedule.open_loop``
false): there the intended send time *is* the actual send time, because
a closed loop by construction has no schedule to fall behind.

Metrics recorded into the registry (default names, ``prefix`` swaps the
``scenario`` root): ``scenario.requests`` / ``scenario.errors`` /
``scenario.errors.<ExceptionName>`` counters,
``scenario.latency.total_seconds`` and
``scenario.latency.send_lag_seconds`` histograms (retention bounded by
:data:`repro.serve.config.REQUEST_HISTOGRAM_KEEP`),
``scenario.inflight`` and ``scenario.duration_seconds`` gauges.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.analysis import sanitizer as _sanitize
from repro.obs import runtime as _obs
from repro.obs.metrics import MetricsRegistry
from repro.serve.config import REQUEST_HISTOGRAM_KEEP
from repro.scenarios.spec import ArrivalSpec

__all__ = ["ArrivalSchedule", "LoadResult", "run_load"]


class ArrivalSchedule:
    """Precomputed intended send times (seconds from generator start).

    Offsets are non-decreasing.  ``open_loop`` distinguishes the two
    latency-accounting regimes: open-loop latencies are measured from
    the scheduled offset, closed-loop latencies from the actual send.
    """

    __slots__ = ("offsets", "open_loop")

    def __init__(self, offsets: Sequence[float], *, open_loop: bool = True) -> None:
        values = tuple(float(offset) for offset in offsets)
        if any(offset < 0 for offset in values):
            raise ValueError("arrival offsets must be non-negative")
        if any(b < a for a, b in zip(values, values[1:])):
            raise ValueError("arrival offsets must be non-decreasing")
        self.offsets = values
        self.open_loop = open_loop

    def __len__(self) -> int:
        return len(self.offsets)

    @classmethod
    def poisson(cls, count: int, *, rate: float, seed: int) -> "ArrivalSchedule":
        """``count`` Poisson arrivals at ``rate`` req/s, fully seeded."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        rng = np.random.default_rng(seed)
        gaps = rng.exponential(1.0 / rate, size=count)
        return cls(np.cumsum(gaps).tolist(), open_loop=True)

    @classmethod
    def burst(cls, count: int, *, burst_size: int, interval: float) -> "ArrivalSchedule":
        """``count`` arrivals in simultaneous bursts every ``interval`` s."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if burst_size <= 0:
            raise ValueError(f"burst_size must be positive, got {burst_size}")
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        return cls([(i // burst_size) * interval for i in range(count)], open_loop=True)

    @classmethod
    def closed_loop(cls, count: int) -> "ArrivalSchedule":
        """``count`` requests sent as fast as the responses allow."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        return cls([0.0] * count, open_loop=False)

    @classmethod
    def from_spec(cls, arrival: ArrivalSpec, count: int, *, seed: int) -> "ArrivalSchedule":
        """Build the schedule an :class:`ArrivalSpec` describes."""
        # Individual arrivals pace exactly like Poisson traffic; only
        # what each arrival *sends* differs (a join, not a round).
        if arrival.kind in ("poisson", "individual"):
            assert arrival.rate is not None
            return cls.poisson(count, rate=arrival.rate, seed=seed)
        if arrival.kind == "burst":
            assert arrival.burst_size is not None and arrival.burst_interval is not None
            return cls.burst(count, burst_size=arrival.burst_size, interval=arrival.burst_interval)
        return cls.closed_loop(count)

    def __repr__(self) -> str:
        kind = "open-loop" if self.open_loop else "closed-loop"
        return f"ArrivalSchedule({len(self.offsets)} arrivals, {kind})"


@dataclass(frozen=True)
class LoadResult:
    """Outcome of one load run (histograms live in the registry)."""

    requests: int
    errors: int
    duration_seconds: float

    @property
    def error_rate(self) -> float:
        """``errors / requests`` (0.0 when nothing was sent)."""
        return self.errors / self.requests if self.requests else 0.0

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of wall time."""
        return self.requests / self.duration_seconds if self.duration_seconds > 0 else 0.0


def run_load(
    send: Callable[[int], Any],
    schedule: ArrivalSchedule,
    *,
    concurrency: int = 4,
    registry: "MetricsRegistry | None" = None,
    prefix: str = "scenario",
    clock: Callable[[], float] = time.perf_counter,
    sleep: Callable[[float], None] = time.sleep,
) -> LoadResult:
    """Drive ``send(i)`` for every scheduled arrival; returns the totals.

    ``concurrency`` sender threads pull arrival indices in order from a
    shared cursor; an open-loop sender sleeps until the arrival's
    intended offset, then fires.  When every sender is stuck waiting on
    a slow system, later arrivals go out late — and their recorded
    latency *includes* that lateness, because it is measured from the
    intended send time (the generator also records the raw send lag so
    generator-side saturation is visible separately).

    Exceptions raised by ``send`` are counted (total plus per exception
    type) and swallowed: a load run measures failures, it does not stop
    on them.

    Args:
        send: callable performing request ``i``; its return value is
            ignored, exceptions mark the request failed.
        schedule: the precomputed arrival schedule.
        concurrency: sender-thread count.
        registry: metrics registry recording the run (defaults to the
            process-global registry).
        prefix: metric-name root (default ``scenario``).
        clock: injectable monotonic clock (tests fake it).
        sleep: injectable sleep (tests fake it).
    """
    if concurrency <= 0:
        raise ValueError(f"concurrency must be positive, got {concurrency}")
    metrics = registry if registry is not None else _obs.metrics_registry()
    latency = metrics.histogram(
        f"{prefix}.latency.total_seconds", keep=REQUEST_HISTOGRAM_KEEP
    )
    send_lag = metrics.histogram(
        f"{prefix}.latency.send_lag_seconds", keep=REQUEST_HISTOGRAM_KEEP
    )
    requests_counter = metrics.counter(f"{prefix}.requests")
    errors_counter = metrics.counter(f"{prefix}.errors")
    inflight = metrics.gauge(f"{prefix}.inflight")
    cursor_lock = _sanitize.lock("scenario.loadgen.cursor")
    cursor = iter(range(len(schedule)))
    counts_lock = _sanitize.lock("scenario.loadgen.counts")
    totals = {"requests": 0, "errors": 0}
    start = clock()

    def sender() -> None:
        while True:
            with cursor_lock:
                index = next(cursor, None)
            if index is None:
                return
            intended = start + schedule.offsets[index]
            if schedule.open_loop:
                delay = intended - clock()
                if delay > 0:
                    _sanitize.check_blocking("sleep(open-loop pacing)")
                    sleep(delay)
            sent = clock()
            # Closed loop has no schedule to fall behind: the intended
            # send time is the actual one.
            origin = intended if schedule.open_loop else sent
            if schedule.open_loop:
                send_lag.observe(max(0.0, sent - intended))
            inflight.inc()
            failed: "str | None" = None
            try:
                send(index)
            except Exception as error:  # noqa — load generation measures failures
                failed = type(error).__name__
            finally:
                inflight.dec()
            if failed is None:
                latency.observe(clock() - origin)
            else:
                errors_counter.inc()
                metrics.counter(f"{prefix}.errors.{failed}").inc()
            requests_counter.inc()
            with counts_lock:
                totals["requests"] += 1
                if failed is not None:
                    totals["errors"] += 1

    threads = [
        threading.Thread(target=sender, name=f"dygroups-loadgen-{i}", daemon=True)
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    _sanitize.check_blocking("thread.join(loadgen)")
    for thread in threads:
        thread.join()
    duration = clock() - start
    metrics.gauge(f"{prefix}.duration_seconds").set(duration)
    return LoadResult(
        requests=totals["requests"], errors=totals["errors"], duration_seconds=duration
    )
