"""Cross-paradigm scenario harness.

One :class:`~repro.scenarios.spec.ScenarioSpec` can be executed three
ways, all backed by the same round kernel:

* ``inprocess`` — an :class:`~repro.serve.client.InProcessClient` over a
  live :class:`~repro.serve.service.GroupingService` (no sockets, no
  serialization: measures the service itself);
* ``http`` — an :class:`~repro.serve.client.HttpClient` against a real
  :class:`~repro.serve.http.GroupingHTTPServer` on an ephemeral port
  (the full wire path);
* ``cli`` — one ``dygroups simulate`` subprocess per cohort, groupings
  read back from the ``--save`` trajectory JSON (the offline engine).

Scenarios with ``individual`` arrivals run through the serve paradigms
only (``inprocess``/``http``): participants join the matchmaking queue
one at a time, the condenser forms the cohorts, and the harness then
advances rounds on the condensed sessions.  Each condensed cohort is
additionally verified against an offline ``simulate()`` replay of its
recorded skills and seed, so the streaming admission path carries the
same bit-identity guarantee as direct cohort creation (see
docs/matchmaking.md).

:func:`compare_scenario` drives the same scenario through each paradigm
under the same seeded arrival schedule and asserts the produced
groupings are **bit-identical** — the serving layer's central
correctness claim, checked end to end.  Under deliberate saturation
some round-advance requests are rejected (429), so the identity check
compares the rounds *jointly played* in every paradigm; a scenario that
played no comparable round at all fails the check.

The harness owns the process-global metrics registry while it runs:
each paradigm starts from :meth:`MetricsRegistry.reset` so its
``scenario.*`` load-generator series and ``serve.*`` stage series
describe that paradigm alone.  Per-paradigm snapshots are kept on the
:class:`ParadigmRun`, judged against the scenario's SLO block, and
written into ``BENCH_scenario_<name>.json`` by
:func:`write_scenario_artifact`.

``src/repro/scenarios/`` is on the DYG103 allowlist: load generation
and latency accounting legitimately read clocks; nothing here feeds
grouping results.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro.analysis import sanitizer as _sanitize
from repro.core.simulation import simulate
from repro.obs import runtime as _obs
from repro.obs.provenance import provenance_stamp
from repro.registry import build_policy
from repro.scenarios.loadgen import ArrivalSchedule, LoadResult, run_load
from repro.scenarios.slo import SLOReport, evaluate_slos
from repro.scenarios.spec import ScenarioSpec
from repro.serve.client import HttpClient, InProcessClient
from repro.serve.config import ServeConfig
from repro.serve.http import start_server
from repro.serve.service import GroupingService

__all__ = [
    "PARADIGMS",
    "ParadigmMismatch",
    "ParadigmRun",
    "ScenarioComparison",
    "compare_scenario",
    "run_paradigm",
    "write_scenario_artifact",
]

#: Execution paradigms the harness can drive, in default comparison order.
PARADIGMS = ("inprocess", "http", "cli")

#: Artifact schema version of ``BENCH_scenario_<name>.json``.
SCENARIO_ARTIFACT_SCHEMA = 1

#: Serve-side stage series included in artifacts (absent for ``cli``,
#: whose work happens in child processes).
_STAGE_SERIES = {
    "queue_wait": "serve.scheduler.wait_seconds",
    "batch_assembly": "serve.scheduler.batch_assembly_seconds",
    "kernel_step": "serve.scheduler.kernel_seconds",
    "http_request": "serve.http.request_seconds",
}


class ParadigmMismatch(AssertionError):
    """Two paradigms produced different groupings for the same scenario."""


# Groupings canonical form: cohort index → {round index → grouping},
# where a grouping is a tuple of tuples of member indices.
Groupings = "dict[int, dict[int, tuple[tuple[int, ...], ...]]]"


def _canonical_grouping(groups: Sequence[Sequence[int]]) -> tuple:
    return tuple(tuple(int(member) for member in group) for group in groups)


@dataclass(frozen=True)
class ParadigmRun:
    """One paradigm's execution of a scenario.

    Attributes:
        paradigm: ``"inprocess"``, ``"http"``, or ``"cli"``.
        groupings: canonical per-cohort, per-round groupings actually
            played (rejected rounds are simply absent).
        load: the load generator's totals.
        snapshot: the metrics-registry snapshot taken right after the
            run — ``scenario.*`` client-side series plus, for the serve
            paradigms, the ``serve.*`` stage series.
    """

    paradigm: str
    groupings: dict[int, dict[int, tuple]]
    load: LoadResult
    snapshot: Mapping[str, Any]

    @property
    def rounds_played(self) -> int:
        """Total rounds that produced a grouping."""
        return sum(len(rounds) for rounds in self.groupings.values())

    def latency_series(self) -> "Mapping[str, Any] | None":
        """The client-observed total-latency histogram snapshot."""
        return self.snapshot.get("histograms", {}).get("scenario.latency.total_seconds")

    def stage_series(self) -> dict[str, Mapping[str, Any]]:
        """Per-stage serve-side series present in this run's snapshot."""
        stages: dict[str, Mapping[str, Any]] = {}
        for stage, name in _STAGE_SERIES.items():
            for group in ("timers", "histograms"):
                payload = self.snapshot.get(group, {}).get(name)
                if payload is not None and payload.get("count", 0) > 0:
                    stages[stage] = payload
                    break
        return stages


@dataclass(frozen=True)
class ScenarioComparison:
    """Outcome of one scenario across paradigms.

    ``passed`` requires every per-paradigm SLO verdict to pass (a
    scenario without an SLO block passes on identity alone — identity
    itself is enforced before construction, so a comparison object
    always describes bit-identical groupings).
    """

    spec: ScenarioSpec
    runs: tuple[ParadigmRun, ...]
    reports: Mapping[str, "SLOReport | None"]
    rounds_compared: int

    @property
    def passed(self) -> bool:
        """Whether every configured SLO verdict passed."""
        return all(report is None or report.passed for report in self.reports.values())

    @property
    def verdict(self) -> str:
        """``"pass"`` or ``"fail"``."""
        return "pass" if self.passed else "fail"

    def to_dict(self) -> dict[str, Any]:
        """The ``BENCH_scenario_<name>.json`` payload (sans provenance)."""
        paradigms: dict[str, Any] = {}
        for run in self.runs:
            report = self.reports.get(run.paradigm)
            paradigms[run.paradigm] = {
                "requests": run.load.requests,
                "errors": run.load.errors,
                "error_rate": run.load.error_rate,
                "throughput_rps": run.load.throughput_rps,
                "duration_seconds": run.load.duration_seconds,
                "rounds_played": run.rounds_played,
                "latency": run.latency_series(),
                "stages": run.stage_series(),
                "slo": None if report is None else report.to_dict(),
            }
        return {
            "schema": SCENARIO_ARTIFACT_SCHEMA,
            "scenario": self.spec.to_dict(),
            "identical": True,
            "rounds_compared": self.rounds_compared,
            "verdict": self.verdict,
            "paradigms": paradigms,
        }


def _serve_config(spec: ScenarioSpec) -> ServeConfig:
    overrides = dict(spec.serve) if spec.serve is not None else {}
    if spec.slo is not None and "slo" not in overrides:
        overrides["slo"] = spec.slo.to_dict()
    return ServeConfig(**overrides)


def _run_service_paradigm(spec: ScenarioSpec, client: Any, paradigm: str) -> ParadigmRun:
    population = spec.population
    cohort_ids = [
        client.create_cohort(
            population.skills(i).tolist(),
            population.k,
            mode=population.mode,
            rate=population.rate,
            policy=spec.policy,
            seed=spec.seed + i,
        )["cohort"]
        for i in range(population.cohorts)
    ]
    records: dict[int, dict[int, tuple]] = {i: {} for i in range(population.cohorts)}
    records_lock = _sanitize.lock("scenario.harness.records")

    def send(index: int) -> None:
        # Round-robin across cohorts so bursts spread over sessions the
        # way concurrent learners would.  Calls racing on one cohort are
        # safe: each advances exactly one round and reports its index.
        cohort = index % population.cohorts
        response = client.advance_rounds(cohort_ids[cohort], 1)
        with records_lock:
            for record in response["played"]:
                records[cohort][int(record["round"])] = _canonical_grouping(record["groups"])

    schedule = ArrivalSchedule.from_spec(spec.arrival, spec.total_requests, seed=spec.seed)
    load = run_load(send, schedule, concurrency=spec.arrival.concurrency)
    return ParadigmRun(
        paradigm=paradigm,
        groupings=records,
        load=load,
        snapshot=_obs.metrics_registry().snapshot(),
    )


def _run_inprocess(spec: ScenarioSpec) -> ParadigmRun:
    service = GroupingService(_serve_config(spec))
    try:
        return _run_service_paradigm(spec, InProcessClient(service), "inprocess")
    finally:
        service.close()


def _run_http(spec: ScenarioSpec) -> ParadigmRun:
    service = GroupingService(_serve_config(spec))
    try:
        server = start_server(service, port=0)
    except OSError:
        service.close()
        raise
    try:
        return _run_service_paradigm(spec, HttpClient(server.url), "http")
    finally:
        server.close()


def _matchmaking_serve_config(spec: ScenarioSpec) -> ServeConfig:
    """The serve config of an ``individual`` scenario: one matchmaking
    spec shaped like the population, quota-bound to its cohort count."""
    overrides = dict(spec.serve) if spec.serve is not None else {}
    if spec.slo is not None and "slo" not in overrides:
        overrides["slo"] = spec.slo.to_dict()
    population = spec.population
    overrides.setdefault(
        "matchmaking",
        {
            "specs": [
                {
                    "n": population.n,
                    "k": population.k,
                    "policy": spec.policy,
                    "mode": population.mode,
                    "rate": population.rate,
                    "seed": spec.seed,
                    "max_cohorts": population.cohorts,
                }
            ]
        },
    )
    return ServeConfig(**overrides)


def _individual_skill_stream(spec: ScenarioSpec) -> np.ndarray:
    """The seeded arrival-order skill stream of an individual scenario.

    Concatenates every cohort's seeded skill draw and shuffles the pool
    with the scenario seed, so participants of different "intended"
    cohorts interleave the way independent arrivals would — which
    cohorts actually condense together is the matchmaker's decision.
    """
    population = spec.population
    pool = np.concatenate(
        [population.skills(i) for i in range(population.cohorts)]
    )
    order = np.random.default_rng(spec.seed).permutation(pool.size)
    return pool[order]


def _run_individual_paradigm(spec: ScenarioSpec, client: Any, paradigm: str) -> ParadigmRun:
    population = spec.population
    skills = _individual_skill_stream(spec)

    # Phase 1: every participant joins individually on the arrival
    # schedule; the service condenses cohorts as waves fill.
    def send_join(index: int) -> None:
        client.join(float(skills[index]), participant=f"p{index:05d}")

    schedule = ArrivalSchedule.from_spec(spec.arrival, spec.total_requests, seed=spec.seed)
    join_load = run_load(send_join, schedule, concurrency=spec.arrival.concurrency)

    # Wait out any deadline-driven stragglers (fill-triggered waves
    # condense synchronously, so this normally returns immediately).
    deadline = time.monotonic() + 60.0
    while True:
        snapshot = client.matchmaking()
        if snapshot["waiting"] == 0:
            break
        if time.monotonic() >= deadline:
            raise ParadigmMismatch(
                f"[{paradigm}] matchmaking left {snapshot['waiting']} of "
                f"{spec.total_requests} participants unmatched"
            )
        time.sleep(0.05)
    cohort_ids = [
        cohort
        for name in sorted(snapshot["specs"])
        for cohort in snapshot["specs"][name]["cohorts"]
    ]
    if len(cohort_ids) != population.cohorts:
        raise ParadigmMismatch(
            f"[{paradigm}] matchmaking condensed {len(cohort_ids)} cohorts, "
            f"expected {population.cohorts}"
        )
    # Initial describes, captured before any round mutates the skills.
    initial = [client.get_cohort(cohort_id) for cohort_id in cohort_ids]

    # Phase 2: advance rounds on the condensed cohorts (closed loop —
    # the arrival schedule modelled joins, not rounds).
    records: dict[int, dict[int, tuple]] = {i: {} for i in range(population.cohorts)}
    records_lock = _sanitize.lock("scenario.harness.records")

    def send_round(index: int) -> None:
        cohort = index % population.cohorts
        response = client.advance_rounds(cohort_ids[cohort], 1)
        with records_lock:
            for record in response["played"]:
                records[cohort][int(record["round"])] = _canonical_grouping(record["groups"])

    round_schedule = ArrivalSchedule.closed_loop(population.cohorts * spec.rounds)
    round_load = run_load(send_round, round_schedule, concurrency=spec.arrival.concurrency)

    # Every condensed cohort must replay bit-identically offline: same
    # recorded skills + seed through simulate() gives the same groupings.
    for cohort_index, info in enumerate(initial):
        result = simulate(
            build_policy(spec.policy, mode=population.mode, rate=population.rate),
            np.asarray(info["skills"], dtype=np.float64),
            k=population.k,
            alpha=spec.rounds,
            mode=population.mode,
            rate=population.rate,
            seed=int(info["seed"]),
        )
        for round_index, groups in records[cohort_index].items():
            expected = _canonical_grouping(result.groupings[round_index])
            if groups != expected:
                raise ParadigmMismatch(
                    f"[{paradigm}] condensed cohort {info['cohort']} diverges from "
                    f"offline simulate() at round {round_index}: served {groups}, "
                    f"offline {expected}"
                )

    load = LoadResult(
        requests=join_load.requests + round_load.requests,
        errors=join_load.errors + round_load.errors,
        duration_seconds=join_load.duration_seconds + round_load.duration_seconds,
    )
    return ParadigmRun(
        paradigm=paradigm,
        groupings=records,
        load=load,
        snapshot=_obs.metrics_registry().snapshot(),
    )


def _run_individual_inprocess(spec: ScenarioSpec) -> ParadigmRun:
    service = GroupingService(_matchmaking_serve_config(spec))
    try:
        return _run_individual_paradigm(spec, InProcessClient(service), "inprocess")
    finally:
        service.close()


def _run_individual_http(spec: ScenarioSpec) -> ParadigmRun:
    service = GroupingService(_matchmaking_serve_config(spec))
    try:
        server = start_server(service, port=0)
    except OSError:
        service.close()
        raise
    try:
        return _run_individual_paradigm(spec, HttpClient(server.url), "http")
    finally:
        server.close()


def _cli_environment() -> dict[str, str]:
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root if not existing else src_root + os.pathsep + existing
    return env


def _run_cli(spec: ScenarioSpec, *, timeout: float = 300.0) -> ParadigmRun:
    population = spec.population
    env = _cli_environment()
    records: dict[int, dict[int, tuple]] = {i: {} for i in range(population.cohorts)}
    with tempfile.TemporaryDirectory(prefix="dygroups-scenario-") as tmp:
        workdir = Path(tmp)
        for i in range(population.cohorts):
            (workdir / f"skills_{i}.json").write_text(
                json.dumps({"skills": population.skills(i).tolist()})
            )

        def send(index: int) -> None:
            command = [
                sys.executable,
                "-m",
                "repro",
                "simulate",
                "--skills-file",
                str(workdir / f"skills_{index}.json"),
                "--policy",
                spec.policy,
                "--k",
                str(population.k),
                "--alpha",
                str(spec.rounds),
                "--mode",
                population.mode,
                "--rate",
                str(population.rate),
                "--seed",
                str(spec.seed + index),
                "--save",
                str(workdir / f"result_{index}.json"),
            ]
            completed = subprocess.run(
                command, env=env, capture_output=True, text=True, timeout=timeout
            )
            if completed.returncode != 0:
                raise RuntimeError(
                    f"dygroups simulate exited {completed.returncode}: "
                    f"{completed.stderr.strip() or completed.stdout.strip()}"
                )

        # One CLI invocation simulates a whole cohort trajectory, so the
        # CLI schedule is one closed-loop request per cohort — latency
        # is per-cohort, not per-round, and is reported as such.
        schedule = ArrivalSchedule.closed_loop(population.cohorts)
        concurrency = min(spec.arrival.concurrency, population.cohorts)
        load = run_load(send, schedule, concurrency=concurrency)
        for i in range(population.cohorts):
            result_path = workdir / f"result_{i}.json"
            if not result_path.is_file():
                continue
            payload = json.loads(result_path.read_text())
            for round_index, groups in enumerate(payload["groupings"]):
                records[i][round_index] = _canonical_grouping(groups)
    return ParadigmRun(
        paradigm="cli",
        groupings=records,
        load=load,
        snapshot=_obs.metrics_registry().snapshot(),
    )


def run_paradigm(spec: ScenarioSpec, paradigm: str) -> ParadigmRun:
    """Execute ``spec`` through one paradigm on a freshly reset registry."""
    runners = {"inprocess": _run_inprocess, "http": _run_http, "cli": _run_cli}
    if paradigm not in runners:
        raise ValueError(f"unknown paradigm {paradigm!r}; expected one of {PARADIGMS}")
    if spec.arrival.kind == "individual":
        individual_runners = {
            "inprocess": _run_individual_inprocess,
            "http": _run_individual_http,
        }
        if paradigm not in individual_runners:
            raise ValueError(
                f"paradigm {paradigm!r} does not support individual arrivals; "
                f"expected one of {tuple(individual_runners)} "
                "(the cli paradigm has no matchmaking queue to join)"
            )
        runners = dict(individual_runners)
    _obs.metrics_registry().reset()
    return runners[paradigm](spec)


def _assert_identical(runs: Sequence[ParadigmRun]) -> int:
    """Check bit-identity over jointly-played rounds; returns the count."""
    reference = runs[0]
    compared = 0
    for cohort in reference.groupings:
        joint = set(reference.groupings[cohort])
        for run in runs[1:]:
            joint &= set(run.groupings.get(cohort, {}))
        for round_index in sorted(joint):
            expected = reference.groupings[cohort][round_index]
            for run in runs[1:]:
                actual = run.groupings[cohort][round_index]
                if actual != expected:
                    raise ParadigmMismatch(
                        f"groupings diverge: cohort {cohort} round {round_index}: "
                        f"{reference.paradigm} produced {expected}, "
                        f"{run.paradigm} produced {actual}"
                    )
            compared += 1
    if len(runs) > 1 and compared == 0:
        raise ParadigmMismatch(
            "no jointly-played rounds to compare — every paradigm pair "
            "diverged in which rounds completed"
        )
    return compared


def compare_scenario(
    spec: "ScenarioSpec", *, paradigms: Sequence[str] = PARADIGMS
) -> ScenarioComparison:
    """Run ``spec`` through ``paradigms`` and assert grouping identity.

    Raises:
        ParadigmMismatch: when any two paradigms disagree on any
            jointly-played round's grouping (or share no round at all).
        ValueError: for an unknown paradigm name.
    """
    if not paradigms:
        raise ValueError("compare_scenario requires at least one paradigm")
    runs = tuple(run_paradigm(spec, paradigm) for paradigm in paradigms)
    rounds_compared = _assert_identical(runs)
    reports = {
        run.paradigm: (
            None
            if spec.slo is None
            else evaluate_slos(
                spec.slo, run.snapshot, duration_seconds=run.load.duration_seconds
            )
        )
        for run in runs
    }
    return ScenarioComparison(
        spec=spec, runs=runs, reports=reports, rounds_compared=rounds_compared
    )


def write_scenario_artifact(
    comparison: ScenarioComparison, directory: "str | Path" = "results"
) -> Path:
    """Write ``BENCH_scenario_<name>.json`` and return its path.

    The payload is the comparison's :meth:`~ScenarioComparison.to_dict`
    plus a provenance block (git SHA, UTC timestamp, host info).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = comparison.to_dict()
    payload["provenance"] = provenance_stamp()
    path = directory / f"BENCH_scenario_{comparison.spec.name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
