"""Global observability runtime: the switchboard for journal/trace/metrics.

Instrumented code (``simulate``, ``run_spec``, the sweep grid, the bench
harness) asks this module for the current :class:`ObsState` once per call
and takes its plain fast path when the answer is ``None`` — keeping the
disabled overhead at a single module-level read.  The CLI's
``--journal``/``--trace``/``--log-level`` flags map 1:1 onto
:func:`configure`.

The metrics registry is process-global and survives configure/shutdown
cycles, so a pytest-benchmark session can accumulate per-round timings
across many runs and drain them per bench (see ``benchmarks/_util.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterator

from repro.obs import trace as _trace
from repro.obs.journal import Journal
from repro.obs.logconfig import setup_logging
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = [
    "ObsState",
    "configure",
    "detach",
    "enable_metrics",
    "enabled",
    "metrics_registry",
    "observed",
    "shutdown",
    "state",
]


@dataclass
class ObsState:
    """The live observability wiring of the process.

    Attributes:
        journal: active event journal, or ``None``.
        tracer: active span tracer, or ``None``.
        metrics: the process-global metrics registry.
    """

    journal: Journal | None
    tracer: Tracer | None
    metrics: MetricsRegistry


_REGISTRY = MetricsRegistry()
_state: ObsState | None = None


def configure(
    *,
    journal: "str | Path | IO[str] | Journal | None" = None,
    trace: bool = False,
    log_level: "str | int | None" = None,
    run_id: str | None = None,
) -> ObsState:
    """Enable observability; replaces any previous configuration.

    Args:
        journal: a ``.jsonl`` path, an open text stream, or an existing
            :class:`Journal`; ``None`` disables the journal.
        trace: activate span tracing (mirrored into the journal when one
            is configured).
        log_level: when given, also call :func:`setup_logging` with it.
        run_id: run id for a journal opened here (ignored for a
            pre-built :class:`Journal`).

    Returns:
        The new :class:`ObsState`.
    """
    global _state
    shutdown()
    if journal is None or isinstance(journal, Journal):
        active_journal = journal
    else:
        active_journal = Journal(journal, run_id=run_id)
    tracer = Tracer(journal=active_journal) if trace else None
    if tracer is not None:
        _trace.activate(tracer)
    if log_level is not None:
        setup_logging(log_level)
    _state = ObsState(journal=active_journal, tracer=tracer, metrics=_REGISTRY)
    return _state


def enable_metrics() -> MetricsRegistry:
    """Metrics-only enable (no journal, no tracing); idempotent.

    Used by the bench harness, where per-round timings should be
    collected without paying for event emission.
    """
    global _state
    if _state is None:
        _state = ObsState(journal=None, tracer=None, metrics=_REGISTRY)
    return _state.metrics


def shutdown() -> None:
    """Disable observability: deactivate tracing, close the journal."""
    global _state
    if _state is None:
        return
    if _state.tracer is not None:
        _trace.deactivate()
    if _state.journal is not None:
        _state.journal.close()
    _state = None


def detach() -> None:
    """Forget the current wiring *without* closing its sinks.

    For forked worker processes (:mod:`repro.experiments.parallel`): the
    child inherits the parent's :class:`ObsState` — including an open
    journal file descriptor — and must stop using it without emitting
    ``journal_close`` into the parent's stream or interleaving records.
    The parent's state is untouched; the child starts observability-free
    and may :func:`configure` its own sinks afterwards.
    """
    global _state
    if _state is None:
        return
    if _state.tracer is not None:
        _trace.deactivate()
    _state = None


def enabled() -> bool:
    """Whether any observability is configured."""
    return _state is not None


def state() -> ObsState | None:
    """The current :class:`ObsState`, or ``None`` when disabled.

    This is the hot-path accessor: instrumented code calls it once and
    branches on ``None``.
    """
    return _state


def metrics_registry() -> MetricsRegistry:
    """The process-global metrics registry (exists even while disabled)."""
    return _REGISTRY


@contextmanager
def observed(
    *,
    journal: "str | Path | IO[str] | Journal | None" = None,
    trace: bool = False,
    log_level: "str | int | None" = None,
    run_id: str | None = None,
) -> Iterator[ObsState]:
    """Scoped :func:`configure` — shuts observability down on exit."""
    active = configure(journal=journal, trace=trace, log_level=log_level, run_id=run_id)
    try:
        yield active
    finally:
        shutdown()
