"""Stdlib logging setup for the ``repro`` logger hierarchy.

The package logs through child loggers of ``repro`` (``repro.core.*``,
``repro.experiments.*``); :func:`setup_logging` attaches exactly one
stream handler to the ``repro`` root so ``--log-level debug`` lights up
the whole stack without touching the global root logger.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

__all__ = ["LOG_FORMAT", "get_logger", "setup_logging"]

#: Format applied to the handler installed by :func:`setup_logging`.
LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

_HANDLER_MARK = "_repro_obs_handler"


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``name`` may omit the prefix)."""
    if name == "repro" or name.startswith("repro."):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")


def setup_logging(level: "str | int" = "INFO", stream: "IO[str] | None" = None) -> logging.Logger:
    """Set the ``repro`` logger level and install one stream handler.

    Idempotent: calling again adjusts the level of the existing handler
    instead of stacking a second one.

    Args:
        level: a ``logging`` level name (case-insensitive) or number.
        stream: handler target; defaults to ``sys.stderr``.

    Returns:
        The configured ``repro`` root logger.

    Raises:
        ValueError: for an unknown level name.
    """
    if isinstance(level, int):
        resolved = level
    else:
        resolved = logging.getLevelName(str(level).upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
    root = logging.getLogger("repro")
    root.setLevel(resolved)
    for handler in root.handlers:
        if getattr(handler, _HANDLER_MARK, False):
            handler.setLevel(resolved)
            return root
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setLevel(resolved)
    handler.setFormatter(logging.Formatter(LOG_FORMAT))
    setattr(handler, _HANDLER_MARK, True)
    root.addHandler(handler)
    return root
