"""Nestable tracing spans with a module-level no-op fast path.

Instrumented code wraps its phases in ``with trace.span("name"):``.  When
no tracer is active — the default — :func:`span` is a single module-level
read returning the shared :data:`NOOP_SPAN` singleton: no allocation, no
clock call, no record.  When a :class:`Tracer` is activated (via
``repro.obs.runtime.configure(trace=True)``), each span is timed on the
monotonic clock, tagged with its nesting depth, kept in
:attr:`Tracer.spans`, and optionally mirrored to a journal as an
``event="span"`` record.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.obs.journal import Journal

__all__ = [
    "NOOP_SPAN",
    "SpanRecord",
    "Tracer",
    "activate",
    "active_tracer",
    "deactivate",
    "span",
]


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def __repr__(self) -> str:
        return "NOOP_SPAN"


#: The singleton every :func:`span` call returns while tracing is off.
NOOP_SPAN = _NoopSpan()

_active: "Tracer | None" = None


def span(name: str, **attrs: Any) -> "_Span | _NoopSpan":
    """A context manager timing ``name`` under the active tracer.

    The disabled path is the no-op fast path: one global read, then the
    shared :data:`NOOP_SPAN` is returned unchanged.
    """
    tracer = _active
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


def activate(tracer: "Tracer") -> "Tracer":
    """Install ``tracer`` as the process-wide active tracer."""
    global _active
    _active = tracer
    return tracer


def deactivate() -> None:
    """Restore the disabled (no-op) state."""
    global _active
    _active = None


def active_tracer() -> "Tracer | None":
    """The currently active tracer, or ``None`` when tracing is off."""
    return _active


@dataclass(frozen=True)
class SpanRecord:
    """One completed span.

    Attributes:
        name: span name (the phase taxonomy, e.g. ``core.round``).
        start: seconds on the tracer clock when the span opened.
        duration: wall-clock seconds the span was open.
        depth: nesting depth at open time (0 = outermost).
        index: completion order within the tracer.
        attrs: free-form attributes passed to :func:`span`.
    """

    name: str
    start: float
    duration: float
    depth: int
    index: int
    attrs: dict[str, Any] = field(default_factory=dict)


class _Span:
    """A live span; records itself on exit (even when the body raises)."""

    __slots__ = ("_tracer", "name", "attrs", "depth", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.depth = 0
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self.depth = self._tracer._depth
        self._tracer._depth += 1
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        duration = time.perf_counter() - self._start
        self._tracer._depth -= 1
        self._tracer._finish(self, duration)
        return False


class Tracer:
    """Collects :class:`SpanRecord`\\ s; optionally mirrors them to a journal."""

    def __init__(self, journal: "Journal | None" = None) -> None:
        self.spans: list[SpanRecord] = []
        self._journal = journal
        self._depth = 0
        self._t0 = time.perf_counter()

    def span(self, name: str, **attrs: Any) -> _Span:
        """Open a span named ``name`` (use as a context manager)."""
        return _Span(self, name, attrs)

    def clear(self) -> None:
        """Drop all completed spans."""
        self.spans.clear()

    def _finish(self, live: _Span, duration: float) -> None:
        record = SpanRecord(
            name=live.name,
            start=live._start - self._t0,
            duration=duration,
            depth=live.depth,
            index=len(self.spans),
            attrs=live.attrs,
        )
        self.spans.append(record)
        if self._journal is not None and not self._journal.closed:
            self._journal.emit(
                "span",
                name=record.name,
                dur=round(duration, 9),
                depth=record.depth,
                **live.attrs,
            )

    def __repr__(self) -> str:
        return f"Tracer(spans={len(self.spans)}, journal={self._journal is not None})"
