"""Provenance stamps for archived artifacts.

Every machine-readable artifact the repo emits — ``BENCH_<name>.json``
from the bench harness, ``BENCH_scenario_<name>.json`` from the scenario
harness — carries a provenance block so the perf trajectory stays
comparable across PRs: which commit produced the numbers, when, and on
what host.  Without it two artifacts with different numbers are just two
files; with it they are two points on a curve.

Lives under ``repro.obs`` because stamping reads the wall clock (the
documented DYG103 allowlist): timestamps describe the run, they never
feed results.
"""

from __future__ import annotations

import platform
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

__all__ = ["provenance_stamp", "git_sha"]


def git_sha(cwd: "str | Path | None" = None) -> "str | None":
    """The current commit SHA, or ``None`` outside a git checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=None if cwd is None else str(cwd),
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    sha = completed.stdout.strip()
    return sha or None


def provenance_stamp(*, cwd: "str | Path | None" = None) -> dict[str, Any]:
    """A JSON-able provenance block: git SHA, UTC timestamp, host info.

    Args:
        cwd: directory whose git checkout to stamp (defaults to the
            process working directory).
    """
    return {
        "git_sha": git_sha(cwd),
        "created_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "node": platform.node(),
            "machine": platform.machine(),
        },
    }
