"""Journal post-processing: the ``dygroups trace summarize`` table.

Aggregates a journal's ``span`` records (or, for journals written
without ``--trace``, the phases derivable from ``round_start``/
``round_end`` pairs and ``propose`` durations) into a per-phase timing
table: count, total seconds, mean/max milliseconds, and share of the
journal's wall-clock span.
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, Any, Mapping, Sequence

from repro.obs.journal import read_journal
from repro.obs.trace import SpanRecord

__all__ = ["phase_table", "span_table", "summarize_journal"]


def _aggregate(durations: Mapping[str, list[float]], wall: float) -> str:
    """Render ``phase -> durations`` as an aligned per-phase timing table."""
    header = ["phase", "count", "total (s)", "mean (ms)", "max (ms)", "% wall"]
    rows = [header]
    for name in sorted(durations, key=lambda n: -sum(durations[n])):
        values = durations[name]
        total = sum(values)
        share = 100.0 * total / wall if wall > 0 else 0.0
        rows.append(
            [
                name,
                str(len(values)),
                f"{total:.6f}",
                f"{1000.0 * total / len(values):.3f}",
                f"{1000.0 * max(values):.3f}",
                f"{share:.1f}",
            ]
        )
    widths = [max(len(row[c]) for row in rows) for c in range(len(header))]
    lines = []
    for r, row in enumerate(rows):
        cells = [row[0].ljust(widths[0])] + [
            cell.rjust(widths[c]) for c, cell in enumerate(row) if c > 0
        ]
        lines.append("  ".join(cells))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def phase_table(events: Sequence[Mapping[str, Any]]) -> str:
    """Per-phase timing table for a sequence of journal records.

    Prefers ``span`` records; when the journal has none (run without
    ``--trace``), falls back to round durations paired from
    ``round_start``/``round_end`` and the ``dur`` field of ``propose``
    events.

    Raises:
        ValueError: when the journal holds no timeable records at all.
    """
    durations: dict[str, list[float]] = {}
    for record in events:
        if record.get("event") == "span" and "dur" in record:
            durations.setdefault(str(record.get("name", "?")), []).append(float(record["dur"]))
    if not durations:
        starts: dict[tuple[Any, Any], float] = {}
        for record in events:
            event = record.get("event")
            key = (record.get("run"), record.get("round"))
            if event == "round_start":
                starts[key] = float(record["ts"])
            elif event == "round_end" and key in starts:
                durations.setdefault("core.round", []).append(
                    float(record["ts"]) - starts.pop(key)
                )
            elif event == "propose" and "dur" in record:
                name = f"policy.propose:{record.get('policy', '?')}"
                durations.setdefault(name, []).append(float(record["dur"]))
    if not durations:
        raise ValueError(
            "journal holds no span or round records — it covers no simulation "
            "(re-run the workload with --journal, ideally plus --trace)"
        )
    timestamps = [float(r["ts"]) for r in events if "ts" in r]
    wall = (max(timestamps) - min(timestamps)) if timestamps else 0.0
    return _aggregate(durations, wall)


def span_table(spans: Sequence[SpanRecord]) -> str:
    """Per-phase table for in-memory spans (the ``--trace``-only path).

    Raises:
        ValueError: when ``spans`` is empty.
    """
    if not spans:
        raise ValueError("no spans recorded")
    durations: dict[str, list[float]] = {}
    for record in spans:
        durations.setdefault(record.name, []).append(record.duration)
    wall = max(s.start + s.duration for s in spans) - min(s.start for s in spans)
    return _aggregate(durations, wall)


def summarize_journal(source: "str | Path | IO[str]") -> str:
    """Full ``trace summarize`` report: header, event counts, phase table.

    Raises:
        FileNotFoundError: when ``source`` is a missing path.
        ValueError: for malformed journals or journals with nothing to time.
    """
    events = read_journal(source)
    if not events:
        raise ValueError("journal is empty")
    runs = sorted({str(r.get("run")) for r in events if r.get("run") is not None})
    timestamps = [float(r["ts"]) for r in events if "ts" in r]
    wall = (max(timestamps) - min(timestamps)) if timestamps else 0.0
    counts: dict[str, int] = {}
    for record in events:
        event = str(record.get("event", "?"))
        counts[event] = counts.get(event, 0) + 1
    name = str(source) if not hasattr(source, "read") else "<stream>"
    lines = [
        f"journal: {name}",
        f"records: {len(events)}   runs: {len(runs)}   wall: {wall:.6f}s",
        "events:  " + ", ".join(f"{event}={counts[event]}" for event in sorted(counts)),
        "",
        phase_table(events),
    ]
    return "\n".join(lines)
