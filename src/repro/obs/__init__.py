"""repro.obs — structured observability for the simulation stack.

Three independent layers behind one switchboard:

* **journal** (:mod:`repro.obs.journal`) — newline-delimited JSON event
  records (run/round lifecycle, proposals, gains, spans) with monotonic
  timestamps and a run id;
* **trace** (:mod:`repro.obs.trace`) — nestable context-manager spans
  with a module-level no-op fast path when disabled;
* **metrics** (:mod:`repro.obs.metrics`) — counters/timers/histograms
  with a JSON-able ``snapshot()``.

:mod:`repro.obs.runtime` wires them together (``configure`` /
``shutdown`` / ``observed``), :mod:`repro.obs.logconfig` sets up the
stdlib ``repro.*`` loggers, and :mod:`repro.obs.summarize` renders the
per-phase timing tables behind ``dygroups trace summarize``.

Everything is off by default: with no configuration, the instrumented
hot paths cost one module-level read and ``simulate()`` output is
bit-identical to the uninstrumented engine.  See docs/observability.md.
"""

from repro.obs.journal import (
    EVENTS,
    SCHEMA_VERSION,
    Journal,
    iter_journal,
    new_run_id,
    read_journal,
)
from repro.obs.logconfig import get_logger, setup_logging
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    render_prometheus,
)
from repro.obs.provenance import provenance_stamp
from repro.obs.runtime import (
    ObsState,
    configure,
    enable_metrics,
    enabled,
    metrics_registry,
    observed,
    shutdown,
    state,
)
from repro.obs.summarize import phase_table, span_table, summarize_journal
from repro.obs.trace import NOOP_SPAN, SpanRecord, Tracer, span

__all__ = [
    "EVENTS",
    "SCHEMA_VERSION",
    "Journal",
    "iter_journal",
    "new_run_id",
    "read_journal",
    "get_logger",
    "setup_logging",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "render_prometheus",
    "provenance_stamp",
    "ObsState",
    "configure",
    "enable_metrics",
    "enabled",
    "metrics_registry",
    "observed",
    "shutdown",
    "state",
    "phase_table",
    "span_table",
    "summarize_journal",
    "NOOP_SPAN",
    "SpanRecord",
    "Tracer",
    "span",
]
