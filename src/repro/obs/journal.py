"""Structured run journal: newline-delimited JSON event records.

An observability-enabled run appends one JSON object per event to a
*journal* — an append-only ``.jsonl`` stream that survives the process
and can be charted, diffed, or summarized (``dygroups trace summarize``).

Record schema (:data:`SCHEMA_VERSION` 1) — every record carries

* ``ts``    — seconds since the journal was opened (monotonic clock);
* ``seq``   — per-journal monotonically increasing integer;
* ``run``   — the run id the journal was opened with;
* ``event`` — one of :data:`EVENTS`;

plus event-specific fields (round index, gain value, span duration, …).
The first record is always ``journal_open`` (carrying ``schema``, the
wall-clock ``utc`` timestamp, and the ``pid``) and the last, when the
journal is closed cleanly, is ``journal_close`` — so trajectories can be
aligned across machines and truncated journals detected.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import IO, Any, Iterator

__all__ = [
    "EVENTS",
    "SCHEMA_VERSION",
    "Journal",
    "new_run_id",
    "iter_journal",
    "read_journal",
]

#: Journal record schema version (bump on incompatible field changes).
SCHEMA_VERSION = 1

#: Every event kind the instrumented stack emits.
EVENTS: tuple[str, ...] = (
    "journal_open",
    "journal_close",
    "run_start",
    "run_end",
    "round_start",
    "round_end",
    "propose",
    "gain",
    "skill_update",
    "shard_plan",
    "spec_start",
    "spec_end",
    "sweep_point",
    "parallel_start",
    "parallel_chunk",
    "parallel_end",
    "pool_start",
    "pool_stop",
    "span",
    "lint",
    "serve_start",
    "serve_stop",
    "http_request",
    "cohort_create",
    "cohort_round",
    "cohort_delete",
    "cohort_evict",
    "participant_join",
    "participant_leave",
    "participant_expire",
    "cohort_condense",
    "sanitizer.order_inversion",
    "sanitizer.blocking_call",
)

_RUN_COUNTER = itertools.count(1)


def new_run_id() -> str:
    """A process-unique run id (wall time + pid + counter; no RNG drawn)."""
    return f"{int(time.time()):x}-{os.getpid():x}-{next(_RUN_COUNTER):x}"


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars so journal emission never raises on them."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"journal field of type {type(value).__name__} is not JSON-serializable")


class Journal:
    """Append-only NDJSON event sink.

    Accepts either a path (opened in append mode, closed by
    :meth:`close`) or any object with a ``write`` method (left open —
    the caller owns it).  Usable as a context manager.
    """

    def __init__(self, sink: "str | Path | IO[str]", *, run_id: str | None = None) -> None:
        self.run_id = run_id if run_id is not None else new_run_id()
        self._seq = 0
        self._t0 = time.perf_counter()
        self._closed = False
        # Serve emits from many HTTP worker threads into one journal; the
        # lock keeps seq assignment and the stream write atomic per
        # record.  A *plain* stdlib RLock, deliberately outside the
        # sanitizer's view: the sanitizer itself reports through the
        # journal, and close() re-enters emit().
        self._lock = threading.RLock()
        if hasattr(sink, "write"):
            self.path: Path | None = None
            self._stream: IO[str] = sink  # type: ignore[assignment]
            self._owns_stream = False
        else:
            self.path = Path(sink)  # type: ignore[arg-type]
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = self.path.open("a", encoding="utf-8")
            self._owns_stream = True
        self.emit(
            "journal_open",
            schema=SCHEMA_VERSION,
            utc=datetime.now(timezone.utc).isoformat(timespec="seconds"),
            pid=os.getpid(),
        )

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def emit(self, event: str, **fields: Any) -> dict[str, Any]:
        """Append one event record; returns the record that was written.

        Raises:
            ValueError: if the journal is already closed, or a field
                shadows one of the reserved record keys
                (``ts``/``seq``/``run``/``event``).
        """
        reserved = fields.keys() & {"ts", "seq", "run", "event"}
        if reserved:
            raise ValueError(f"journal fields shadow reserved keys: {sorted(reserved)}")
        with self._lock:
            if self._closed:
                raise ValueError("cannot emit to a closed journal")
            record: dict[str, Any] = {
                "ts": round(time.perf_counter() - self._t0, 9),
                "seq": self._seq,
                "run": self.run_id,
                "event": event,
            }
            record.update(fields)
            self._seq += 1
            self._stream.write(json.dumps(record, separators=(",", ":"), default=_jsonable) + "\n")
            return record

    def flush(self) -> None:
        """Flush the underlying stream (no-op after :meth:`close`)."""
        with self._lock:
            if not self._closed:
                self._stream.flush()

    def close(self) -> None:
        """Emit ``journal_close`` and release the stream (idempotent)."""
        with self._lock:  # RLock: close() re-enters emit() under it
            if self._closed:
                return
            self.emit("journal_close", records=self._seq + 1)
            self._stream.flush()
            if self._owns_stream:
                self._stream.close()
            self._closed = True

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        target = str(self.path) if self.path is not None else "<stream>"
        return f"Journal(run_id={self.run_id!r}, sink={target!r}, records={self._seq})"


def iter_journal(source: "str | Path | IO[str]") -> Iterator[dict[str, Any]]:
    """Yield journal records from a ``.jsonl`` path or open text stream.

    Blank lines are skipped.

    Raises:
        ValueError: on a malformed line (with its 1-based line number) or
            a record that is not a JSON object.
    """
    if hasattr(source, "read"):
        lines: Iterator[str] = iter(source)  # type: ignore[arg-type]
    else:
        lines = iter(Path(source).read_text(encoding="utf-8").splitlines())  # type: ignore[arg-type]
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"journal line {number} is not valid JSON: {error}") from error
        if not isinstance(record, dict):
            raise ValueError(f"journal line {number} is not a JSON object")
        yield record


def read_journal(source: "str | Path | IO[str]") -> list[dict[str, Any]]:
    """Read a whole journal into a list of records (see :func:`iter_journal`)."""
    return list(iter_journal(source))
