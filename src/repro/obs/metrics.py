"""Process-local metrics: counters, timers, histograms, snapshot export.

The registry is deliberately tiny — three instrument kinds, get-or-create
by name, and a :meth:`MetricsRegistry.snapshot` that returns plain
JSON-able dicts (the payload behind the ``BENCH_<name>.json`` artifacts).
Timers retain their raw observations so per-round timing *series* survive
into the snapshot, not just aggregates.
"""

from __future__ import annotations

import math
import time
from collections import deque
from typing import Any, Iterator

__all__ = ["Counter", "Histogram", "MetricsRegistry", "Timer"]


class Counter:
    """A monotonically increasing (float-capable) counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: "int | float" = 1) -> "int | float":
        """Add ``amount`` (default 1); returns the new value."""
        self.value += amount
        return self.value

    def snapshot(self) -> dict[str, Any]:
        """JSON-able state of the counter."""
        return {"type": "counter", "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Histogram:
    """A series of observations with retained raw values and summary stats.

    By default every raw observation is retained (so per-round timing
    *series* survive into bench snapshots).  Long-running consumers — the
    serving layer records one observation per request — pass ``keep=N``
    to bound retention to the ``N`` most recent values; ``count``,
    ``total``, ``min`` and ``max`` then keep tracking the full stream
    while percentiles describe the retained window.
    """

    __slots__ = ("name", "values", "keep", "_count", "_total", "_min", "_max")

    _kind = "histogram"

    def __init__(self, name: str = "", *, keep: int | None = None) -> None:
        if keep is not None and keep <= 0:
            raise ValueError(f"keep must be a positive int or None, got {keep!r}")
        self.name = name
        self.keep = keep
        self.values: "list[float] | deque[float]" = [] if keep is None else deque(maxlen=keep)
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.values.append(value)
        self._count += 1
        self._total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        # The unbounded path recomputes with fsum so snapshots stay exact;
        # the bounded path has dropped values and uses the running sum.
        return math.fsum(self.values) if self.keep is None else self._total

    @property
    def mean(self) -> float:
        """Mean observation over the full stream (0.0 when empty)."""
        return self.total / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (``p`` in [0, 100]; 0.0 when empty).

        Raises:
            ValueError: when ``p`` is outside [0, 100].
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def snapshot(self) -> dict[str, Any]:
        """JSON-able summary plus the (retained) raw observation series."""
        payload = {
            "type": self._kind,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "values": [round(v, 9) for v in self.values],
        }
        if self.keep is not None:
            payload["retained"] = len(self.values)
        return payload

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, count={self.count}, mean={self.mean:.6g})"


class Timer(Histogram):
    """A histogram of durations (seconds) with a context-manager clock."""

    __slots__ = ()

    _kind = "timer"

    def time(self) -> "_Timing":
        """Context manager measuring its body on the monotonic clock."""
        return _Timing(self)


class _Timing:
    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_Timing":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._timer.observe(time.perf_counter() - self._start)
        return False


class MetricsRegistry:
    """Named counters/timers/histograms with get-or-create access.

    Asking for the same name twice returns the same instrument; asking
    for a name already registered as a different kind raises.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, "Counter | Histogram"] = {}

    def _get(self, name: str, kind: type, **kwargs: Any) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name, **kwargs)
            self._instruments[name] = instrument
        elif type(instrument) is not kind:
            raise ValueError(
                f"metric {name!r} is a {type(instrument).__name__}, not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        return self._get(name, Counter)

    def timer(self, name: str, *, keep: int | None = None) -> Timer:
        """Get or create the named timer (``keep`` bounds raw retention)."""
        return self._get(name, Timer, keep=keep)

    def histogram(self, name: str, *, keep: int | None = None) -> Histogram:
        """Get or create the named histogram (``keep`` bounds raw retention)."""
        return self._get(name, Histogram, keep=keep)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Export every instrument, grouped by kind and sorted by name."""
        groups: dict[str, dict[str, Any]] = {"counters": {}, "timers": {}, "histograms": {}}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                groups["counters"][name] = instrument.snapshot()
            elif isinstance(instrument, Timer):
                groups["timers"][name] = instrument.snapshot()
            else:
                groups["histograms"][name] = instrument.snapshot()
        return groups

    def reset(self) -> None:
        """Drop every instrument."""
        self._instruments.clear()

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[str]:
        return iter(self._instruments)

    def __repr__(self) -> str:
        return f"MetricsRegistry(instruments={len(self._instruments)})"
