"""Process-local metrics: counters, gauges, timers, histograms, export.

The registry is deliberately tiny — four instrument kinds, get-or-create
by name, and a :meth:`MetricsRegistry.snapshot` that returns plain
JSON-able dicts (the payload behind the ``BENCH_<name>.json`` artifacts).
Timers retain their raw observations so per-round timing *series* survive
into the snapshot, not just aggregates.

Snapshots also render to the Prometheus text exposition format via
:func:`render_prometheus` (served by ``GET /metrics?format=prometheus``):
counters and gauges map to their native types, timers and histograms to
summaries with p50/p95/p99 quantile samples.
"""

from __future__ import annotations

import math
import re
import threading
import time
from collections import deque
from typing import Any, Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "render_prometheus",
]


class Counter:
    """A monotonically increasing (float-capable) counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: "int | float" = 1) -> "int | float":
        """Add ``amount`` (default 1); returns the new value."""
        self.value += amount
        return self.value

    def snapshot(self) -> dict[str, Any]:
        """JSON-able state of the counter."""
        return {"type": "counter", "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A value that can go up and down (queue depth, in-flight waves).

    Unlike a :class:`Counter` a gauge is *instantaneous* state, not an
    accumulation: ``set`` overwrites, ``inc``/``dec`` adjust, and the
    snapshot additionally reports the high-water mark seen since
    creation (``max``) so a drained queue still shows how deep it got.
    """

    __slots__ = ("name", "value", "_max")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value: float = 0
        self._max: float = 0

    def set(self, value: "int | float") -> "int | float":
        """Overwrite the gauge; returns the new value."""
        self.value = value
        if value > self._max:
            self._max = value
        return self.value

    def inc(self, amount: "int | float" = 1) -> "int | float":
        """Add ``amount`` (default 1); returns the new value."""
        return self.set(self.value + amount)

    def dec(self, amount: "int | float" = 1) -> "int | float":
        """Subtract ``amount`` (default 1); returns the new value."""
        self.value -= amount
        return self.value

    @property
    def max(self) -> "int | float":
        """High-water mark since creation."""
        return self._max

    def snapshot(self) -> dict[str, Any]:
        """JSON-able state of the gauge."""
        return {"type": "gauge", "value": self.value, "max": self._max}

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value}, max={self._max})"


class Histogram:
    """A series of observations with retained raw values and summary stats.

    By default every raw observation is retained (so per-round timing
    *series* survive into bench snapshots).  Long-running consumers — the
    serving layer records one observation per request — pass ``keep=N``
    to bound retention to the ``N`` most recent values; ``count``,
    ``total``, ``min`` and ``max`` then keep tracking the full stream
    while percentiles describe the retained window.
    """

    __slots__ = ("name", "values", "keep", "_count", "_total", "_min", "_max")

    _kind = "histogram"

    def __init__(self, name: str = "", *, keep: int | None = None) -> None:
        if keep is not None and keep <= 0:
            raise ValueError(f"keep must be a positive int or None, got {keep!r}")
        self.name = name
        self.keep = keep
        self.values: "list[float] | deque[float]" = [] if keep is None else deque(maxlen=keep)
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.values.append(value)
        self._count += 1
        self._total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        # The unbounded path recomputes with fsum so snapshots stay exact;
        # the bounded path has dropped values and uses the running sum.
        return math.fsum(self.values) if self.keep is None else self._total

    @property
    def mean(self) -> float:
        """Mean observation over the full stream (0.0 when empty)."""
        return self.total / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (``p`` in [0, 100]; 0.0 when empty).

        Raises:
            ValueError: when ``p`` is outside [0, 100].
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def snapshot(self) -> dict[str, Any]:
        """JSON-able summary plus the (retained) raw observation series."""
        payload = {
            "type": self._kind,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "values": [round(v, 9) for v in self.values],
        }
        if self.keep is not None:
            payload["retained"] = len(self.values)
        return payload

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, count={self.count}, mean={self.mean:.6g})"


class Timer(Histogram):
    """A histogram of durations (seconds) with a context-manager clock."""

    __slots__ = ()

    _kind = "timer"

    def time(self) -> "_Timing":
        """Context manager measuring its body on the monotonic clock."""
        return _Timing(self)


class _Timing:
    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_Timing":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._timer.observe(time.perf_counter() - self._start)
        return False


class MetricsRegistry:
    """Named counters/timers/histograms with get-or-create access.

    Asking for the same name twice returns the same instrument; asking
    for a name already registered as a different kind raises.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, "Counter | Gauge | Histogram"] = {}
        # Get-or-create races when serve threads first touch a name
        # concurrently; the lock makes registration atomic.  A *plain*
        # stdlib lock, outside the sanitizer's view — the sanitizer
        # increments sanitizer.* counters through this registry.
        self._lock = threading.Lock()

    def _get(self, name: str, kind: type, **kwargs: Any) -> Any:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = kind(name, **kwargs)
                self._instruments[name] = instrument
            elif type(instrument) is not kind:
                raise ValueError(
                    f"metric {name!r} is a {type(instrument).__name__}, not a {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the named gauge."""
        return self._get(name, Gauge)

    def timer(self, name: str, *, keep: int | None = None) -> Timer:
        """Get or create the named timer (``keep`` bounds raw retention)."""
        return self._get(name, Timer, keep=keep)

    def histogram(self, name: str, *, keep: int | None = None) -> Histogram:
        """Get or create the named histogram (``keep`` bounds raw retention)."""
        return self._get(name, Histogram, keep=keep)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Export every instrument, grouped by kind and sorted by name."""
        groups: dict[str, dict[str, Any]] = {
            "counters": {},
            "gauges": {},
            "timers": {},
            "histograms": {},
        }
        with self._lock:
            instruments = dict(self._instruments)
        for name in sorted(instruments):
            instrument = instruments[name]
            if isinstance(instrument, Counter):
                groups["counters"][name] = instrument.snapshot()
            elif isinstance(instrument, Gauge):
                groups["gauges"][name] = instrument.snapshot()
            elif isinstance(instrument, Timer):
                groups["timers"][name] = instrument.snapshot()
            else:
                groups["histograms"][name] = instrument.snapshot()
        return groups

    def reset(self) -> None:
        """Drop every instrument."""
        with self._lock:
            self._instruments.clear()

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[str]:
        return iter(self._instruments)

    def __repr__(self) -> str:
        return f"MetricsRegistry(instruments={len(self._instruments)})"


_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, *, namespace: str) -> str:
    """A metric name valid under the Prometheus data model."""
    sanitized = _PROM_INVALID.sub("_", name)
    if namespace:
        sanitized = f"{namespace}_{sanitized}"
    if sanitized and sanitized[0].isdigit():
        sanitized = f"_{sanitized}"
    return sanitized


def _prom_number(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def render_prometheus(
    snapshot: Mapping[str, Mapping[str, Any]], *, namespace: str = "repro"
) -> str:
    """Render a registry snapshot in the Prometheus text exposition format.

    Counters and gauges map to their native Prometheus types; timers and
    histograms are exposed as summaries — ``{quantile="0.5|0.95|0.99"}``
    samples over the retained window plus ``_sum``/``_count`` over the
    full stream.  Dots in instrument names become underscores and every
    name is prefixed with ``namespace`` (default ``repro``).
    """
    lines: list[str] = []

    def emit(kind: str, name: str, payload: Mapping[str, Any]) -> None:
        metric = _prom_name(name, namespace=namespace)
        if kind == "counter":
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_prom_number(payload['value'])}")
            return
        if kind == "gauge":
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_prom_number(payload['value'])}")
            lines.append(f"# TYPE {metric}_max gauge")
            lines.append(f"{metric}_max {_prom_number(payload['max'])}")
            return
        lines.append(f"# TYPE {metric} summary")
        for quantile, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            lines.append(
                f'{metric}{{quantile="{quantile}"}} {_prom_number(payload.get(key, 0.0))}'
            )
        lines.append(f"{metric}_sum {_prom_number(payload.get('total', 0.0))}")
        lines.append(f"{metric}_count {_prom_number(payload.get('count', 0))}")

    for name, payload in snapshot.get("counters", {}).items():
        emit("counter", name, payload)
    for name, payload in snapshot.get("gauges", {}).items():
        emit("gauge", name, payload)
    for name, payload in snapshot.get("timers", {}).items():
        emit("summary", name, payload)
    for name, payload in snapshot.get("histograms", {}).items():
        emit("summary", name, payload)
    return "\n".join(lines) + "\n"
