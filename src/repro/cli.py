"""Command-line interface: ``dygroups`` / ``python -m repro``.

Subcommands:

* ``toy`` — the paper's Section II/III toy example, round by round;
* ``run`` — compare algorithms under one configuration;
* ``sweep`` — vary one parameter over a grid;
* ``figure`` — regenerate any figure of the paper (``--full`` for the
  paper-sized grids);
* ``amt`` — the simulated human-subject experiments;
* ``theorems`` — the numeric theorem-verification battery;
* ``lint`` — the domain-aware static-analysis rules (``DYG1xx``
  determinism, ``DYG2xx`` contracts, ``DYG3xx`` hygiene) over python
  sources; exits non-zero on findings (see docs/static-analysis.md);
* ``trace`` — observability tooling (``trace summarize <journal.jsonl>``
  prints a per-phase timing table from a journal);
* ``serve`` — the grouping service: a long-running HTTP JSON API over
  the session store, grouping memo, and micro-batching scheduler of
  :mod:`repro.serve` (see docs/serving.md); ``--slo TARGET=LIMIT``
  surfaces live SLO verdicts on ``GET /metrics``; ``--matchmaking``
  (with optional repeatable ``--matchmaking-spec k=v,...``) enables the
  streaming admission layer (see docs/matchmaking.md);
* ``join`` — join a running server's matchmaking queue as one
  participant and poll until matched/expired (exit 0 only on a match);
* ``scenario`` — declared workloads (``run`` / ``compare`` / ``list``):
  seeded open-loop load generation, SLO verdicts, and cross-paradigm
  bit-identity checks over the scenario catalog (see SCENARIOS.md);
* ``list`` — available figures, algorithms, distributions, journal
  events, and lint rules.

Exit codes are consistent across subcommands: ``0`` success, ``1``
operational failure (failed claims, lint findings, a port that cannot be
bound), ``2`` usage error (invalid arguments or inputs) — never a bare
traceback for a predictable failure.

Every workload subcommand also accepts the observability flags
``--log-level LEVEL`` (stdlib logging on the ``repro.*`` hierarchy),
``--journal PATH`` (append an NDJSON event journal) and ``--trace``
(record timing spans; printed as a per-phase table when no journal is
given), plus ``--contracts`` to enable the runtime invariant checks of
:mod:`repro.analysis.contracts`.  See docs/observability.md and
docs/static-analysis.md.

The spec-driven subcommands (``run``, ``sweep``, ``grid``) additionally
accept the performance knobs ``--engine {auto,scalar,vectorized,sharded}``
(stacked-trial vectorized simulation; ``sharded`` adds per-shard partial
sorts with bounded memory), ``--shards N`` (shard count;
``REPRO_SHARDS`` sets the default), ``--workers N`` (process
parallelism; ``REPRO_WORKERS`` sets the default), and ``--pool
{keep,per-call}`` (warm-worker-pool policy; ``REPRO_POOL`` sets the
default) — all bit-identical to the scalar serial path; see
docs/performance.md.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def _obs_parent() -> argparse.ArgumentParser:
    """Shared observability flags, attached to every workload subcommand."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    group.add_argument(
        "--log-level",
        metavar="LEVEL",
        default=None,
        choices=("debug", "info", "warning", "error"),
        help="enable stdlib logging on the repro.* loggers",
    )
    group.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="append an NDJSON event journal (.jsonl) of the run",
    )
    group.add_argument(
        "--trace",
        action="store_true",
        help="record timing spans (per-phase table on exit when no --journal)",
    )
    correctness = parent.add_argument_group("correctness")
    correctness.add_argument(
        "--contracts",
        action="store_true",
        help="enable runtime invariant contracts (also via REPRO_CONTRACTS=1); "
        "results are bit-identical either way",
    )
    correctness.add_argument(
        "--sanitize",
        action="store_true",
        help="enable the runtime lock sanitizer (also via REPRO_SANITIZE=1); "
        "reports lock-order inversions and held-lock blocking calls as "
        "sanitizer.* journal events; results are bit-identical either way",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="dygroups",
        description="DyGroups: targeted dynamic groups formation for peer learning (ICDE 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    obs = [_obs_parent()]

    sub.add_parser("toy", help="run the paper's 9-student toy example", parents=obs)

    run = sub.add_parser(
        "run", help="compare algorithms under one configuration", parents=obs
    )
    _add_spec_arguments(run)
    run.add_argument(
        "--save", metavar="PATH", default=None, help="also write the outcome as JSON"
    )

    solo = sub.add_parser(
        "simulate", help="run one policy on skills loaded from a file", parents=obs
    )
    solo.add_argument("--skills-file", required=True, help=".json/.csv/.txt skill vector")
    solo.add_argument("--policy", default="dygroups")
    solo.add_argument("--k", type=int, required=True)
    solo.add_argument("--alpha", type=int, default=5)
    solo.add_argument("--rate", type=float, default=0.5)
    solo.add_argument("--mode", choices=("star", "clique"), default="star")
    solo.add_argument("--seed", type=int, default=0)
    solo.add_argument(
        "--save", metavar="PATH", default=None, help="write the full trajectory as JSON"
    )

    swp = sub.add_parser("sweep", help="vary one parameter over a grid", parents=obs)
    _add_spec_arguments(swp)
    swp.add_argument("--parameter", required=True, choices=("n", "k", "alpha", "rate"))
    swp.add_argument(
        "--values", required=True, help="comma-separated grid, e.g. 100,1000,10000"
    )

    grd = sub.add_parser(
        "grid", help="cross two or more parameters (sensitivity analysis)", parents=obs
    )
    _add_spec_arguments(grd)
    grd.add_argument(
        "--vary",
        required=True,
        action="append",
        metavar="PARAM=V1,V2,...",
        help="a grid dimension, e.g. --vary k=5,50 --vary rate=0.2,0.8",
    )
    grd.add_argument("--reference", default="random", help="denominator algorithm for ratios")

    fig = sub.add_parser("figure", help="regenerate a figure from the paper", parents=obs)
    fig.add_argument("name", help="figure id, e.g. fig05a (see `dygroups list`)")
    fig.add_argument("--full", action="store_true", help="use the paper-sized grids")
    fig.add_argument("--runs", type=int, default=None, help="override the number of runs")

    amt = sub.add_parser(
        "amt", help="run a simulated human-subject experiment", parents=obs
    )
    amt.add_argument("experiment", type=int, choices=(1, 2), help="experiment number")
    amt.add_argument("--seed", type=int, default=0)

    theorems = sub.add_parser(
        "theorems", help="run the theorem-verification battery", parents=obs
    )
    theorems.add_argument("--seed", type=int, default=0)
    theorems.add_argument("--trials", type=int, default=50, help="Theorem 5 trial count")

    repr_cmd = sub.add_parser(
        "reproduce",
        help="regenerate the synthetic figures and grade the paper's claims",
        parents=obs,
    )
    repr_cmd.add_argument("--full", action="store_true", help="paper-sized grids (hours)")
    repr_cmd.add_argument("--runs", type=int, default=None)

    report = sub.add_parser("report", help="print all archived benchmark results")
    report.add_argument(
        "--results-dir", default=None, help="override the benchmarks/results directory"
    )

    lint = sub.add_parser(
        "lint",
        help="run the DYG static-analysis rules over python sources",
        parents=obs,
    )
    lint.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: ./src if present, else .)",
    )
    lint.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes/prefixes to enable, e.g. DYG1,DYG302",
    )
    lint.add_argument(
        "--ignore",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes/prefixes to disable",
    )
    lint.add_argument(
        "--json", action="store_true", help="emit the report as a JSON document"
    )
    lint.add_argument(
        "--rules", action="store_true", help="print the rule catalog and exit"
    )
    lint.add_argument(
        "--statistics",
        action="store_true",
        help="append per-rule finding counts to the report",
    )

    trace_cmd = sub.add_parser("trace", help="observability tooling over run journals")
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    trace_sum = trace_sub.add_parser(
        "summarize", help="print a per-phase timing table from a journal"
    )
    trace_sum.add_argument("journal_file", help="an NDJSON journal written with --journal")

    sanitize_cmd = sub.add_parser(
        "sanitize", help="runtime lock-sanitizer tooling over run journals"
    )
    sanitize_sub = sanitize_cmd.add_subparsers(dest="sanitize_command", required=True)
    sanitize_report = sanitize_sub.add_parser(
        "report", help="summarize sanitizer.* events from a journal"
    )
    sanitize_report.add_argument(
        "journal_file",
        help="an NDJSON journal written with --journal under --sanitize/REPRO_SANITIZE=1",
    )

    serve = sub.add_parser(
        "serve", help="run the grouping service (HTTP JSON API)", parents=obs
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default %(default)s)")
    serve.add_argument(
        "--port", type=int, default=8750, help="TCP port; 0 picks an ephemeral port"
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="scheduler worker threads; 0 computes proposals inline",
    )
    serve.add_argument(
        "--cache-size", type=int, default=1024,
        help="grouping-memo entries; 0 disables the cache",
    )
    serve.add_argument(
        "--session-ttl", type=float, default=1800.0,
        help="seconds of inactivity before a cohort is evicted",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=256,
        help="bounded propose-queue depth (requests beyond it get 429)",
    )
    serve.add_argument(
        "--batch-min", type=int, default=4,
        help="smallest same-shape backlog worth stacking into one wave "
        "when adaptive batching is on; smaller backlogs fall through "
        "to the inline kernel (int >= 2)",
    )
    serve.add_argument(
        "--no-adaptive-batch",
        action="store_true",
        help="always enqueue round steps for worker batching, even with "
        "no same-configuration backlog to stack them with (the default "
        "adaptive mode falls through to the inline kernel in that case; "
        "both paths are bit-identical)",
    )
    serve.add_argument(
        "--slo",
        action="append",
        metavar="TARGET=LIMIT",
        default=None,
        help="an SLO target evaluated live on GET /metrics, e.g. "
        "--slo latency_p95_ms=250 --slo max_error_rate=0.01 (repeatable)",
    )
    serve.add_argument(
        "--matchmaking",
        action="store_true",
        help="enable the streaming admission layer (POST /v1/join; "
        "see docs/matchmaking.md)",
    )
    serve.add_argument(
        "--matchmaking-spec",
        action="append",
        metavar="KEY=VAL,...",
        default=None,
        help="a GroupSpec as comma-separated fields, e.g. "
        "--matchmaking-spec name=novice,n=20,k=4,deadline_seconds=15 "
        "(repeatable; implies --matchmaking)",
    )

    join = sub.add_parser(
        "join", help="join a running server's matchmaking queue", parents=obs
    )
    join.add_argument(
        "--url",
        default="http://127.0.0.1:8750",
        help="server base URL (default %(default)s)",
    )
    join.add_argument(
        "--skill", type=float, required=True, help="this participant's skill level"
    )
    join.add_argument(
        "--participant", default=None, help="participant id (default: server-assigned)"
    )
    join.add_argument("--spec", default=None, help="group-spec tag to queue under")
    join.add_argument(
        "--timeout", type=float, default=60.0,
        help="seconds to wait for a match before giving up (default %(default)s)",
    )
    join.add_argument(
        "--poll", type=float, default=0.25,
        help="status-poll interval in seconds (default %(default)s)",
    )
    join.add_argument(
        "--no-wait",
        action="store_true",
        help="enqueue and exit immediately without polling for a match",
    )

    scenario = sub.add_parser(
        "scenario", help="declared workloads: load generation, SLOs, paradigm comparison"
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)
    scen_run = scenario_sub.add_parser(
        "run", help="run a scenario through one execution paradigm", parents=obs
    )
    scen_run.add_argument("scenario", help="catalog name or JSON spec file (see SCENARIOS.md)")
    scen_run.add_argument(
        "--paradigm",
        choices=("inprocess", "http", "cli"),
        default="inprocess",
        help="execution paradigm (default %(default)s)",
    )
    scen_run.add_argument(
        "--artifact-dir",
        metavar="DIR",
        default=None,
        help="also write BENCH_scenario_<name>.json under DIR",
    )
    scen_compare = scenario_sub.add_parser(
        "compare",
        help="run a scenario through several paradigms and assert identical groupings",
        parents=obs,
    )
    scen_compare.add_argument("scenario", help="catalog name or JSON spec file")
    scen_compare.add_argument(
        "--paradigms",
        metavar="P1,P2,...",
        default="inprocess,http,cli",
        help="comma-separated paradigms to compare (default %(default)s)",
    )
    scen_compare.add_argument(
        "--artifact-dir",
        metavar="DIR",
        default=None,
        help="also write BENCH_scenario_<name>.json under DIR",
    )
    scenario_sub.add_parser("list", help="list the built-in scenario catalog")

    sub.add_parser(
        "list", help="list figures, algorithms, distributions, and journal events"
    )
    return parser


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, default=2_000)
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--alpha", type=int, default=5)
    parser.add_argument("--rate", type=float, default=0.5)
    parser.add_argument("--mode", choices=("star", "clique"), default="star")
    parser.add_argument("--distribution", default="lognormal")
    parser.add_argument(
        "--algorithms",
        "--algorithm",
        dest="algorithms",
        default="dygroups,random,percentile,lpa,kmeans",
        help="comma-separated registry policy specs — a name or "
        "'name:key=value;key=value' (see `dygroups list`)",
    )
    parser.add_argument("--runs", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    from repro.engine.select import ENGINES

    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="auto",
        help="simulation engine: auto stacks runs through the vectorized "
        "kernels when possible; results are bit-identical either way",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="shard count for the sharded engine (per-shard partial sorts, "
        "bounded memory); 0 defers to REPRO_SHARDS; a positive count makes "
        "--engine auto prefer the sharded path for shardable policies; "
        "results are bit-identical to the other engines",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="process-parallel worker count; 0 defers to REPRO_WORKERS "
        "(unset means serial); results are bit-identical to serial",
    )
    parser.add_argument(
        "--pool",
        choices=("keep", "per-call"),
        default=None,
        help="worker-pool policy: 'keep' (default) reuses one warm pool "
        "of forked workers across every parallel call in the process; "
        "'per-call' spawns and tears down a pool per invocation "
        "(defers to REPRO_POOL when unset)",
    )


def _spec_from_args(args: argparse.Namespace):
    from repro.experiments.spec import ExperimentSpec

    return ExperimentSpec(
        n=args.n,
        k=args.k,
        alpha=args.alpha,
        rate=args.rate,
        mode=args.mode,
        distribution=args.distribution,
        algorithms=tuple(a.strip() for a in args.algorithms.split(",") if a.strip()),
        runs=args.runs,
        seed=args.seed,
        engine=args.engine,
        workers=args.workers,
        shards=args.shards,
    )


def _command_toy() -> int:
    from repro.core import dygroups
    from repro.data import toy_example_skills

    skills = toy_example_skills()
    print("Toy example (Section II): 9 students, k=3 groups, r=0.5, alpha=3\n")
    for mode in ("star", "clique"):
        result = dygroups(skills, k=3, alpha=3, rate=0.5, mode=mode, record_history=True)
        print(f"DyGroups-{mode.capitalize()}:")
        assert result.skill_history is not None
        for t, grouping in enumerate(result.groupings, start=1):
            groups_text = ", ".join(
                "[" + ", ".join(f"{result.skill_history[t - 1][m]:.4g}" for m in g) + "]"
                for g in grouping
            )
            print(f"  round {t}: {groups_text}  (LG={result.round_gains[t - 1]:.6g})")
        print(f"  total learning gain: {result.total_gain:.6g}\n")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_spec
    from repro.experiments.tables import comparison_table

    outcome = run_spec(_spec_from_args(args))
    print(comparison_table(outcome))
    if args.save:
        from repro.io import save_json, spec_outcome_to_dict

        path = save_json(spec_outcome_to_dict(outcome), args.save)
        print(f"\nsaved outcome to {path}")
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    from repro.core.simulation import simulate
    from repro.io import load_skills
    from repro.registry import build_policy

    skills = load_skills(args.skills_file)
    policy = build_policy(args.policy, mode=args.mode, rate=args.rate)
    result = simulate(
        policy,
        skills,
        k=args.k,
        alpha=args.alpha,
        mode=args.mode,
        rate=args.rate,
        seed=args.seed,
        record_history=True,
    )
    print(result)
    print("round gains:", [round(float(g), 6) for g in result.round_gains])
    print(f"total gain:  {result.total_gain:.6g}")
    if args.save:
        from repro.io import save_json, simulation_result_to_dict

        path = save_json(simulation_result_to_dict(result), args.save)
        print(f"saved trajectory to {path}")
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.render import render_table
    from repro.experiments.sweep import sweep

    values = [float(v) for v in args.values.split(",") if v.strip()]
    series_set = sweep(
        _spec_from_args(args),
        args.parameter,
        values,
        title=f"Sweep over {args.parameter}",
    )
    print(render_table(series_set))
    return 0


def _command_grid(args: argparse.Namespace) -> int:
    from repro.experiments.grid import grid_table, run_grid

    parameters: dict[str, list] = {}
    for dimension in args.vary:
        if "=" not in dimension:
            print(f"bad --vary value {dimension!r}; expected PARAM=V1,V2,...", file=sys.stderr)
            return 2
        name, _, raw = dimension.partition("=")
        values = [float(v) if name == "rate" else v for v in raw.split(",") if v]
        if name in ("n", "k", "alpha"):
            values = [int(float(v)) for v in values]
        parameters[name] = values
    cells = run_grid(_spec_from_args(args), parameters)
    algorithm = "dygroups" if "dygroups" in args.algorithms else args.algorithms.split(",")[0]
    print(grid_table(cells, algorithm=algorithm, reference=args.reference))
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    from repro.experiments.figures import FIGURES
    from repro.experiments.render import render_table
    from repro.metrics.series import SeriesSet

    try:
        figure = FIGURES[args.name]
    except KeyError:
        print(f"unknown figure {args.name!r}; run `dygroups list`", file=sys.stderr)
        return 2
    produced = figure(full=args.full, runs=args.runs)
    parts = produced if isinstance(produced, tuple) else (produced,)
    for part in parts:
        assert isinstance(part, SeriesSet)
        print(render_table(part))
        print()
    return 0


def _command_amt(args: argparse.Namespace) -> int:
    from repro.amt import run_experiment_1, run_experiment_2

    runner = run_experiment_1 if args.experiment == 1 else run_experiment_2
    result = runner(seed=args.seed)
    config = result.config
    print(
        f"Simulated AMT Experiment-{args.experiment}: populations of {config.population_size}, "
        f"k={config.k}, r={config.rate}, alpha={config.alpha}\n"
    )
    for name, trace in result.traces.items():
        scores = ", ".join(f"{s:.4f}" for s in trace.mean_scores)
        retention = ", ".join(f"{r:.3f}" for r in trace.retention)
        print(f"{name}:")
        print(f"  mean assessment per round: [{scores}]")
        print(f"  retention per round:       [{retention}]")
        print(f"  total latent gain:         {trace.total_gain:.4f}\n")
    print("ranking (best first):", " > ".join(result.ranking()))
    return 0


def _command_theorems(args: argparse.Namespace) -> int:
    from repro.theory import verify_all

    battery = verify_all(seed=args.seed, theorem5_trials=args.trials)
    print(battery.summary())
    return 0 if battery.all_hold else 1


def _command_list() -> int:
    from repro.data.distributions import DISTRIBUTIONS
    from repro.experiments.figures import FIGURES
    from repro.obs.journal import EVENTS
    from repro.registry import capability_matrix

    from repro.analysis import rule_catalog

    print("figures:       ", ", ".join(sorted(FIGURES)))
    rows = capability_matrix()
    print(
        "algorithms:    ",
        ", ".join(name + ("*" if "extension" in caps else "") for name, caps, _ in rows),
        " (* = Section VII extension)",
    )
    for name, caps, params in rows:
        if params:
            print(f"                 {name} params: " + ", ".join(params))
    print(
        "shardable:     ",
        ", ".join(name for name, caps, _ in rows if "shardable" in caps),
        " (eligible for --engine sharded / --shards N / REPRO_SHARDS)",
    )
    print("distributions: ", ", ".join(sorted(DISTRIBUTIONS)))
    print("journal events:", ", ".join(EVENTS))
    print("lint rules:    ", ", ".join(code for code, *_ in rule_catalog()),
          "(`dygroups lint --rules` for the catalog)")
    print("observability:  --log-level LEVEL, --journal PATH, --trace "
          "(any subcommand); `dygroups trace summarize <journal.jsonl>`")
    print("correctness:    --contracts or REPRO_CONTRACTS=1 enables runtime "
          "invariant checks; `dygroups lint [paths]` runs the static rules; "
          "--sanitize or REPRO_SANITIZE=1 enables the lock sanitizer "
          "(`dygroups sanitize report <journal.jsonl>`)")
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import LintEngine, rule_catalog
    from repro.obs import runtime as obs_runtime
    from repro.obs import trace as _trace

    if args.rules:
        for code, name, summary, fix in rule_catalog():
            print(f"{code}  {name:24} {summary}")
            if fix:
                print(f"{'':6}  {'fix:':24} {fix}")
        return 0
    paths = list(args.paths)
    if not paths:
        paths = ["src"] if Path("src").is_dir() else ["."]
    try:
        engine = LintEngine(select=args.select, ignore=args.ignore)
    except ValueError as error:
        print(f"dygroups lint: {error}", file=sys.stderr)
        return 2
    try:
        with _trace.span("analysis.lint", paths=",".join(map(str, paths))):
            report = engine.lint_paths(paths)
    except FileNotFoundError as error:
        print(f"dygroups lint: {error}", file=sys.stderr)
        return 2
    state = obs_runtime.state()
    if state is not None and state.journal is not None:
        state.journal.emit(
            "lint",
            paths=[str(p) for p in paths],
            files=report.files_checked,
            findings=len(report.diagnostics),
            counts=report.counts_by_code(),
        )
    if args.json:
        print(report.to_json())
        return 0 if report.clean else 1
    for diagnostic in report.diagnostics:
        print(diagnostic)
    if report.clean:
        print(f"{report.files_checked} file(s) checked — clean")
        if args.statistics:
            print("0 finding(s) by rule: none")
        return 0
    by_code = ", ".join(f"{code}×{n}" for code, n in report.counts_by_code().items())
    print(
        f"\n{len(report.diagnostics)} finding(s) in {report.files_checked} "
        f"file(s) checked ({by_code})"
    )
    if args.statistics:
        catalog = {code: name for code, name, *_ in rule_catalog()}
        for code, count in sorted(report.counts_by_code().items()):
            print(f"{count:6}  {code}  {catalog.get(code, 'parse-error')}")
    return 1


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serve.config import ServeConfig
    from repro.serve.http import run_server

    slo: "dict[str, float] | None" = None
    if args.slo:
        slo = {}
        for item in args.slo:
            target, sep, raw = item.partition("=")
            try:
                if not sep:
                    raise ValueError
                slo[target] = float(raw)
            except ValueError:
                print(f"bad --slo value {item!r}; expected TARGET=LIMIT", file=sys.stderr)
                return 2
    matchmaking: "dict[str, object] | None" = None
    if args.matchmaking or args.matchmaking_spec:
        specs = []
        for item in args.matchmaking_spec or []:
            try:
                specs.append(_parse_matchmaking_spec(item))
            except ValueError as error:
                print(f"bad --matchmaking-spec {item!r}: {error}", file=sys.stderr)
                return 2
        matchmaking = {"specs": specs} if specs else {}
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_size=args.cache_size,
        session_ttl=args.session_ttl,
        queue_depth=args.queue_depth,
        batch_min=args.batch_min,
        adaptive_batch=not args.no_adaptive_batch,
        slo=slo,
        matchmaking=matchmaking,
    )
    return run_server(config)


def _parse_matchmaking_spec(item: str) -> dict[str, object]:
    """Parse one ``--matchmaking-spec`` value (``k=v,k=v``) into a mapping.

    Values coerce int, then float, then stay strings; field names and
    ranges are validated downstream by ``GroupSpec.from_dict``.
    """
    fields: dict[str, object] = {}
    for pair in item.split(","):
        key, sep, raw = pair.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ValueError(f"expected KEY=VAL, got {pair!r}")
        raw = raw.strip()
        value: object
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        fields[key] = value
    return fields


def _command_join(args: argparse.Namespace) -> int:
    import time

    from repro.serve.client import HttpClient
    from repro.serve.errors import ServeError

    client = HttpClient(args.url, timeout=max(args.timeout, 5.0))
    try:
        joined = client.join(args.skill, participant=args.participant, spec=args.spec)
    except ServeError as error:
        print(f"dygroups join: {error} [{error.code}]", file=sys.stderr)
        return 1
    participant = joined["participant"]
    print(
        f"dygroups join: {participant} queued under spec {joined['spec']!r} "
        f"(status {joined['status']})"
    )
    if args.no_wait:
        return 0
    deadline = time.monotonic() + args.timeout
    status = joined
    while status["status"] == "waiting":
        if time.monotonic() >= deadline:
            print(
                f"dygroups join: {participant} still waiting after {args.timeout:g}s",
                file=sys.stderr,
            )
            return 1
        time.sleep(max(args.poll, 0.01))
        try:
            status = client.participant_status(participant)
        except ServeError as error:
            print(f"dygroups join: {error} [{error.code}]", file=sys.stderr)
            return 1
    if status["status"] == "matched":
        print(
            f"dygroups join: {participant} matched into cohort {status['cohort']} "
            f"as member {status['member']} "
            f"(waited {status['wait_seconds']:.3f}s)"
        )
        return 0
    print(f"dygroups join: {participant} resolved {status['status']}", file=sys.stderr)
    return 1


def _command_scenario(args: argparse.Namespace) -> int:
    from repro.scenarios import CATALOG, load_scenario

    if args.scenario_command == "list":
        print("built-in scenarios (also accepts a JSON spec file; see SCENARIOS.md):")
        for name in sorted(CATALOG):
            spec = CATALOG[name]
            targets = "-" if spec.slo is None else ",".join(sorted(spec.slo.targets()))
            print(
                f"  {name:<18} arrival={spec.arrival.kind:<12} "
                f"cohorts={spec.population.cohorts:<3} rounds={spec.rounds:<3} slo={targets}"
            )
        return 0

    from repro.experiments.tables import paradigm_table
    from repro.scenarios.harness import PARADIGMS, ParadigmMismatch, compare_scenario, write_scenario_artifact

    spec = load_scenario(args.scenario)
    if args.scenario_command == "run":
        paradigms: tuple[str, ...] = (args.paradigm,)
    else:
        paradigms = tuple(p.strip() for p in args.paradigms.split(",") if p.strip())
        unknown = [p for p in paradigms if p not in PARADIGMS]
        if unknown:
            print(
                f"unknown paradigm(s) {unknown}; expected a subset of {list(PARADIGMS)}",
                file=sys.stderr,
            )
            return 2
    try:
        comparison = compare_scenario(spec, paradigms=paradigms)
    except ParadigmMismatch as error:
        print(f"scenario {spec.name}: PARADIGM MISMATCH: {error}", file=sys.stderr)
        return 1
    print(paradigm_table(comparison))
    for paradigm, report in sorted(comparison.reports.items()):
        if report is None:
            continue
        for verdict in report.failures():
            observed = "absent" if verdict.observed is None else f"{verdict.observed:.6g}"
            print(
                f"  SLO FAIL [{paradigm}] {verdict.target}: "
                f"observed {observed} vs limit {verdict.limit:.6g}"
            )
    if args.artifact_dir:
        path = write_scenario_artifact(comparison, args.artifact_dir)
        print(f"\nsaved artifact to {path}")
    return 0 if comparison.passed else 1


def _command_sanitize(args: argparse.Namespace) -> int:
    from repro.analysis.sanitizer import summarize_reports
    from repro.obs.journal import read_journal

    try:
        records = read_journal(args.journal_file)
    except FileNotFoundError:
        print(f"journal not found: {args.journal_file}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"cannot read {args.journal_file}: {error}", file=sys.stderr)
        return 2
    summary = summarize_reports(records)
    if summary["total"] == 0:
        print(
            f"{len(records)} journal record(s) scanned — no sanitizer reports "
            "(run with --sanitize or REPRO_SANITIZE=1 to record them)"
        )
        return 0
    for report in summary["reports"]:
        thread = report.get("thread") or "?"
        print(f"[{report['kind']}] ({thread}) {report['message']}")
    by_kind = ", ".join(f"{kind}×{n}" for kind, n in summary["by_kind"].items())
    print(f"\n{summary['total']} sanitizer report(s) ({by_kind})")
    return 1


def _command_trace(args: argparse.Namespace) -> int:
    from repro.obs.summarize import summarize_journal

    try:
        print(summarize_journal(args.journal_file))
    except FileNotFoundError:
        print(f"journal not found: {args.journal_file}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"cannot summarize {args.journal_file}: {error}", file=sys.stderr)
        return 2
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Predictable failures never escape as tracebacks: invalid arguments
    or inputs (``ValueError``/``TypeError``/missing files) exit 2, the
    argparse usage-error convention; environmental failures (``OSError``
    — an unbindable port, an unwritable journal) exit 1.
    """
    args = build_parser().parse_args(argv)
    np.set_printoptions(precision=6, suppress=True)
    try:
        return _run(args)
    except (ValueError, TypeError, FileNotFoundError) as error:
        print(f"dygroups {args.command}: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"dygroups {args.command}: {error}", file=sys.stderr)
        return 1


def _run(args: argparse.Namespace) -> int:
    if args.command == "trace":
        return _command_trace(args)
    if args.command == "sanitize":
        return _command_sanitize(args)
    if getattr(args, "contracts", False):
        from repro.analysis import contracts

        contracts.enable_contracts()
    if getattr(args, "sanitize", False):
        from repro.analysis import sanitizer

        sanitizer.enable_sanitizer()
    if getattr(args, "pool", None):
        from repro.experiments.parallel import POOL_ENV

        # The pool policy is process-scoped configuration (like
        # REPRO_WORKERS): setting the variable makes every parallel call
        # this process makes — direct or nested — honor the flag.
        os.environ[POOL_ENV] = args.pool
    observing = bool(
        getattr(args, "journal", None)
        or getattr(args, "trace", False)
        or getattr(args, "log_level", None)
    )
    if not observing:
        return _dispatch(args)
    from repro.obs import runtime as obs_runtime
    from repro.obs.summarize import span_table

    obs_runtime.configure(
        journal=args.journal, trace=args.trace, log_level=args.log_level
    )
    try:
        code = _dispatch(args)
        state = obs_runtime.state()
        if (
            state is not None
            and state.tracer is not None
            and state.journal is None
            and state.tracer.spans
        ):
            print("\ntrace summary (per phase):")
            print(span_table(state.tracer.spans))
        return code
    finally:
        obs_runtime.shutdown()


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "toy":
        return _command_toy()
    if args.command == "run":
        return _command_run(args)
    if args.command == "simulate":
        return _command_simulate(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "grid":
        return _command_grid(args)
    if args.command == "figure":
        return _command_figure(args)
    if args.command == "amt":
        return _command_amt(args)
    if args.command == "theorems":
        return _command_theorems(args)
    if args.command == "reproduce":
        from repro.experiments.reproduction import reproduce

        report = reproduce(full=args.full, runs=args.runs)
        print(report.summary())
        return 0 if report.all_hold else 1
    if args.command == "report":
        from repro.experiments.report import render_report

        print(render_report(args.results_dir))
        return 0
    if args.command == "lint":
        return _command_lint(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "join":
        return _command_join(args)
    if args.command == "scenario":
        return _command_scenario(args)
    if args.command == "list":
        return _command_list()
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
