"""Text rendering of experiment results: aligned tables and ASCII charts.

The benches print the same rows/series the paper's figures plot; these
helpers keep that output readable in a terminal and diffable in logs.
"""

from __future__ import annotations

import math

from repro.metrics.series import Series, SeriesSet

__all__ = ["render_table", "render_chart", "render_history", "format_value"]

_SPARK_LEVELS = " .:-=+*#%@"


def format_value(value: float, *, digits: int = 6) -> str:
    """Compact numeric formatting: fixed for small, scientific for huge."""
    if value == 0.0:  # noqa: DYG302 — exact zero guard
        return "0"
    magnitude = abs(value)
    if 1e-4 <= magnitude < 1e7:
        return f"{value:.{digits}g}"
    return f"{value:.{max(digits - 2, 1)}e}"


def render_table(series_set: SeriesSet, *, digits: int = 6) -> str:
    """Render a :class:`SeriesSet` as an aligned text table.

    The first column is the x-grid; one column per series follows.
    """
    header = [series_set.x_label] + list(series_set.labels())
    rows: list[list[str]] = [header]
    for i, x in enumerate(series_set.x):
        row = [format_value(x, digits=digits)]
        row.extend(format_value(s.y[i], digits=digits) for s in series_set.series)
        rows.append(row)
    widths = [max(len(row[c]) for row in rows) for c in range(len(header))]
    lines = [series_set.title, "=" * len(series_set.title)]
    for r, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(widths[c]) for c, cell in enumerate(row)))
        if r == 0:
            lines.append("  ".join("-" * widths[c] for c in range(len(header))))
    lines.append(f"(y = {series_set.y_label})")
    return "\n".join(lines)


def render_history(result, *, metric: str = "mean") -> str:
    """One-line sparkline of a simulation's per-round skill trajectory.

    Args:
        result: a :class:`~repro.core.simulation.SimulationResult` created
            with ``record_history=True``.
        metric: ``"mean"``, ``"min"``, or ``"variance"`` of the skills per
            round.

    Raises:
        ValueError: if the result has no history or the metric is unknown.
    """
    history = result.skill_history
    if history is None:
        raise ValueError("result has no skill history (record_history=True needed)")
    if metric == "mean":
        values = history.mean(axis=1)
    elif metric == "min":
        values = history.min(axis=1)
    elif metric == "variance":
        values = history.var(axis=1)
    else:
        raise ValueError(f"metric must be 'mean', 'min' or 'variance', got {metric!r}")
    low = float(values.min())
    high = float(values.max())
    span = high - low
    if span == 0.0:  # noqa: DYG302 — exact zero guard
        bars = _SPARK_LEVELS[-1] * len(values)
    else:
        indices = ((values - low) / span * (len(_SPARK_LEVELS) - 1)).round().astype(int)
        bars = "".join(_SPARK_LEVELS[i] for i in indices)
    return f"{metric} [{bars}] {format_value(low)} -> {format_value(high)}"


def render_chart(series: Series, *, width: int = 50, log_x: bool = False) -> str:
    """Render one series as a horizontal ASCII bar chart.

    Bars are scaled to the series maximum; useful for eyeballing shapes
    (monotonicity, crossovers) straight from a bench log.
    """
    if width < 10:
        raise ValueError(f"width must be at least 10, got {width}")
    peak = max(abs(v) for v in series.y)
    lines = [f"{series.label}"]
    for x, y in series:
        bar_len = 0 if peak == 0 else int(round(width * abs(y) / peak))
        x_text = f"{x:.3g}"
        if log_x and x > 0:
            x_text = f"10^{math.log10(x):.2g}" if x >= 10 else x_text
        lines.append(f"  {x_text:>8}  {'#' * bar_len}{' ' * (width - bar_len)} {format_value(y)}")
    return "\n".join(lines)
