"""Process-parallel executor for specs and sweeps.

Every run of a spec derives all of its randomness from ``spec.seed + i``
and nothing else, and the stacked-trial kernels of
:mod:`repro.core.vectorized` are row-independent — so the full work list
of a sweep, the cross product of (grid point × run), can be chunked over
worker processes in any way and merged back into **bit-identical**
outcomes.  This module owns that fan-out:

* :func:`resolve_workers` — the ``workers`` knob (argument → spec field →
  ``REPRO_WORKERS`` environment variable → serial);
* :func:`run_spec_parallel` / :func:`sweep_outcomes_parallel` — the
  parallel twins of :func:`repro.experiments.runner.run_spec` and
  :func:`repro.experiments.sweep.sweep_outcomes`.  Callers normally reach
  them implicitly through ``workers=N`` on the serial entry points.

Determinism contract: units are ordered (grid point, run index), split
into contiguous chunks, executed with the exact same per-run seeds as
serial execution, and merged in chunk order — so every accumulator list
the outcome assembly sees is identical to the serial one.  Gains are
therefore exactly equal; only wall-clock timing fields differ (they
measure real, now-concurrent work).

Observability: forked workers inherit the parent's wiring, so each worker
first calls :func:`repro.obs.runtime.detach` (dropping the parent's
journal file descriptor without closing it), resets its inherited metrics
registry, and re-enables metrics-only collection.  The parent journals
``parallel_start`` / ``parallel_chunk`` / ``parallel_end`` events and
merges every worker's metrics snapshot in chunk order — deterministic,
unlike live cross-process emission.
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import ProcessPoolExecutor
from datetime import datetime, timezone
from typing import Sequence

import numpy as np

from repro.experiments import runner as _runner
from repro.experiments.spec import ExperimentSpec
from repro.obs import runtime as _obs
from repro.obs import trace as _trace

__all__ = [
    "WORKERS_ENV",
    "resolve_workers",
    "run_spec_parallel",
    "sweep_outcomes_parallel",
]

_log = logging.getLogger("repro.experiments.parallel")

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: "int | None" = None) -> int:
    """Resolve the effective worker count.

    ``None`` and ``0`` defer to the :data:`WORKERS_ENV` environment
    variable; an unset (or non-positive) variable means serial (1).

    Raises:
        ValueError: for a negative or non-integer count, or a variable
            value that is not an integer.
    """
    if workers is None:
        workers = 0
    if isinstance(workers, bool) or not isinstance(workers, int) or workers < 0:
        raise ValueError(f"workers must be a non-negative int, got {workers!r}")
    if workers == 0:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(f"{WORKERS_ENV} must be an integer, got {raw!r}") from None
    return max(1, workers)


def _worker_init() -> None:
    """Per-worker-process setup (runs once, before any chunk).

    Forked children inherit the parent's observability state — including
    an open journal file descriptor — and its metrics counts.  Detach the
    wiring (without closing the parent's sinks), drop the inherited
    counts, and re-enable metrics-only collection so each worker's
    snapshot reports exactly its own chunks' work.
    """
    _obs.detach()
    _obs.metrics_registry().reset()
    _obs.enable_metrics()


def _run_units_chunk(
    payload: "tuple[tuple[ExperimentSpec, ...], tuple[tuple[int, int], ...], bool]",
) -> "tuple[list[tuple[int, _runner._RunsData]], dict]":
    """Execute one contiguous chunk of (spec index, run index) units.

    Consecutive units of the same spec are executed as one stacked
    :func:`~repro.experiments.runner._execute_runs` call, so a chunk
    covering a whole grid point still vectorizes across its runs.
    Returns the per-spec accumulators in unit order plus the worker's
    metrics snapshot.
    """
    specs, units, keep_results = payload
    results: list[tuple[int, _runner._RunsData]] = []
    start = 0
    while start < len(units):
        spec_index = units[start][0]
        stop = start
        while stop < len(units) and units[stop][0] == spec_index:
            stop += 1
        run_indices = [run for _, run in units[start:stop]]
        results.append(
            (
                spec_index,
                _runner._execute_runs(specs[spec_index], run_indices, keep_results=keep_results),
            )
        )
        start = stop
    return results, _obs.metrics_registry().snapshot()


def _merge_metrics_snapshot(snapshot: dict) -> None:
    """Fold one worker's metrics snapshot into the parent registry.

    Called in chunk order (never concurrently), so merged counts and
    retained timer series are deterministic given the chunking.
    """
    obs = _obs.state()
    if obs is None:
        return
    registry = obs.metrics
    for name, payload in snapshot.get("counters", {}).items():
        registry.counter(name).inc(payload["value"])
    for name, payload in snapshot.get("gauges", {}).items():
        # A gauge is a point-in-time level, not a cumulative count:
        # merging worker snapshots keeps the highest level any worker
        # reached (the parent's own gauge value participates too).
        gauge = registry.gauge(name)
        gauge.set(max(gauge.value, payload["value"]))
    for name, payload in snapshot.get("timers", {}).items():
        timer = registry.timer(name)
        for value in payload["values"]:
            timer.observe(value)
    for name, payload in snapshot.get("histograms", {}).items():
        histogram = registry.histogram(name)
        for value in payload["values"]:
            histogram.observe(value)


def _parallel_execute(
    specs: Sequence[ExperimentSpec], *, workers: int, keep_results: bool = False
) -> "list[_runner._RunsData]":
    """Fan the (spec × run) work list out over worker processes.

    Units are ordered (spec index, run index) and split into contiguous
    chunks — one per worker slot, at most one per unit — then merged in
    chunk order, reproducing the serial accumulator lists exactly.
    """
    units = [(si, ri) for si, spec in enumerate(specs) for ri in range(spec.runs)]
    chunk_count = min(len(units), workers)
    bounds = np.array_split(np.arange(len(units)), chunk_count)
    chunks = [tuple(units[int(b[0]) : int(b[-1]) + 1]) for b in bounds if b.size]
    obs = _obs.state()
    journal = obs.journal if obs is not None else None
    if journal is not None:
        journal.emit(
            "parallel_start",
            workers=workers,
            chunks=len(chunks),
            units=len(units),
            utc=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        )
    _log.info(
        "parallel execute: specs=%d units=%d workers=%d chunks=%d",
        len(specs), len(units), workers, len(chunks),
    )
    merged = [_runner._RunsData.empty(spec.algorithms) for spec in specs]
    started = time.perf_counter()
    payloads = [(tuple(specs), chunk, keep_results) for chunk in chunks]
    with _trace.span("experiments.parallel", workers=workers, chunks=len(chunks)):
        with ProcessPoolExecutor(max_workers=workers, initializer=_worker_init) as pool:
            # map() yields in submission order even when chunks finish out
            # of order, so the merge below is deterministic.
            for index, (chunk_results, snapshot) in enumerate(
                pool.map(_run_units_chunk, payloads)
            ):
                for spec_index, data in chunk_results:
                    merged[spec_index].extend(data)
                _merge_metrics_snapshot(snapshot)
                if journal is not None:
                    journal.emit("parallel_chunk", index=index, units=len(chunks[index]))
    if journal is not None:
        journal.emit(
            "parallel_end",
            chunks=len(chunks),
            seconds=round(time.perf_counter() - started, 9),
        )
    if obs is not None:
        obs.metrics.counter("experiments.parallel.chunks").inc(len(chunks))
    return merged


def run_spec_parallel(
    spec: ExperimentSpec,
    *,
    keep_results: bool = False,
    workers: "int | None" = None,
) -> "_runner.SpecOutcome | tuple":
    """Parallel :func:`~repro.experiments.runner.run_spec`.

    Chunks the spec's runs over worker processes; per-run seeds are
    unchanged (``spec.seed + i``), so the outcome's gain fields are
    bit-identical to serial execution.  Timing fields measure the real
    (concurrent) work and will differ.
    """
    count = resolve_workers(workers if workers is not None else spec.workers)
    if count <= 1 or spec.runs <= 1:
        serial = spec.with_(workers=1)
        return _runner.run_spec(serial, keep_results=keep_results)
    _log.info(
        "run_spec_parallel: n=%d runs=%d workers=%d engine=%s",
        spec.n, spec.runs, count, spec.engine,
    )
    _runner._emit_spec_start(spec)
    data = _parallel_execute([spec], workers=count, keep_results=keep_results)[0]
    outcomes = _runner._assemble_outcomes(spec, data)
    _runner._emit_spec_end(outcomes)
    outcome = _runner.SpecOutcome(spec=spec, outcomes=outcomes)
    if keep_results:
        return outcome, data.raw
    return outcome


def sweep_outcomes_parallel(
    spec: ExperimentSpec,
    parameter: str,
    values: Sequence[float],
    *,
    workers: "int | None" = None,
) -> "list[_runner.SpecOutcome]":
    """Parallel :func:`~repro.experiments.sweep.sweep_outcomes`.

    Chunks the full (grid point × run) cross product over worker
    processes and reassembles per-point outcomes in grid order; gain
    fields are bit-identical to the serial sweep.

    Raises:
        ValueError: for an unsweepable parameter or an empty grid.
    """
    from repro.experiments.sweep import SWEEPABLE, _cast_value

    if parameter not in SWEEPABLE:
        raise ValueError(f"parameter must be one of {SWEEPABLE}, got {parameter!r}")
    if not values:
        raise ValueError("values must be non-empty")
    count = resolve_workers(workers if workers is not None else spec.workers)
    point_specs = [spec.with_(**{parameter: _cast_value(parameter, v)}) for v in values]
    if count <= 1:
        from repro.experiments.sweep import sweep_outcomes

        return sweep_outcomes(spec.with_(workers=1), parameter, values)
    _log.info(
        "sweep_outcomes_parallel: parameter=%s points=%d workers=%d",
        parameter, len(point_specs), count,
    )
    merged = _parallel_execute(point_specs, workers=count)
    obs = _obs.state()
    journal = obs.journal if obs is not None else None
    outcomes: list[_runner.SpecOutcome] = []
    for point_spec, data in zip(point_specs, merged):
        if journal is not None:
            journal.emit(
                "sweep_point",
                parameter=parameter,
                value=getattr(point_spec, parameter),
            )
        _runner._emit_spec_start(point_spec)
        point_outcomes = _runner._assemble_outcomes(point_spec, data)
        _runner._emit_spec_end(point_outcomes)
        outcomes.append(_runner.SpecOutcome(spec=point_spec, outcomes=point_outcomes))
    return outcomes
