"""Process-parallel executor: warm worker pool, streamed chunks, shared memory.

Every run of a spec derives all of its randomness from ``spec.seed + i``
and nothing else, and the stacked-trial kernels of
:mod:`repro.core.vectorized` are row-independent — so the full work list
of a sweep, the cross product of (grid point × run), can be chunked over
worker processes in any way and merged back into **bit-identical**
outcomes.  This module owns that fan-out:

* :func:`resolve_workers` — the ``workers`` knob (argument → spec field →
  ``REPRO_WORKERS`` environment variable → serial);
* :class:`WorkerPool` — a **persistent warm pool**: the worker processes
  fork once (at first use, timed into ``parallel.pool.warmup_seconds``)
  and stay resident across every ``run_spec_parallel`` /
  ``sweep_outcomes_parallel`` call that borrows the pool, so sweeps after
  the first pay zero spawn cost.  Usable as a context manager, or
  implicitly through the process-wide shared pool (:func:`shared_pool`,
  selected by the ``keep`` pool policy — the default);
* :func:`resolve_pool_policy` — the ``--pool`` knob (argument →
  ``REPRO_POOL`` environment variable → ``keep``).  ``keep`` reuses the
  shared pool across calls; ``per-call`` restores the old
  spawn-per-invocation behaviour (useful to bound resident processes);
* :func:`run_spec_parallel` / :func:`sweep_outcomes_parallel` — the
  parallel twins of :func:`repro.experiments.runner.run_spec` and
  :func:`repro.experiments.sweep.sweep_outcomes`.  Callers normally reach
  them implicitly through ``workers=N`` on the serial entry points.

Work is **streamed**, not pre-split: the unit list is cut into
``workers × stream_factor`` contiguous chunks (``REPRO_STREAM_FACTOR``,
default 4) that idle workers pull as they finish, so an unlucky slow
chunk no longer serializes the whole sweep behind one worker.

Skill arrays travel through **shared memory**, not pickles: the parent
draws every run's initial skills (the identical
:func:`~repro.experiments.runner.draw_skills` calls the serial path
makes), stacks them per grid point into
:class:`repro.core.batch.SharedMatrix` segments, and ships only
``(name, shape)`` descriptors with each chunk; workers map the same
physical pages read-only.  Platforms without shared memory (and
``REPRO_SHM=0``) fall back to workers re-drawing their own rows —
bit-identical either way, since both sides run the same draw.

Determinism contract: units are ordered (grid point, run index), split
into contiguous chunks, executed with the exact same per-run seeds and
initial skills as serial execution, and merged in chunk submission order
— so every accumulator list the outcome assembly sees is identical to
the serial one.  Gains are therefore exactly equal; only wall-clock
timing fields differ (they measure real, now-concurrent work).

Observability: forked workers inherit the parent's wiring, so each worker
first calls :func:`repro.obs.runtime.detach` (dropping the parent's
journal file descriptor without closing it), resets its inherited metrics
registry, and re-enables metrics-only collection; each chunk resets the
worker registry again so its snapshot covers exactly that chunk even on a
long-lived warm pool.  The parent journals ``pool_start`` /
``pool_stop`` (pool lifecycle) and ``parallel_start`` /
``parallel_chunk`` / ``parallel_end`` events, merges every worker's
metrics snapshot in chunk order — deterministic, unlike live
cross-process emission — and maintains ``parallel.pool.*`` gauges and
counters (chunk-queue depth, per-worker chunk counts, warmup seconds).

Concurrency discipline: the pool forks at construction/first-use and
**never under a lock** — :func:`repro.analysis.sanitizer.check_blocking`
markers guard the spawn and every blocking wait, and lint rule DYG404
knows ``WorkerPool(...)`` / ``shared_pool(...)`` are process spawns.
"""

from __future__ import annotations

import atexit
import logging
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from datetime import datetime, timezone
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.analysis import sanitizer as _sanitize
from repro.core.batch import SharedMatrix, shared_memory_available
from repro.experiments import runner as _runner
from repro.experiments.spec import ExperimentSpec
from repro.obs import runtime as _obs
from repro.obs import trace as _trace

__all__ = [
    "POOL_ENV",
    "POOL_POLICIES",
    "SHM_ENV",
    "STREAM_FACTOR_ENV",
    "WORKERS_ENV",
    "WorkerPool",
    "WorkerPoolError",
    "resolve_pool_policy",
    "resolve_workers",
    "run_spec_parallel",
    "shared_pool",
    "sharded_orders_parallel",
    "shutdown_shared_pool",
    "sweep_outcomes_parallel",
]

_log = logging.getLogger("repro.experiments.parallel")

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

#: Environment variable selecting the pool policy (``keep`` / ``per-call``).
POOL_ENV = "REPRO_POOL"

#: Environment variable overriding the chunk-streaming factor.
STREAM_FACTOR_ENV = "REPRO_STREAM_FACTOR"

#: Environment variable gating shared-memory skill transfer (``0`` disables).
SHM_ENV = "REPRO_SHM"

#: Valid pool policies: reuse the process-wide warm pool, or spawn per call.
POOL_POLICIES: tuple[str, ...] = ("keep", "per-call")

#: Default oversubscription: chunks per worker slot, so idle workers can
#: stream ahead instead of waiting on one pre-assigned slice.
DEFAULT_STREAM_FACTOR = 4


def resolve_workers(workers: "int | None" = None) -> int:
    """Resolve the effective worker count.

    ``None`` and ``0`` defer to the :data:`WORKERS_ENV` environment
    variable; an unset (or non-positive) variable means serial (1).

    Raises:
        ValueError: for a negative or non-integer count, or a variable
            value that is not an integer.
    """
    if workers is None:
        workers = 0
    if isinstance(workers, bool) or not isinstance(workers, int) or workers < 0:
        raise ValueError(f"workers must be a non-negative int, got {workers!r}")
    if workers == 0:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(f"{WORKERS_ENV} must be an integer, got {raw!r}") from None
    return max(1, workers)


def resolve_pool_policy(policy: "str | None" = None) -> str:
    """Resolve the pool policy (argument → :data:`POOL_ENV` → ``keep``).

    Raises:
        ValueError: for a policy outside :data:`POOL_POLICIES`.
    """
    if policy is None:
        policy = os.environ.get(POOL_ENV, "").strip() or "keep"
    if policy not in POOL_POLICIES:
        raise ValueError(f"pool policy must be one of {POOL_POLICIES}, got {policy!r}")
    return policy


def _resolve_stream_factor(stream_factor: "int | None" = None) -> int:
    """The chunks-per-worker oversubscription factor (argument → env → 4)."""
    if stream_factor is None:
        raw = os.environ.get(STREAM_FACTOR_ENV, "").strip()
        if not raw:
            return DEFAULT_STREAM_FACTOR
        try:
            stream_factor = int(raw)
        except ValueError:
            raise ValueError(
                f"{STREAM_FACTOR_ENV} must be an integer, got {raw!r}"
            ) from None
    if isinstance(stream_factor, bool) or not isinstance(stream_factor, int) or stream_factor < 1:
        raise ValueError(f"stream_factor must be a positive int, got {stream_factor!r}")
    return stream_factor


def _resolve_use_shm(use_shared_memory: "bool | None" = None) -> bool:
    """Whether skill matrices travel via shared memory (arg → env → probe)."""
    if use_shared_memory is None:
        if os.environ.get(SHM_ENV, "").strip() == "0":
            return False
        return shared_memory_available()
    return bool(use_shared_memory) and shared_memory_available()


class WorkerPoolError(RuntimeError):
    """A worker process died mid-chunk (the pool was abandoned and will respawn)."""


def _worker_init() -> None:
    """Per-worker-process setup (runs once, at fork).

    Forked children inherit the parent's observability state — including
    an open journal file descriptor — and its metrics counts.  Detach the
    wiring (without closing the parent's sinks), drop the inherited
    counts, and re-enable metrics-only collection so each worker's
    snapshots report exactly its own chunks' work.
    """
    _obs.detach()
    _obs.metrics_registry().reset()
    _obs.enable_metrics()


def _warmup_worker() -> int:
    """Warmup no-op: forces the process to exist and reports its pid."""
    return os.getpid()


def _run_units_chunk(
    payload: "tuple[tuple[ExperimentSpec, ...], tuple[tuple[int, int], ...], bool, tuple]",
) -> "tuple[int, list[tuple[int, _runner._RunsData]], dict]":
    """Execute one contiguous chunk of (spec index, run index) units.

    Consecutive units of the same spec are executed as one stacked
    :func:`~repro.experiments.runner._execute_runs` call, so a chunk
    covering a whole grid point still vectorizes across its runs.  When
    the payload carries shared-memory descriptors, the spec's initial
    skills are sliced from the parent's segment instead of re-drawn.
    Returns the worker pid, the per-spec accumulators in unit order, and
    the worker's metrics snapshot for this chunk (the registry is reset
    on entry — a warm worker survives many chunks).
    """
    specs, units, keep_results, shm_metas = payload
    _obs.metrics_registry().reset()
    results: list[tuple[int, _runner._RunsData]] = []
    attached: "dict[int, SharedMatrix]" = {}
    try:
        start = 0
        while start < len(units):
            spec_index = units[start][0]
            stop = start
            while stop < len(units) and units[stop][0] == spec_index:
                stop += 1
            run_indices = [run for _, run in units[start:stop]]
            skills_matrix = None
            if shm_metas[spec_index] is not None:
                if spec_index not in attached:
                    attached[spec_index] = SharedMatrix.attach(shm_metas[spec_index])
                skills_matrix = attached[spec_index].array()[run_indices]
            results.append(
                (
                    spec_index,
                    _runner._execute_runs(
                        specs[spec_index],
                        run_indices,
                        keep_results=keep_results,
                        skills_matrix=skills_matrix,
                    ),
                )
            )
            start = stop
    finally:
        for handle in attached.values():
            handle.close()
    return os.getpid(), results, _obs.metrics_registry().snapshot()


def _merge_metrics_snapshot(snapshot: dict) -> None:
    """Fold one worker chunk's metrics snapshot into the parent registry.

    Called in chunk order (never concurrently), so merged counts and
    retained timer series are deterministic given the chunking.
    """
    obs = _obs.state()
    if obs is None:
        return
    registry = obs.metrics
    for name, payload in snapshot.get("counters", {}).items():
        registry.counter(name).inc(payload["value"])
    for name, payload in snapshot.get("gauges", {}).items():
        # A gauge is a point-in-time level, not a cumulative count:
        # merging worker snapshots keeps the highest level any worker
        # reached (the parent's own gauge value participates too).
        gauge = registry.gauge(name)
        gauge.set(max(gauge.value, payload["value"]))
    for name, payload in snapshot.get("timers", {}).items():
        timer = registry.timer(name)
        for value in payload["values"]:
            timer.observe(value)
    for name, payload in snapshot.get("histograms", {}).items():
        histogram = registry.histogram(name)
        for value in payload["values"]:
            histogram.observe(value)


class WorkerPool:
    """A persistent warm pool of forked worker processes.

    The processes fork once, at first use (:meth:`ensure`), and stay
    resident until :meth:`close` — so every sweep after the first runs
    against already-warm workers instead of paying spawn + import cost
    per call.  Chunks are *streamed*: :meth:`map_chunks` submits every
    payload up front and idle workers pull the next one as they finish,
    while the caller collects results in submission order (keeping the
    merge deterministic).

    Not thread-safe by design: the fork must never happen under a lock
    (lint rule DYG404 enforces this for callers too), so the pool takes
    none — one driving thread owns a pool.  Use the process-wide
    :func:`shared_pool` for the common ``keep`` policy.

    Args:
        workers: worker-process count (``None``/0 defer to
            :data:`WORKERS_ENV`).
        stream_factor: contiguous chunks per worker slot
            (:data:`STREAM_FACTOR_ENV`, default 4).
        use_shared_memory: ship skill matrices via
            :class:`~repro.core.batch.SharedMatrix` descriptors instead
            of letting workers re-draw them (``None`` probes the
            platform; ``REPRO_SHM=0`` forces off).
    """

    def __init__(
        self,
        workers: "int | None" = None,
        *,
        stream_factor: "int | None" = None,
        use_shared_memory: "bool | None" = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.stream_factor = _resolve_stream_factor(stream_factor)
        self.use_shared_memory = _resolve_use_shm(use_shared_memory)
        self._executor: "ProcessPoolExecutor | None" = None
        self._chunks_served = 0
        self._worker_slots: dict[int, int] = {}

    @property
    def started(self) -> bool:
        """Whether the worker processes are currently alive."""
        return self._executor is not None

    @property
    def chunks_served(self) -> int:
        """Chunks completed by the current worker generation."""
        return self._chunks_served

    def ensure(self) -> ProcessPoolExecutor:
        """Fork and warm the workers if needed; returns the live executor.

        The spawn is a blocking operation and must never run under a
        sanitized lock — the ``check_blocking`` marker reports exactly
        that under ``REPRO_SANITIZE=1``.  Warmup (fork + a no-op task per
        worker slot) is timed into ``parallel.pool.warmup_seconds`` and
        journaled as ``pool_start``.
        """
        if self._executor is not None:
            return self._executor
        _sanitize.check_blocking("pool.spawn(warmup)")
        started = time.perf_counter()
        executor = ProcessPoolExecutor(max_workers=self.workers, initializer=_worker_init)
        # One no-op per worker slot forces every process to fork now (the
        # stdlib pool spawns lazily, one process per pending submission),
        # so chunk timings never include spawn cost.
        futures = [executor.submit(_warmup_worker) for _ in range(self.workers)]
        pids = sorted({future.result() for future in futures})
        elapsed = time.perf_counter() - started
        self._executor = executor
        self._chunks_served = 0
        self._worker_slots = {pid: slot for slot, pid in enumerate(pids)}
        # Resolved at use, not cached at construction: the bench harness
        # resets the registry between rows, and a warm pool outlives rows.
        _obs.metrics_registry().timer("parallel.pool.warmup_seconds").observe(elapsed)
        obs = _obs.state()
        if obs is not None and obs.journal is not None:
            obs.journal.emit(
                "pool_start",
                workers=self.workers,
                processes=len(pids),
                warmup_seconds=round(elapsed, 9),
                shared_memory=self.use_shared_memory,
                utc=datetime.now(timezone.utc).isoformat(timespec="seconds"),
            )
        _log.info(
            "worker pool warm: workers=%d processes=%d warmup=%.3fs shm=%s",
            self.workers, len(pids), elapsed, self.use_shared_memory,
        )
        return self._executor

    def _slot_for(self, pid: int) -> int:
        """The stable slot index of a worker pid (late pids get new slots)."""
        if pid not in self._worker_slots:
            self._worker_slots[pid] = len(self._worker_slots)
        return self._worker_slots[pid]

    def map_chunks(
        self, fn: "Callable[[Any], Any]", payloads: "Sequence[Any]"
    ) -> "Iterator[Any]":
        """Stream ``payloads`` through the warm workers; yield in order.

        Every payload is submitted up front (idle workers pull the next
        chunk the moment they finish one) and results are yielded in
        submission order, so a chunk-ordered merge stays deterministic.
        The ``parallel.pool.queue_depth`` gauge tracks chunks submitted
        but not yet collected.

        Raises:
            WorkerPoolError: a worker process died; the pool is abandoned
                (the next use forks a fresh one) and no result is lost
                silently.
        """
        executor = self.ensure()
        queue_gauge = _obs.metrics_registry().gauge("parallel.pool.queue_depth")
        futures = [executor.submit(fn, payload) for payload in payloads]
        queue_gauge.inc(len(futures))
        collected = 0
        try:
            for future in futures:
                _sanitize.check_blocking("pool.result(chunk)")
                try:
                    result = future.result()
                except BrokenProcessPool as error:
                    raise WorkerPoolError(
                        f"a worker process died executing chunk {collected}; "
                        f"the pool was abandoned and will respawn on next use"
                    ) from error
                collected += 1
                queue_gauge.dec()
                self._chunks_served += 1
                yield result
        except BaseException:
            queue_gauge.dec(len(futures) - collected)
            self._abandon()
            raise

    def account_chunk(self, pid: int) -> None:
        """Count one completed chunk against the worker that ran it."""
        obs = _obs.state()
        if obs is not None:
            slot = self._slot_for(pid)
            obs.metrics.counter(f"parallel.pool.worker_chunks.w{slot}").inc()

    def _abandon(self) -> None:
        """Tear down a (possibly broken) executor without journal ceremony."""
        executor, self._executor = self._executor, None
        self._worker_slots = {}
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
        if _shared_pool is self:
            _clear_shared_pool()

    def close(self) -> None:
        """Stop the worker processes (idempotent; the pool can be re-ensured)."""
        if self._executor is None:
            return
        executor, self._executor = self._executor, None
        self._worker_slots = {}
        _sanitize.check_blocking("pool.shutdown(close)")
        executor.shutdown(wait=True)
        obs = _obs.state()
        if obs is not None and obs.journal is not None and not obs.journal.closed:
            obs.journal.emit("pool_stop", workers=self.workers, chunks=self._chunks_served)
        _log.info("worker pool closed: workers=%d chunks=%d", self.workers, self._chunks_served)

    def __enter__(self) -> "WorkerPool":
        self.ensure()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "warm" if self.started else "cold"
        return (
            f"WorkerPool(workers={self.workers}, {state}, "
            f"stream_factor={self.stream_factor}, shm={self.use_shared_memory})"
        )


#: The process-wide warm pool the ``keep`` policy reuses across calls.
_shared_pool: "WorkerPool | None" = None


def _clear_shared_pool() -> None:
    global _shared_pool
    _shared_pool = None


def shared_pool(workers: "int | None" = None) -> WorkerPool:
    """The process-wide warm pool, (re)built to match ``workers``.

    A pool sized differently from the request is closed and replaced —
    the worker count is a per-sweep decision, not a per-pool one.
    """
    global _shared_pool
    count = resolve_workers(workers)
    pool = _shared_pool
    if pool is not None and pool.workers != count:
        pool.close()
        pool = None
    if pool is None:
        pool = WorkerPool(count)
        _shared_pool = pool
    return pool


def shutdown_shared_pool() -> None:
    """Close the process-wide warm pool, if one exists (idempotent)."""
    global _shared_pool
    pool, _shared_pool = _shared_pool, None
    if pool is not None:
        pool.close()


atexit.register(shutdown_shared_pool)


def _parallel_execute(
    specs: Sequence[ExperimentSpec],
    *,
    workers: int,
    keep_results: bool = False,
    pool: "WorkerPool | None" = None,
) -> "list[_runner._RunsData]":
    """Fan the (spec × run) work list out over warm worker processes.

    Units are ordered (spec index, run index) and split into contiguous
    chunks — ``stream_factor`` per worker slot, at most one per unit —
    streamed to idle workers, then merged in submission order,
    reproducing the serial accumulator lists exactly.

    Pool selection: an explicit ``pool`` is borrowed (and left warm);
    otherwise the resolved pool policy picks the process-wide shared
    pool (``keep``) or a throwaway one (``per-call``).
    """
    owned: "WorkerPool | None" = None
    if pool is None:
        if resolve_pool_policy() == "keep":
            pool = shared_pool(workers)
        else:
            pool = owned = WorkerPool(workers)
    elif pool.workers != workers:
        raise ValueError(
            f"borrowed pool has {pool.workers} workers but {workers} were requested"
        )
    units = [(si, ri) for si, spec in enumerate(specs) for ri in range(spec.runs)]
    chunk_count = min(len(units), workers * pool.stream_factor)
    bounds = np.array_split(np.arange(len(units)), chunk_count)
    chunks = [tuple(units[int(b[0]) : int(b[-1]) + 1]) for b in bounds if b.size]
    obs = _obs.state()
    journal = obs.journal if obs is not None else None
    if journal is not None:
        journal.emit(
            "parallel_start",
            workers=workers,
            chunks=len(chunks),
            units=len(units),
            shared_memory=pool.use_shared_memory,
            utc=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        )
    _log.info(
        "parallel execute: specs=%d units=%d workers=%d chunks=%d shm=%s",
        len(specs), len(units), workers, len(chunks), pool.use_shared_memory,
    )
    merged = [_runner._RunsData.empty(spec.algorithms) for spec in specs]
    started = time.perf_counter()
    # The parent draws every run's initial skills — the identical
    # draw_skills calls serial execution makes — and shares them once per
    # grid point; chunks then carry (name, shape) descriptors instead of
    # pickled arrays.  Any spec whose segment cannot be created falls
    # back to workers re-drawing (same bits either way).
    shared: "list[SharedMatrix | None]" = [None] * len(specs)
    if pool.use_shared_memory:
        for index, spec in enumerate(specs):
            try:
                shared[index] = SharedMatrix.create(
                    np.stack([_runner.draw_skills(spec, i) for i in range(spec.runs)])
                )
            except Exception:  # pragma: no cover - platform-dependent
                shared[index] = None
    shm_metas = tuple(handle.meta if handle is not None else None for handle in shared)
    try:
        payloads = [(tuple(specs), chunk, keep_results, shm_metas) for chunk in chunks]
        with _trace.span("experiments.parallel", workers=workers, chunks=len(chunks)):
            for index, (pid, chunk_results, snapshot) in enumerate(
                pool.map_chunks(_run_units_chunk, payloads)
            ):
                for spec_index, data in chunk_results:
                    merged[spec_index].extend(data)
                _merge_metrics_snapshot(snapshot)
                pool.account_chunk(pid)
                if journal is not None:
                    journal.emit("parallel_chunk", index=index, units=len(chunks[index]))
    finally:
        for handle in shared:
            if handle is not None:
                handle.close()
                handle.unlink()
        if owned is not None:
            owned.close()
    if journal is not None:
        journal.emit(
            "parallel_end",
            chunks=len(chunks),
            seconds=round(time.perf_counter() - started, 9),
        )
    if obs is not None:
        obs.metrics.counter("experiments.parallel.chunks").inc(len(chunks))
    return merged


def _shard_segments_chunk(
    payload: "tuple[tuple, tuple, bool]",
) -> "tuple[int, list[tuple[int, int, np.ndarray]]]":
    """Stable-sort one chunk of ``(row, start, indices)`` shard units.

    The worker maps the parent's :class:`SharedMatrix` read-only, gathers
    each unit's values in the parent-supplied ascending-index order, and
    runs the same stable descending argsort (bit-view when the whole
    matrix is positive — the flag travels with the payload so every
    worker matches the serial decision) the serial sharded path runs.
    Returns the worker pid and the globally-ordered index segments.
    """
    meta, units, bitview = payload
    handle = SharedMatrix.attach(meta)
    segments: "list[tuple[int, int, np.ndarray]]" = []
    try:
        matrix = handle.array()
        for row, start, idx in units:
            vals = np.ascontiguousarray(matrix[row][idx])
            if bitview:
                local = np.argsort(-vals.view(np.int64), kind="stable")
            else:
                local = np.argsort(-vals, kind="stable")
            segments.append((row, start, idx[local]))
    finally:
        handle.close()
    return os.getpid(), segments


def sharded_orders_parallel(
    matrix: np.ndarray,
    plan=None,
    *,
    workers: "int | None" = None,
    pool: "WorkerPool | None" = None,
) -> np.ndarray:
    """Sharded stable descending argsort with shards as pool work units.

    The process-parallel twin of
    :func:`repro.core.shard.sharded_descending_orders`: the parent picks
    the value-range cuts and the per-shard index groups (cheap O(n)
    passes), ships the trial matrix once through a
    :class:`~repro.core.batch.SharedMatrix` so workers read it without
    copies, streams ``(row, start, indices)`` shard units over the warm
    :class:`WorkerPool`, and writes the returned segments straight into
    the output — the same bit-identical permutation as the serial
    sharded and monolithic sorts.

    Falls back to the serial sharded path when the effective worker
    count is 1, shared memory is unavailable, or the shared segment
    cannot be created.  The plan's out-of-core spill applies only to the
    serial fallback (workers return heap segments).
    """
    from repro.core.shard import ShardPlan, bucket_partition, shard_cuts
    from repro.core.shard import sharded_descending_orders as _serial

    plan = plan if plan is not None else ShardPlan()
    matrix = np.ascontiguousarray(matrix, dtype=np.float64)
    count = resolve_workers(workers)
    if count <= 1 or not shared_memory_available():
        return _serial(matrix, plan)
    try:
        shared = SharedMatrix.create(matrix)
    except Exception:  # pragma: no cover - platform-dependent
        return _serial(matrix, plan)
    trials, n = matrix.shape
    shards = plan.shard_count(n)
    bitview = bool(matrix.size) and bool(np.all(matrix > 0.0))
    units: "list[tuple[int, int, np.ndarray]]" = []
    for r in range(trials):
        row = matrix[r]
        cuts = shard_cuts(row, shards)
        if cuts.size == 0:
            units.append((r, 0, np.arange(n, dtype=np.intp)))
            continue
        offsets, grouped = bucket_partition(row, cuts)
        for b in range(offsets.shape[0] - 1):
            lo, hi = int(offsets[b]), int(offsets[b + 1])
            if hi > lo:
                units.append((r, lo, grouped[lo:hi]))
    if not units:
        shared.close()
        shared.unlink()
        return np.empty((trials, n), dtype=np.intp)
    owned: "WorkerPool | None" = None
    if pool is None:
        if resolve_pool_policy() == "keep":
            pool = shared_pool(count)
        else:
            pool = owned = WorkerPool(count)
    orders = np.empty((trials, n), dtype=np.intp)
    chunk_count = min(len(units), count * pool.stream_factor)
    bounds = np.array_split(np.arange(len(units)), chunk_count)
    chunks = [tuple(units[int(b[0]) : int(b[-1]) + 1]) for b in bounds if b.size]
    try:
        payloads = [(shared.meta, chunk, bitview) for chunk in chunks]
        with _trace.span("experiments.sharded_orders", workers=count, chunks=len(chunks)):
            for pid, segments in pool.map_chunks(_shard_segments_chunk, payloads):
                for row, start, ordered in segments:
                    orders[row, start : start + ordered.shape[0]] = ordered
                pool.account_chunk(pid)
    finally:
        shared.close()
        shared.unlink()
        if owned is not None:
            owned.close()
    return orders


def run_spec_parallel(
    spec: ExperimentSpec,
    *,
    keep_results: bool = False,
    workers: "int | None" = None,
    pool: "WorkerPool | None" = None,
) -> "_runner.SpecOutcome | tuple":
    """Parallel :func:`~repro.experiments.runner.run_spec`.

    Chunks the spec's runs over warm worker processes; per-run seeds are
    unchanged (``spec.seed + i``), so the outcome's gain fields are
    bit-identical to serial execution.  Timing fields measure the real
    (concurrent) work and will differ.  An explicit ``pool`` is borrowed
    and left warm for the next call.
    """
    count = resolve_workers(workers if workers is not None else spec.workers)
    if count <= 1 or spec.runs <= 1:
        serial = spec.with_(workers=1)
        return _runner.run_spec(serial, keep_results=keep_results)
    _log.info(
        "run_spec_parallel: n=%d runs=%d workers=%d engine=%s",
        spec.n, spec.runs, count, spec.engine,
    )
    _runner._emit_spec_start(spec)
    data = _parallel_execute([spec], workers=count, keep_results=keep_results, pool=pool)[0]
    outcomes = _runner._assemble_outcomes(spec, data)
    _runner._emit_spec_end(outcomes)
    outcome = _runner.SpecOutcome(spec=spec, outcomes=outcomes)
    if keep_results:
        return outcome, data.raw
    return outcome


def sweep_outcomes_parallel(
    spec: ExperimentSpec,
    parameter: str,
    values: Sequence[float],
    *,
    workers: "int | None" = None,
    pool: "WorkerPool | None" = None,
) -> "list[_runner.SpecOutcome]":
    """Parallel :func:`~repro.experiments.sweep.sweep_outcomes`.

    Streams the full (grid point × run) cross product over warm worker
    processes and reassembles per-point outcomes in grid order; gain
    fields are bit-identical to the serial sweep.  An explicit ``pool``
    is borrowed and left warm for the next call.

    Raises:
        ValueError: for an unsweepable parameter or an empty grid.
    """
    from repro.experiments.sweep import SWEEPABLE, _cast_value

    if parameter not in SWEEPABLE:
        raise ValueError(f"parameter must be one of {SWEEPABLE}, got {parameter!r}")
    if not values:
        raise ValueError("values must be non-empty")
    count = resolve_workers(workers if workers is not None else spec.workers)
    point_specs = [spec.with_(**{parameter: _cast_value(parameter, v)}) for v in values]
    if count <= 1:
        from repro.experiments.sweep import sweep_outcomes

        return sweep_outcomes(spec.with_(workers=1), parameter, values)
    _log.info(
        "sweep_outcomes_parallel: parameter=%s points=%d workers=%d",
        parameter, len(point_specs), count,
    )
    merged = _parallel_execute(point_specs, workers=count, pool=pool)
    obs = _obs.state()
    journal = obs.journal if obs is not None else None
    outcomes: list[_runner.SpecOutcome] = []
    for point_spec, data in zip(point_specs, merged):
        if journal is not None:
            journal.emit(
                "sweep_point",
                parameter=parameter,
                value=getattr(point_spec, parameter),
            )
        _runner._emit_spec_start(point_spec)
        point_outcomes = _runner._assemble_outcomes(point_spec, data)
        _runner._emit_spec_end(point_outcomes)
        outcomes.append(_runner.SpecOutcome(spec=point_spec, outcomes=point_outcomes))
    return outcomes
