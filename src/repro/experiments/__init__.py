"""Experiment harness: specs, runners, sweeps, figures, rendering."""

from repro.experiments.figures import FIGURES, base_spec
from repro.experiments.grid import GridCell, grid_table, run_grid
from repro.experiments.report import collect_results, render_report
from repro.experiments.reproduction import (
    FigureVerdict,
    ReproductionReport,
    reproduce,
)
from repro.experiments.render import format_value, render_chart, render_table
from repro.experiments.runner import AlgorithmOutcome, SpecOutcome, draw_skills, run_spec
from repro.experiments.spec import DEFAULT_ALGORITHMS, ExperimentSpec
from repro.experiments.sweep import SWEEPABLE, sweep, sweep_outcomes
from repro.experiments.tables import comparison_table

__all__ = [
    "FIGURES",
    "base_spec",
    "GridCell",
    "grid_table",
    "run_grid",
    "collect_results",
    "render_report",
    "FigureVerdict",
    "ReproductionReport",
    "reproduce",
    "format_value",
    "render_chart",
    "render_table",
    "AlgorithmOutcome",
    "SpecOutcome",
    "draw_skills",
    "run_spec",
    "DEFAULT_ALGORITHMS",
    "ExperimentSpec",
    "SWEEPABLE",
    "sweep",
    "sweep_outcomes",
    "comparison_table",
]
