"""Parameter sweeps: run a spec across a grid of one parameter.

A sweep is the building block of every effectiveness figure (Figures
5–9): fix the defaults, vary one of ``n``, ``k``, ``α`` or ``r``, and
record each algorithm's mean total gain per grid point.
"""

from __future__ import annotations

import logging
from typing import Sequence

from repro.experiments.runner import SpecOutcome, run_spec
from repro.experiments.spec import ExperimentSpec
from repro.metrics.series import Series, SeriesSet
from repro.obs import runtime as _obs
from repro.obs import trace as _trace

__all__ = ["sweep", "sweep_outcomes", "SWEEPABLE"]

_log = logging.getLogger("repro.experiments.sweep")

#: Spec fields a sweep may vary.
SWEEPABLE: tuple[str, ...] = ("n", "k", "alpha", "rate")


def _cast_value(parameter: str, value: float) -> "float | int":
    """Coerce a grid value to the spec field's type."""
    return float(value) if parameter == "rate" else int(value)


def sweep_outcomes(
    spec: ExperimentSpec,
    parameter: str,
    values: Sequence[float],
    *,
    workers: "int | None" = None,
) -> list[SpecOutcome]:
    """Run ``spec`` once per value of ``parameter`` and return raw outcomes.

    Args:
        spec: the base configuration.
        parameter: one of :data:`SWEEPABLE`.
        values: the grid.
        workers: process-parallel worker count; ``None`` defers to
            ``spec.workers`` (and ``REPRO_WORKERS``).  Any value ``> 1``
            chunks the (grid point × run) cross product over worker
            processes via :mod:`repro.experiments.parallel`; gain fields
            are bit-identical to the serial sweep.

    Raises:
        ValueError: for an unsweepable parameter or an empty grid.
    """
    if parameter not in SWEEPABLE:
        raise ValueError(f"parameter must be one of {SWEEPABLE}, got {parameter!r}")
    if not values:
        raise ValueError("values must be non-empty")
    from repro.experiments import parallel as _parallel

    resolved = _parallel.resolve_workers(workers if workers is not None else spec.workers)
    if resolved > 1:
        return _parallel.sweep_outcomes_parallel(spec, parameter, values, workers=resolved)
    obs = _obs.state()
    journal = obs.journal if obs is not None else None
    outcomes = []
    with _trace.span("experiments.sweep", parameter=parameter, points=len(values)):
        for value in values:
            cast = _cast_value(parameter, value)
            _log.info("sweep point: %s=%s", parameter, cast)
            if journal is not None:
                journal.emit("sweep_point", parameter=parameter, value=cast)
            with _trace.span("experiments.sweep_point", parameter=parameter, value=cast):
                outcomes.append(run_spec(spec.with_(**{parameter: cast})))
    return outcomes


def sweep(
    spec: ExperimentSpec,
    parameter: str,
    values: Sequence[float],
    *,
    title: str,
    y_label: str = "aggregate learning gain",
    metric: str = "gain",
) -> SeriesSet:
    """Run the sweep and package it as a figure-ready :class:`SeriesSet`.

    Args:
        spec: the base configuration.
        parameter: one of :data:`SWEEPABLE`.
        values: the grid.
        title: figure title.
        y_label: y-axis label.
        metric: ``"gain"`` (mean total gain) or ``"runtime"``
            (mean wall-clock seconds per run — the Figure 12/13 metric).
    """
    if metric not in ("gain", "runtime"):
        raise ValueError(f"metric must be 'gain' or 'runtime', got {metric!r}")
    outcomes = sweep_outcomes(spec, parameter, values)
    series = []
    for name in spec.algorithms:
        ys = []
        for outcome in outcomes:
            algo = outcome.outcomes[name]
            ys.append(algo.mean_total_gain if metric == "gain" else algo.mean_runtime_seconds)
        series.append(Series(label=name, x=tuple(float(v) for v in values), y=tuple(ys)))
    return SeriesSet(title=title, x_label=parameter, y_label=y_label, series=tuple(series))
