"""Multi-parameter grids: Cartesian-product sensitivity analyses.

A one-dimensional :func:`~repro.experiments.sweep.sweep` regenerates the
paper's figures; a :func:`grid` crosses several parameters to study their
*interaction* (e.g. does DyGroups' advantage over random grouping depend
jointly on ``r`` and ``k``?) — the sensitivity analyses behind the
extended benches.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.experiments.runner import run_spec
from repro.experiments.spec import ExperimentSpec
from repro.experiments.sweep import SWEEPABLE

__all__ = ["GridCell", "run_grid", "grid_table"]


@dataclass(frozen=True)
class GridCell:
    """One grid point's averaged results.

    Attributes:
        parameters: the parameter values of this cell.
        gains: mean total gain per algorithm.
    """

    parameters: dict[str, Any]
    gains: dict[str, float]

    def advantage(self, algorithm: str, reference: str) -> float:
        """Gain ratio of ``algorithm`` over ``reference`` in this cell."""
        denominator = self.gains[reference]
        if denominator == 0.0:  # noqa: DYG302 — exact zero guard
            raise ValueError(f"reference {reference!r} has zero gain in cell {self.parameters}")
        return self.gains[algorithm] / denominator


def run_grid(spec: ExperimentSpec, parameters: Mapping[str, Sequence]) -> list[GridCell]:
    """Run ``spec`` at every combination of the given parameter values.

    Args:
        spec: the base configuration.
        parameters: mapping from sweepable field name (a subset of
            :data:`~repro.experiments.sweep.SWEEPABLE` plus ``mode`` and
            ``distribution``) to its value grid.

    Raises:
        ValueError: for unknown parameter names or empty grids.
    """
    allowed = set(SWEEPABLE) | {"mode", "distribution"}
    unknown = [name for name in parameters if name not in allowed]
    if unknown:
        raise ValueError(f"cannot grid over {unknown}; allowed: {sorted(allowed)}")
    if not parameters or any(len(values) == 0 for values in parameters.values()):
        raise ValueError("every grid dimension needs at least one value")

    names = list(parameters)
    cells = []
    for combination in itertools.product(*(parameters[name] for name in names)):
        overrides = dict(zip(names, combination))
        outcome = run_spec(spec.with_(**overrides))
        cells.append(
            GridCell(
                parameters=overrides,
                gains={
                    name: algo.mean_total_gain for name, algo in outcome.outcomes.items()
                },
            )
        )
    return cells


def grid_table(
    cells: Sequence[GridCell],
    *,
    algorithm: str = "dygroups",
    reference: str = "random",
    digits: int = 4,
) -> str:
    """Render a grid as an aligned table of ``algorithm/reference`` ratios."""
    if not cells:
        raise ValueError("no grid cells to render")
    names = list(cells[0].parameters)
    header = names + [f"{algorithm}/{reference}"]
    rows = [header]
    for cell in cells:
        row = [str(cell.parameters[name]) for name in names]
        row.append(f"{cell.advantage(algorithm, reference):.{digits}f}")
        rows.append(row)
    widths = [max(len(row[c]) for row in rows) for c in range(len(header))]
    lines = []
    for r, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(widths[c]) for c, cell in enumerate(row)))
        if r == 0:
            lines.append("  ".join("-" * widths[c] for c in range(len(header))))
    return "\n".join(lines)
