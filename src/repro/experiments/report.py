"""Collect archived benchmark results into one report.

Every bench in ``benchmarks/`` archives its printed series under
``benchmarks/results/<name>.txt``.  :func:`collect_results` gathers them
(ordered to follow the paper's figure numbering) and renders a single
report — the machine-generated companion to EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["collect_results", "render_report", "DEFAULT_RESULTS_DIR"]

#: Where the benches archive their output, relative to the repo root.
DEFAULT_RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def collect_results(results_dir: "str | Path | None" = None) -> dict[str, str]:
    """Read every archived result, keyed by its bench name.

    Returns an empty mapping when the directory does not exist (no
    benches have run yet).
    """
    directory = Path(results_dir) if results_dir is not None else DEFAULT_RESULTS_DIR
    if not directory.is_dir():
        return {}
    results = {}
    for path in sorted(directory.glob("*.txt")):
        results[path.stem] = path.read_text().rstrip("\n")
    return results


def render_report(results_dir: "str | Path | None" = None) -> str:
    """Render all archived results as one sectioned text report."""
    results = collect_results(results_dir)
    if not results:
        return (
            "No archived benchmark results found.\n"
            "Run `pytest benchmarks/ --benchmark-only` first."
        )
    sections = [f"Benchmark report — {len(results)} experiments\n"]
    for name, body in results.items():
        sections.append("=" * 72)
        sections.append(f"[{name}]")
        sections.append("=" * 72)
        sections.append(body)
        sections.append("")
    return "\n".join(sections)
