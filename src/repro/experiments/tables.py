"""Tabular rendering of spec outcomes (algorithm comparison tables)."""

from __future__ import annotations

from repro.experiments.render import format_value
from repro.experiments.runner import SpecOutcome

__all__ = ["comparison_table"]


def comparison_table(outcome: SpecOutcome, *, digits: int = 6) -> str:
    """Render one spec's algorithm comparison as an aligned text table.

    Columns: algorithm, mean total gain (± std when runs > 1), mean
    per-run wall-clock seconds, and mean wall-clock milliseconds per
    round (from the engine's per-round timings).  Rows are sorted
    best-first.
    """
    spec = outcome.spec
    header = ["algorithm", "mean total gain", "std", "runtime (s)", "ms/round"]
    rows = [header]
    for name in outcome.ranking():
        algo = outcome.outcomes[name]
        per_round = algo.mean_round_seconds
        ms_per_round = (
            format_value(1000.0 * sum(per_round) / len(per_round), digits=3) if per_round else "-"
        )
        rows.append(
            [
                name,
                format_value(algo.mean_total_gain, digits=digits),
                format_value(algo.std_total_gain, digits=3),
                format_value(algo.mean_runtime_seconds, digits=3),
                ms_per_round,
            ]
        )
    widths = [max(len(row[c]) for row in rows) for c in range(len(header))]
    title = (
        f"n={spec.n} k={spec.k} alpha={spec.alpha} r={spec.rate} "
        f"mode={spec.mode} dist={spec.distribution} runs={spec.runs}"
    )
    lines = [title, "=" * len(title)]
    for r, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row)))
        if r == 0:
            lines.append("  ".join("-" * widths[c] for c in range(len(header))))
    return "\n".join(lines)
