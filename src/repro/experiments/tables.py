"""Tabular rendering of spec outcomes and scenario comparisons."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.experiments.render import format_value
from repro.experiments.runner import SpecOutcome

if TYPE_CHECKING:  # pragma: no cover — annotation-only import
    from repro.scenarios.harness import ScenarioComparison

__all__ = ["comparison_table", "paradigm_table"]


def comparison_table(outcome: SpecOutcome, *, digits: int = 6) -> str:
    """Render one spec's algorithm comparison as an aligned text table.

    Columns: algorithm, mean total gain (± std when runs > 1), mean
    per-run wall-clock seconds, and mean wall-clock milliseconds per
    round (from the engine's per-round timings).  Rows are sorted
    best-first.
    """
    spec = outcome.spec
    header = ["algorithm", "mean total gain", "std", "runtime (s)", "ms/round"]
    rows = [header]
    for name in outcome.ranking():
        algo = outcome.outcomes[name]
        per_round = algo.mean_round_seconds
        ms_per_round = (
            format_value(1000.0 * sum(per_round) / len(per_round), digits=3) if per_round else "-"
        )
        rows.append(
            [
                name,
                format_value(algo.mean_total_gain, digits=digits),
                format_value(algo.std_total_gain, digits=3),
                format_value(algo.mean_runtime_seconds, digits=3),
                ms_per_round,
            ]
        )
    widths = [max(len(row[c]) for row in rows) for c in range(len(header))]
    title = (
        f"n={spec.n} k={spec.k} alpha={spec.alpha} r={spec.rate} "
        f"mode={spec.mode} dist={spec.distribution} runs={spec.runs}"
    )
    lines = [title, "=" * len(title)]
    for r, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row)))
        if r == 0:
            lines.append("  ".join("-" * widths[c] for c in range(len(header))))
    return "\n".join(lines)


def paradigm_table(comparison: "ScenarioComparison") -> str:
    """Render a scenario's cross-paradigm comparison as an aligned table.

    Columns: paradigm, completed requests, errors, throughput, client
    latency percentiles in milliseconds, and the paradigm's SLO verdict
    (``-`` when the scenario declares no SLO block).  A trailing line
    states the bit-identity result (the comparison object only exists
    when identity held) and the overall verdict.
    """
    spec = comparison.spec
    header = ["paradigm", "requests", "errors", "rps", "p50 ms", "p95 ms", "p99 ms", "slo"]
    rows = [header]
    for run in comparison.runs:
        series = run.latency_series()

        def _ms(key: str) -> str:
            if series is None or not series.get("count"):
                return "-"
            return format_value(1000.0 * float(series[key]), digits=3)

        report = comparison.reports.get(run.paradigm)
        rows.append(
            [
                run.paradigm,
                str(run.load.requests),
                str(run.load.errors),
                format_value(run.load.throughput_rps, digits=3),
                _ms("p50"),
                _ms("p95"),
                _ms("p99"),
                "-" if report is None else report.verdict,
            ]
        )
    widths = [max(len(row[c]) for row in rows) for c in range(len(header))]
    population = spec.population
    title = (
        f"scenario {spec.name}: arrival={spec.arrival.kind} "
        f"n={population.n} k={population.k} cohorts={population.cohorts} "
        f"rounds={spec.rounds} policy={spec.policy}"
    )
    lines = [title, "=" * len(title)]
    for r, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row)))
        if r == 0:
            lines.append("  ".join("-" * widths[c] for c in range(len(header))))
    lines.append(
        f"groupings bit-identical across {len(comparison.runs)} paradigm(s) "
        f"over {comparison.rounds_compared} rounds; verdict: {comparison.verdict}"
    )
    return "\n".join(lines)
