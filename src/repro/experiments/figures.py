"""One function per figure of the paper's synthetic evaluation (Section V-B).

Every function returns a figure-ready :class:`~repro.metrics.series.SeriesSet`
whose series carry the same lines the paper plots.  Two presets:

* ``full=False`` (default) — bench-sized grids, one decade smaller than
  the paper's largest points, so the whole suite runs in minutes of pure
  Python (the paper's originals were C++);
* ``full=True`` — the paper's grids (n up to 10⁵/10⁶ where applicable).

Absolute values are not expected to match the paper (different substrate);
the reproduced deliverables are the *shapes*: who wins, monotonicity, and
where the curves sit relative to each other.  EXPERIMENTS.md records the
comparison per figure.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.baselines.registry import make_policy
from repro.core.simulation import simulate
from repro.experiments.runner import draw_skills
from repro.experiments.spec import DEFAULT_ALGORITHMS, ExperimentSpec
from repro.experiments.sweep import sweep
from repro.metrics.inequality import coefficient_of_variation, gini
from repro.metrics.series import Series, SeriesSet

__all__ = [
    "fig05a",
    "fig05b",
    "fig06a",
    "fig06b",
    "fig07a",
    "fig07b",
    "fig08a",
    "fig08b",
    "fig09a",
    "fig09b",
    "fig10a",
    "fig10b",
    "fig11",
    "fig12",
    "fig13",
    "FIGURES",
    "base_spec",
]

_BENCH_LPA_EVALS = 10_000
_FULL_LPA_EVALS = 50_000


def base_spec(*, full: bool, runs: int | None, mode: str, distribution: str) -> ExperimentSpec:
    """The Section V-B default spec, sized for bench or full runs."""
    return ExperimentSpec(
        n=10_000 if full else 2_000,
        k=5,
        alpha=5,
        rate=0.5,
        mode=mode,
        distribution=distribution,
        algorithms=DEFAULT_ALGORITHMS,
        runs=runs if runs is not None else (10 if full else 3),
        lpa_max_evals=_FULL_LPA_EVALS if full else _BENCH_LPA_EVALS,
    )


def _n_grid(full: bool) -> tuple[int, ...]:
    return (100, 1_000, 10_000, 100_000) if full else (100, 500, 2_000, 10_000)


def _k_grid(full: bool) -> tuple[int, ...]:
    return (5, 50, 500, 5_000) if full else (5, 50, 200, 1_000)


def _alpha_grid(full: bool) -> tuple[int, ...]:
    return (1, 2, 3, 4, 5, 6, 7, 8)


def _r_grid(full: bool) -> tuple[float, ...]:
    return (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


# --------------------------------------------------------------------------
# Figures 5-9: effectiveness sweeps
# --------------------------------------------------------------------------


def fig05a(full: bool = False, runs: int | None = None) -> SeriesSet:
    """Fig 5(a): aggregate LG vs n — clique mode, log-normal skills."""
    spec = base_spec(full=full, runs=runs, mode="clique", distribution="lognormal")
    return sweep(spec, "n", _n_grid(full), title="Fig 5(a): LG vs n (clique, log-normal)")


def fig05b(full: bool = False, runs: int | None = None) -> SeriesSet:
    """Fig 5(b): aggregate LG vs n — star mode, Zipf skills."""
    spec = base_spec(full=full, runs=runs, mode="star", distribution="zipf")
    return sweep(spec, "n", _n_grid(full), title="Fig 5(b): LG vs n (star, Zipf)")


def fig06a(full: bool = False, runs: int | None = None) -> SeriesSet:
    """Fig 6(a): aggregate LG vs k — star mode, log-normal skills."""
    spec = base_spec(full=full, runs=runs, mode="star", distribution="lognormal")
    return sweep(spec, "k", _k_grid(full), title="Fig 6(a): LG vs k (star, log-normal)")


def fig06b(full: bool = False, runs: int | None = None) -> SeriesSet:
    """Fig 6(b): aggregate LG vs k — clique mode, Zipf skills."""
    spec = base_spec(full=full, runs=runs, mode="clique", distribution="zipf")
    return sweep(spec, "k", _k_grid(full), title="Fig 6(b): LG vs k (clique, Zipf)")


def fig07a(full: bool = False, runs: int | None = None) -> SeriesSet:
    """Fig 7(a): aggregate LG vs α — clique mode, Zipf skills."""
    spec = base_spec(full=full, runs=runs, mode="clique", distribution="zipf")
    return sweep(spec, "alpha", _alpha_grid(full), title="Fig 7(a): LG vs alpha (clique, Zipf)")


def fig07b(full: bool = False, runs: int | None = None) -> SeriesSet:
    """Fig 7(b): aggregate LG vs α — star mode, log-normal skills."""
    spec = base_spec(full=full, runs=runs, mode="star", distribution="lognormal")
    return sweep(spec, "alpha", _alpha_grid(full), title="Fig 7(b): LG vs alpha (star, log-normal)")


def fig08a(full: bool = False, runs: int | None = None) -> SeriesSet:
    """Fig 8(a): aggregate LG vs r — clique mode, Zipf skills."""
    spec = base_spec(full=full, runs=runs, mode="clique", distribution="zipf")
    return sweep(spec, "rate", _r_grid(full), title="Fig 8(a): LG vs r (clique, Zipf)")


def fig08b(full: bool = False, runs: int | None = None) -> SeriesSet:
    """Fig 8(b): aggregate LG vs r — star mode, Zipf skills."""
    spec = base_spec(full=full, runs=runs, mode="star", distribution="zipf")
    return sweep(spec, "rate", _r_grid(full), title="Fig 8(b): LG vs r (star, Zipf)")


def fig09a(full: bool = False, runs: int | None = None) -> SeriesSet:
    """Fig 9(a): aggregate LG vs r — clique mode, log-normal skills."""
    spec = base_spec(full=full, runs=runs, mode="clique", distribution="lognormal")
    return sweep(spec, "rate", _r_grid(full), title="Fig 9(a): LG vs r (clique, log-normal)")


def fig09b(full: bool = False, runs: int | None = None) -> SeriesSet:
    """Fig 9(b): aggregate LG vs r — star mode, log-normal skills."""
    spec = base_spec(full=full, runs=runs, mode="star", distribution="lognormal")
    return sweep(spec, "rate", _r_grid(full), title="Fig 9(b): LG vs r (star, log-normal)")


# --------------------------------------------------------------------------
# Figure 10: learning gain relative to Random-Assignment
# --------------------------------------------------------------------------


def _ratio_over_random(
    x_values: Sequence[float],
    run_one: Callable[[str, str, float, int], float],
    runs: int,
    *,
    title: str,
    x_label: str,
) -> SeriesSet:
    """Build DyGroups/Random ratio series, one per interaction mode.

    ``run_one(algorithm, mode, x, run_index)`` returns a total gain.
    """
    series = []
    for mode, algo in (("star", "dygroups-star"), ("clique", "dygroups-clique")):
        ratios = []
        for x in x_values:
            per_run = []
            for run_index in range(runs):
                dygroups_gain = run_one(algo, mode, x, run_index)
                random_gain = run_one("random", mode, x, run_index)
                per_run.append(dygroups_gain / random_gain)
            ratios.append(float(np.mean(per_run)))
        series.append(
            Series(label=f"{algo}/random", x=tuple(float(v) for v in x_values), y=tuple(ratios))
        )
    return SeriesSet(title=title, x_label=x_label, y_label="gain ratio over random", series=tuple(series))


def fig10a(full: bool = False, runs: int | None = None) -> SeriesSet:
    """Fig 10(a): gain ratio over Random-Assignment, varying α.

    Paper grid: α ∈ {2, 4, 8, 16, 32, 64} at fixed n (10⁴ in the paper).
    Uses k = 50: with only a handful of huge groups even random groupings
    contain strong teachers and the ratio collapses toward 1; moderate
    group counts reproduce the paper's "up to 30% higher gain" headline
    (see EXPERIMENTS.md).
    """
    n = 10_000 if full else 1_000
    effective_runs = runs if runs is not None else (10 if full else 3)
    spec = ExperimentSpec(n=n, k=50, rate=0.5, algorithms=("random",), runs=1)

    def run_one(algorithm: str, mode: str, alpha: float, run_index: int) -> float:
        skills = draw_skills(spec, run_index)
        policy = make_policy(algorithm, mode=mode, rate=spec.rate)
        result = simulate(
            policy,
            skills,
            k=spec.k,
            alpha=int(alpha),
            mode=mode,
            rate=spec.rate,
            seed=spec.seed + run_index,
            record_groupings=False,
        )
        return result.total_gain

    return _ratio_over_random(
        (2, 4, 8, 16, 32, 64),
        run_one,
        effective_runs,
        title=f"Fig 10(a): DyGroups/Random gain ratio vs alpha (n={n})",
        x_label="alpha",
    )


def fig10b(full: bool = False, runs: int | None = None) -> SeriesSet:
    """Fig 10(b): gain ratio over Random-Assignment, varying n, α = 10.

    Paper grid: n ∈ {10, 10², …, 10⁶}; the bench preset stops at 10⁴.
    """
    n_values: tuple[int, ...] = (10, 100, 1_000, 10_000, 100_000, 1_000_000) if full else (
        10,
        100,
        1_000,
        10_000,
    )
    effective_runs = runs if runs is not None else (10 if full else 3)
    spec = ExperimentSpec(n=10, k=5, rate=0.5, algorithms=("random",), runs=1)

    def run_one(algorithm: str, mode: str, n: float, run_index: int) -> float:
        local = spec.with_(n=int(n))
        skills = draw_skills(local, run_index)
        policy = make_policy(algorithm, mode=mode, rate=local.rate)
        result = simulate(
            policy,
            skills,
            k=local.k,
            alpha=10,
            mode=mode,
            rate=local.rate,
            seed=local.seed + run_index,
            record_groupings=False,
        )
        return result.total_gain

    return _ratio_over_random(
        n_values,
        run_one,
        effective_runs,
        title="Fig 10(b): DyGroups/Random gain ratio vs n (alpha=10)",
        x_label="n",
    )


# --------------------------------------------------------------------------
# Figure 11: inequality (fairness) analysis
# --------------------------------------------------------------------------


def fig11(full: bool = False, runs: int | None = None) -> tuple[SeriesSet, SeriesSet]:
    """Fig 11: inequality of DyGroups-Star vs Random-Assignment, r = 0.1.

    Returns ``(ratios, measures)``:

    * *ratios* — CV and Gini of DyGroups-Star divided by those of
      Random-Assignment, per α checkpoint (Fig 11(a));
    * *measures* — the raw CV and Gini values of both methods
      (Fig 11(b)).
    """
    n = 10_000 if full else 1_000
    effective_runs = runs if runs is not None else (10 if full else 3)
    checkpoints = (2, 4, 8, 16, 32, 64)
    max_alpha = checkpoints[-1]
    spec = ExperimentSpec(n=n, k=5, rate=0.1, algorithms=("random",), runs=1)

    metric_values: dict[tuple[str, str], list[list[float]]] = {
        (algo, metric): [[] for _ in checkpoints]
        for algo in ("dygroups-star", "random")
        for metric in ("cv", "gini")
    }
    for run_index in range(effective_runs):
        skills = draw_skills(spec, run_index)
        for algo in ("dygroups-star", "random"):
            policy = make_policy(algo, mode="star", rate=spec.rate)
            result = simulate(
                policy,
                skills,
                k=spec.k,
                alpha=max_alpha,
                mode="star",
                rate=spec.rate,
                seed=spec.seed + run_index,
                record_groupings=False,
                record_history=True,
            )
            assert result.skill_history is not None
            for ci, alpha in enumerate(checkpoints):
                snapshot = result.skill_history[alpha]
                metric_values[(algo, "cv")][ci].append(coefficient_of_variation(snapshot))
                metric_values[(algo, "gini")][ci].append(gini(snapshot))

    def mean_series(algo: str, metric: str, label: str) -> Series:
        ys = tuple(float(np.mean(vals)) for vals in metric_values[(algo, metric)])
        return Series(label=label, x=tuple(float(a) for a in checkpoints), y=ys)

    cv_dy = mean_series("dygroups-star", "cv", "CV-dygroups-star")
    cv_rand = mean_series("random", "cv", "CV-random")
    gini_dy = mean_series("dygroups-star", "gini", "Gini-dygroups-star")
    gini_rand = mean_series("random", "gini", "Gini-random")

    ratios = SeriesSet(
        title=f"Fig 11(a): inequality ratios over Random-Assignment (star, r=0.1, n={n})",
        x_label="alpha",
        y_label="ratio",
        series=(
            cv_dy.ratio_to(cv_rand, label="CV ratio"),
            gini_dy.ratio_to(gini_rand, label="Gini ratio"),
        ),
    )
    measures = SeriesSet(
        title=f"Fig 11(b): inequality measures (star, r=0.1, n={n})",
        x_label="alpha",
        y_label="CV / Gini",
        series=(cv_dy, cv_rand, gini_dy, gini_rand),
    )
    return ratios, measures


# --------------------------------------------------------------------------
# Figures 12-13: running time
# --------------------------------------------------------------------------


def _runtime_spec(full: bool, runs: int | None, mode: str) -> ExperimentSpec:
    return ExperimentSpec(
        n=10_000 if full else 2_000,
        k=5,
        alpha=5,
        rate=0.5,
        mode=mode,
        distribution="lognormal",
        algorithms=("dygroups", "random", "percentile", "lpa", "kmeans"),
        runs=runs if runs is not None else 3,
        lpa_max_evals=_BENCH_LPA_EVALS,
    )


def fig12(full: bool = False, runs: int | None = None) -> tuple[SeriesSet, SeriesSet]:
    """Fig 12: running time, star mode, log-normal — (a) vary n, (b) vary k."""
    spec = _runtime_spec(full, runs, "star")
    by_n = sweep(
        spec,
        "n",
        (100, 1_000, 10_000, 100_000) if full else (100, 1_000, 10_000),
        title="Fig 12(a): runtime vs n (star, log-normal)",
        y_label="seconds per run",
        metric="runtime",
    )
    by_k = sweep(
        spec.with_(n=10_000),
        "k",
        (5, 50, 500, 5_000) if full else (5, 50, 500),
        title="Fig 12(b): runtime vs k (star, log-normal)",
        y_label="seconds per run",
        metric="runtime",
    )
    return by_n, by_k


def fig13(full: bool = False, runs: int | None = None) -> tuple[SeriesSet, SeriesSet]:
    """Fig 13: running time, clique mode, log-normal — (a) vary n, (b) vary k."""
    spec = _runtime_spec(full, runs, "clique")
    by_n = sweep(
        spec,
        "n",
        (100, 1_000, 10_000, 100_000) if full else (100, 1_000, 10_000),
        title="Fig 13(a): runtime vs n (clique, log-normal)",
        y_label="seconds per run",
        metric="runtime",
    )
    by_k = sweep(
        spec.with_(n=10_000),
        "k",
        (5, 50, 500, 5_000) if full else (5, 50, 500),
        title="Fig 13(b): runtime vs k (clique, log-normal)",
        y_label="seconds per run",
        metric="runtime",
    )
    return by_n, by_k


#: Figure registry for the CLI; values produce SeriesSet or tuples thereof.
FIGURES: dict[str, Callable[..., object]] = {
    "fig05a": fig05a,
    "fig05b": fig05b,
    "fig06a": fig06a,
    "fig06b": fig06b,
    "fig07a": fig07a,
    "fig07b": fig07b,
    "fig08a": fig08a,
    "fig08b": fig08b,
    "fig09a": fig09a,
    "fig09b": fig09b,
    "fig10a": fig10a,
    "fig10b": fig10b,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
}
