"""Experiment specifications.

An :class:`ExperimentSpec` captures one synthetic-data configuration from
Section V-B: population size, groups, rounds, learning rate, interaction
mode, initial-skill distribution, the algorithms to compare, and how many
independent runs to average ("In experiments involving randomness, we
average over 10 different runs").

The paper's default parameters (Section V-B2) are the dataclass defaults:
``k = 5``, ``n = 10000``, ``r = 0.5``, ``α = 5``, star mode, log-normal
initial skills.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro._validation import (
    require_divisible_groups,
    require_learning_rate,
    require_positive_int,
)
from repro.core.interactions import get_mode
from repro.data.distributions import DISTRIBUTIONS
from repro.engine.select import ENGINES
from repro.registry import PolicySpec

__all__ = ["ExperimentSpec", "DEFAULT_ALGORITHMS"]

#: The algorithm line-up of the paper's effectiveness figures.
DEFAULT_ALGORITHMS: tuple[str, ...] = ("dygroups", "random", "percentile", "lpa", "kmeans")


@dataclass(frozen=True)
class ExperimentSpec:
    """One synthetic-data experiment configuration.

    Attributes:
        n: number of participants.
        k: number of groups per round.
        alpha: number of rounds.
        rate: linear learning rate ``r``.
        mode: interaction mode name.
        distribution: initial-skill distribution name (see
            :data:`repro.data.distributions.DISTRIBUTIONS`).
        algorithms: registry policy specs to compare — a name or a
            ``"name:key=value;key=value"`` spec string with typed params
            (see :mod:`repro.registry`); extension policies included.
        runs: independent repetitions to average over.
        seed: base seed; run ``i`` uses ``seed + i``.
        lpa_max_evals: optional evaluation budget for the search-based
            baselines (legacy knob; filled into ``lpa``/``annealing``
            entries that do not set ``max_evals``/``steps`` inline —
            prefer the spec-param form).
        engine: simulation engine selection — ``"auto"`` stacks the
            spec's runs through :func:`repro.core.simulate_many` for
            vectorizable algorithms and falls back per run otherwise,
            ``"scalar"`` forces the per-run loop, ``"vectorized"``
            additionally *requires* every algorithm to vectorize.
            Results are bit-identical across engines.
        workers: process-parallel worker count for the runner; ``0``
            defers to the ``REPRO_WORKERS`` environment variable (and
            runs serial when that is unset), ``1`` forces serial.
            Results are bit-identical to serial execution.
        shards: shard count for the sharded engine path (per-shard
            partial sorts with bounded memory); ``0`` defers to the
            ``REPRO_SHARDS`` environment variable.  With
            ``engine="auto"`` a positive resolved count makes shardable
            algorithms run sharded; with ``engine="sharded"`` a zero
            count auto-sizes.  Results are bit-identical across engines.
    """

    n: int = 10_000
    k: int = 5
    alpha: int = 5
    rate: float = 0.5
    mode: str = "star"
    distribution: str = "lognormal"
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS
    runs: int = 10
    seed: int = 7
    lpa_max_evals: int | None = None
    engine: str = "auto"
    workers: int = 0
    shards: int = 0

    def __post_init__(self) -> None:
        require_divisible_groups(self.n, self.k)
        require_positive_int(self.alpha, name="alpha")
        require_learning_rate(self.rate, name="rate")
        require_positive_int(self.runs, name="runs")
        get_mode(self.mode)
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; expected one of {ENGINES}")
        if not isinstance(self.workers, int) or isinstance(self.workers, bool) or self.workers < 0:
            raise ValueError(f"workers must be a non-negative int, got {self.workers!r}")
        if not isinstance(self.shards, int) or isinstance(self.shards, bool) or self.shards < 0:
            raise ValueError(f"shards must be a non-negative int, got {self.shards!r}")
        if self.distribution not in DISTRIBUTIONS:
            raise ValueError(
                f"unknown distribution {self.distribution!r}; expected one of {sorted(DISTRIBUTIONS)}"
            )
        if not self.algorithms:
            raise ValueError("algorithms must be non-empty")
        # Validate every entry against the unified registry: names
        # (including extensions) and inline typed params, e.g.
        # "percentile:p=0.9".  The parse error names the offending key.
        for entry in self.algorithms:
            PolicySpec.parse(entry)

    def with_(self, **overrides: Any) -> "ExperimentSpec":
        """A copy of this spec with fields replaced (validated again)."""
        return replace(self, **overrides)
