"""One-call reproduction: run every figure and grade the paper's claims.

:func:`reproduce` executes the figure builders (bench-sized by default),
evaluates the corresponding shape claims from :mod:`repro.claims`, and
returns a :class:`ReproductionReport` — the programmatic equivalent of
running the benchmark harness, for users who want the verdicts inside a
Python session (or a CI job) rather than a pytest run.

The synthetic-figure claims graded here:

* Figures 5/7/8/9 — gain monotone in n / α / r, DyGroups wins;
* Figure 6 — gain monotone decreasing in k, DyGroups wins;
* Figure 10(a) — DyGroups-Star/random ratio > 1 at small α, decaying.

The human-experiment and inequality figures need richer data than a
single :class:`~repro.metrics.series.SeriesSet`; they are covered by the
benches (see docs/benchmarks.md) and excluded here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.claims import ClaimCheck, monotone_trend, observation_2_dygroups_wins
from repro.experiments import figures as figure_builders
from repro.metrics.series import SeriesSet

__all__ = ["FigureVerdict", "ReproductionReport", "reproduce", "SYNTHETIC_FIGURES"]

#: Figure id -> (builder name, trend direction for the dygroups series).
SYNTHETIC_FIGURES: dict[str, tuple[str, str]] = {
    "fig05a": ("fig05a", "increasing"),
    "fig05b": ("fig05b", "increasing"),
    "fig06a": ("fig06a", "decreasing"),
    "fig06b": ("fig06b", "decreasing"),
    "fig07a": ("fig07a", "increasing"),
    "fig07b": ("fig07b", "increasing"),
    "fig08a": ("fig08a", "increasing"),
    "fig08b": ("fig08b", "increasing"),
    "fig09a": ("fig09a", "increasing"),
    "fig09b": ("fig09b", "increasing"),
}


@dataclass(frozen=True)
class FigureVerdict:
    """One figure's reproduction outcome.

    Attributes:
        figure: figure id (e.g. ``"fig05a"``).
        checks: the claim checks evaluated on the regenerated series.
        series: the regenerated data.
    """

    figure: str
    checks: tuple[ClaimCheck, ...]
    series: SeriesSet

    @property
    def holds(self) -> bool:
        """Whether every claim for this figure passed."""
        return all(check.holds for check in self.checks)


@dataclass(frozen=True)
class ReproductionReport:
    """All figure verdicts from one :func:`reproduce` run."""

    verdicts: tuple[FigureVerdict, ...]

    @property
    def all_hold(self) -> bool:
        """Whether every figure reproduced."""
        return all(v.holds for v in self.verdicts)

    def summary(self) -> str:
        """Human-readable per-figure PASS/FAIL summary."""
        lines = ["Reproduction report", "==================="]
        for verdict in self.verdicts:
            lines.append(f"{'PASS' if verdict.holds else 'FAIL'}  {verdict.figure}")
            for check in verdict.checks:
                lines.append(f"      {check}")
        lines.append("")
        lines.append(
            "ALL FIGURES REPRODUCED" if self.all_hold else "SOME FIGURES DID NOT REPRODUCE"
        )
        return "\n".join(lines)


def _grade(figure: str, direction: str, series_set: SeriesSet) -> FigureVerdict:
    dygroups = series_set.get("dygroups")
    checks = [
        monotone_trend(
            series_set.x,
            dygroups.y,
            direction=direction,
            claim=f"{figure}: gain {direction} in {series_set.x_label}",
        ),
        observation_2_dygroups_wins(
            {label: series_set.get(label).y[-1] for label in series_set.labels()},
            tie_tolerance=0.0,
        ),
    ]
    return FigureVerdict(figure=figure, checks=tuple(checks), series=series_set)


def reproduce(
    *,
    full: bool = False,
    runs: int | None = None,
    builders: Mapping[str, Callable[..., SeriesSet]] | None = None,
) -> ReproductionReport:
    """Regenerate the synthetic effectiveness figures and grade them.

    Args:
        full: use the paper-sized grids (slow).
        runs: override the number of averaged runs per grid point.
        builders: override the figure builders (dependency injection for
            tests); maps builder name to a callable with the standard
            ``(full=..., runs=...)`` signature.

    Bench-sized, this takes minutes; ``full=True`` takes hours.
    """
    verdicts = []
    for figure, (builder_name, direction) in SYNTHETIC_FIGURES.items():
        if builders is not None:
            builder = builders[builder_name]
        else:
            builder = getattr(figure_builders, builder_name)
        series_set = builder(full=full, runs=runs)
        verdicts.append(_grade(figure, direction, series_set))
    return ReproductionReport(verdicts=tuple(verdicts))
