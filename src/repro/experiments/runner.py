"""Experiment runner: execute a spec for every algorithm, average over runs.

The runner owns seeding discipline: run ``i`` of a spec derives all of its
randomness (skill draw + policy randomness) from ``spec.seed + i``, and
every algorithm sees the *same* initial skills in run ``i`` — a paired
design that removes skill-draw variance from algorithm comparisons, as in
the paper's matched-population protocol.

Engine routing: with ``spec.engine`` ``"auto"`` (the default) the runs of
each vectorizable algorithm are stacked into one
:func:`repro.core.vectorized.simulate_many` call — a handful of ``(R, n)``
numpy kernels per round instead of ``R`` Python loops — while every other
algorithm keeps the per-run scalar path.  Seeding is unchanged (trial
``i`` still uses ``spec.seed + i``), so outcomes are **bit-identical**
across engines; only the timing fields are measured differently (a
stacked round is amortized uniformly over its trials).

Process parallelism: ``run_spec(spec, workers=N)`` (or ``spec.workers`` /
the ``REPRO_WORKERS`` environment variable) fans the runs out over worker
processes via :mod:`repro.experiments.parallel`; results are merged in
deterministic run order and are bit-identical to serial execution.

Instrumentation: each algorithm run is timed with the
:class:`repro.obs.metrics.Timer` API (whole-run wall-clock) and the
engine's per-round timings (``record_timings=True``) feed
:attr:`AlgorithmOutcome.mean_round_seconds`; when observability is
configured (:mod:`repro.obs.runtime`), the runner additionally emits
``spec_start``/``spec_end`` journal events and wraps the work in spans.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.gain_functions import LinearGain
from repro.core.simulation import GroupingPolicy, SimulationResult, simulate
from repro.core.vectorized import simulate_many
from repro.data.distributions import get_distribution
from repro.engine.select import select_engine
from repro.experiments.spec import ExperimentSpec
from repro.obs import runtime as _obs
from repro.obs import trace as _trace
from repro.obs.metrics import Timer
from repro.registry import PolicySpec, build_policy

__all__ = ["AlgorithmOutcome", "SpecOutcome", "run_spec", "draw_skills"]

_log = logging.getLogger("repro.experiments.runner")


@dataclass(frozen=True)
class AlgorithmOutcome:
    """Averaged results for one algorithm under one spec.

    Attributes:
        name: algorithm name.
        mean_total_gain: total gain averaged over runs.
        std_total_gain: sample standard deviation over runs (0 if 1 run).
        mean_round_gains: per-round gains averaged over runs (length α).
        mean_runtime_seconds: wall-clock seconds per run, averaged.
        mean_round_seconds: per-round wall-clock seconds averaged over
            runs (length α).
    """

    name: str
    mean_total_gain: float
    std_total_gain: float
    mean_round_gains: tuple[float, ...]
    mean_runtime_seconds: float
    mean_round_seconds: tuple[float, ...] = ()


@dataclass(frozen=True)
class SpecOutcome:
    """All algorithms' averaged results for one spec."""

    spec: ExperimentSpec
    outcomes: dict[str, AlgorithmOutcome]

    def gain_of(self, name: str) -> float:
        """Mean total gain of the named algorithm."""
        return self.outcomes[name].mean_total_gain

    def ranking(self) -> list[str]:
        """Algorithm names sorted by mean total gain, best first."""
        return sorted(self.outcomes, key=lambda a: self.outcomes[a].mean_total_gain, reverse=True)


def draw_skills(spec: ExperimentSpec, run_index: int) -> np.ndarray:
    """The initial skill array of run ``run_index`` of ``spec``."""
    generate = get_distribution(spec.distribution)
    return generate(spec.n, seed=spec.seed + run_index)


def _policy_for(spec: ExperimentSpec, entry: str) -> GroupingPolicy:
    """Build the policy for one ``spec.algorithms`` entry via the registry.

    ``spec.lpa_max_evals`` back-fills the search-budget param of entries
    that do not set it inline (the legacy knob bridge).
    """
    policy_spec = PolicySpec.parse(entry).with_defaults(
        max_evals=spec.lpa_max_evals, steps=spec.lpa_max_evals
    )
    return build_policy(policy_spec, mode=spec.mode, rate=spec.rate)


@dataclass
class _RunsData:
    """Per-algorithm accumulators for a set of runs (picklable).

    Lists are ordered by run index; chunked parallel execution produces
    one ``_RunsData`` per chunk and concatenates them in run order, so
    the merged lists are exactly what serial execution would build.
    """

    totals: dict[str, list[float]] = field(default_factory=dict)
    rounds: dict[str, list[np.ndarray]] = field(default_factory=dict)
    round_times: dict[str, list[np.ndarray]] = field(default_factory=dict)
    runtime_totals: dict[str, float] = field(default_factory=dict)
    raw: dict[str, list[SimulationResult]] = field(default_factory=dict)

    @classmethod
    def empty(cls, algorithms: Sequence[str]) -> "_RunsData":
        return cls(
            totals={name: [] for name in algorithms},
            rounds={name: [] for name in algorithms},
            round_times={name: [] for name in algorithms},
            runtime_totals={name: 0.0 for name in algorithms},
            raw={name: [] for name in algorithms},
        )

    def extend(self, other: "_RunsData") -> None:
        """Append ``other``'s runs after this accumulator's (in order)."""
        for name in self.totals:
            self.totals[name].extend(other.totals[name])
            self.rounds[name].extend(other.rounds[name])
            self.round_times[name].extend(other.round_times[name])
            self.runtime_totals[name] += other.runtime_totals[name]
            self.raw[name].extend(other.raw[name])


def _execute_runs(
    spec: ExperimentSpec,
    run_indices: Sequence[int],
    *,
    keep_results: bool = False,
    skills_matrix: "np.ndarray | None" = None,
) -> _RunsData:
    """Execute the given runs of ``spec`` for every algorithm.

    The shared work kernel behind serial :func:`run_spec` and the
    process-parallel executor: a chunk of run indices in, per-algorithm
    accumulators out.  Per-run results depend only on ``spec`` and the
    run index (all randomness derives from ``spec.seed + i`` and the
    batched kernels are row-independent), so any chunking of the index
    set concatenates back to the identical totals.

    ``skills_matrix`` optionally supplies the initial skills — row ``j``
    for run ``run_indices[j]`` — in place of per-run :func:`draw_skills`
    calls.  The parallel executor passes shared-memory views whose rows
    the parent drew with the exact same ``draw_skills``, so outcomes are
    unchanged bit for bit; rows may be read-only (both engines copy
    their inputs before mutating).
    """
    indices = list(run_indices)
    data = _RunsData.empty(spec.algorithms)
    if not indices:
        return data
    if skills_matrix is not None and len(skills_matrix) != len(indices):
        raise ValueError(
            f"skills_matrix has {len(skills_matrix)} rows for {len(indices)} run indices"
        )
    obs = _obs.state()
    # One engine decision per algorithm, through the same select_engine
    # every driver uses: vectorizable entries stack all runs into one
    # simulate_many call (sharded when shards were requested); the rest
    # run the per-run scalar loop.  Under a forcing engine flag,
    # select_engine raises for an incapable entry — the same error
    # simulate_many would have raised.
    scalar_algos: list[str] = []
    stacked_algos: list[str] = []
    for entry in spec.algorithms:
        if spec.engine == "scalar":
            scalar_algos.append(entry)
            continue
        engine_name, _ = select_engine(
            _policy_for(spec, entry),
            mode=spec.mode,
            gain=LinearGain(spec.rate),
            engine=spec.engine,
            shards=spec.shards,
        )
        (scalar_algos if engine_name == "scalar" else stacked_algos).append(entry)
    if scalar_algos:
        _execute_runs_scalar(
            spec, scalar_algos, indices, data,
            keep_results=keep_results, obs=obs, skills_matrix=skills_matrix,
        )
    if stacked_algos:
        _execute_runs_stacked(
            spec, stacked_algos, indices, data,
            keep_results=keep_results, obs=obs, skills_matrix=skills_matrix,
        )
    return data


def _execute_runs_scalar(
    spec: ExperimentSpec,
    algorithms: Sequence[str],
    indices: list[int],
    data: _RunsData,
    *,
    keep_results: bool,
    obs: "_obs.ObsState | None",
    skills_matrix: "np.ndarray | None" = None,
) -> None:
    """Run-major scalar loop (non-vectorizable or forced-scalar entries)."""
    timers = {name: Timer(f"run.{name}") for name in algorithms}
    for j, run_index in enumerate(indices):
        if skills_matrix is not None:
            skills = np.array(skills_matrix[j], dtype=np.float64, copy=True)
        else:
            skills = draw_skills(spec, run_index)
        for name in algorithms:
            policy = _policy_for(spec, name)
            with _trace.span(f"experiments.run:{name}", run_index=run_index):
                with timers[name].time():
                    result = simulate(
                        policy,
                        skills,
                        k=spec.k,
                        alpha=spec.alpha,
                        mode=spec.mode,
                        rate=spec.rate,
                        seed=spec.seed + run_index,
                        record_groupings=False,
                        record_timings=True,
                    )
            _log.debug(
                "run %d %s: total_gain=%.6g in %.4fs",
                run_index, name, result.total_gain, timers[name].values[-1],
            )
            data.totals[name].append(result.total_gain)
            data.rounds[name].append(result.round_gains)
            assert result.round_seconds is not None  # record_timings=True
            data.round_times[name].append(result.round_seconds)
            if obs is not None:
                obs.metrics.counter("experiments.simulations").inc()
            if keep_results:
                data.raw[name].append(result)
    for name in algorithms:
        data.runtime_totals[name] = float(timers[name].total)


def _execute_runs_stacked(
    spec: ExperimentSpec,
    algorithms: Sequence[str],
    indices: list[int],
    data: _RunsData,
    *,
    keep_results: bool,
    obs: "_obs.ObsState | None",
    skills_matrix: "np.ndarray | None" = None,
) -> None:
    """Algorithm-major stacked path (vectorizable entries).

    All runs of one algorithm go through a single
    :func:`~repro.core.vectorized.simulate_many` call.
    """
    if skills_matrix is None:
        skills_matrix = np.stack([draw_skills(spec, i) for i in indices])
    seeds = [spec.seed + i for i in indices]
    for name in algorithms:
        policy = _policy_for(spec, name)
        timer = Timer(f"run.{name}")
        with _trace.span(f"experiments.run_many:{name}", runs=len(indices)):
            with timer.time():
                batch = simulate_many(
                    policy,
                    skills_matrix,
                    k=spec.k,
                    alpha=spec.alpha,
                    mode=spec.mode,
                    rate=spec.rate,
                    seeds=seeds,
                    engine=spec.engine,
                    shards=spec.shards,
                    record_timings=True,
                )
        _log.debug(
            "runs %s %s [%s]: mean_total_gain=%.6g in %.4fs",
            indices, name, batch.engine, float(batch.total_gains.mean()), timer.values[-1],
        )
        totals = batch.total_gains
        for row in range(len(indices)):
            data.totals[name].append(float(totals[row]))
            data.rounds[name].append(batch.round_gains[row].copy())
            assert batch.round_seconds is not None  # record_timings=True
            data.round_times[name].append(batch.round_seconds[row].copy())
            if keep_results:
                data.raw[name].append(batch.result(row))
        data.runtime_totals[name] = float(timer.total)
        if obs is not None:
            obs.metrics.counter("experiments.simulations").inc(len(indices))


def _assemble_outcomes(spec: ExperimentSpec, data: _RunsData) -> dict[str, AlgorithmOutcome]:
    """Fold per-run accumulators into :class:`AlgorithmOutcome` rows.

    Shared by the serial and parallel executors — both feed run-ordered
    lists in, so outcome equality reduces to list equality.
    """
    return {
        name: AlgorithmOutcome(
            name=name,
            mean_total_gain=float(np.mean(data.totals[name])),
            std_total_gain=float(np.std(data.totals[name], ddof=1)) if spec.runs > 1 else 0.0,
            mean_round_gains=tuple(np.mean(np.vstack(data.rounds[name]), axis=0)),
            mean_runtime_seconds=data.runtime_totals[name] / spec.runs,
            mean_round_seconds=tuple(np.mean(np.vstack(data.round_times[name]), axis=0)),
        )
        for name in spec.algorithms
    }


def _emit_spec_start(spec: ExperimentSpec) -> None:
    obs = _obs.state()
    journal = obs.journal if obs is not None else None
    if journal is not None:
        journal.emit(
            "spec_start",
            n=spec.n,
            k=spec.k,
            alpha=spec.alpha,
            rate=spec.rate,
            mode=spec.mode,
            distribution=spec.distribution,
            algorithms=list(spec.algorithms),
            runs=spec.runs,
            seed=spec.seed,
            engine=spec.engine,
            shards=spec.shards,
        )


def _emit_spec_end(outcomes: dict[str, AlgorithmOutcome]) -> None:
    obs = _obs.state()
    journal = obs.journal if obs is not None else None
    if journal is not None:
        journal.emit(
            "spec_end",
            ranking=sorted(outcomes, key=lambda a: outcomes[a].mean_total_gain, reverse=True),
        )


def run_spec(
    spec: ExperimentSpec,
    *,
    keep_results: bool = False,
    workers: int | None = None,
) -> SpecOutcome | tuple[SpecOutcome, dict[str, list[SimulationResult]]]:
    """Run every algorithm of ``spec`` for ``spec.runs`` repetitions.

    Args:
        spec: the experiment configuration (``spec.engine`` selects the
            simulation engine; results are bit-identical either way).
        keep_results: also return the raw per-run
            :class:`SimulationResult` lists (memory-heavy for large n).
        workers: process-parallel worker count; ``None`` defers to
            ``spec.workers`` (and the ``REPRO_WORKERS`` environment
            variable).  Any value ``> 1`` routes through
            :mod:`repro.experiments.parallel`; outcomes are bit-identical
            to serial execution.

    Returns:
        The averaged :class:`SpecOutcome`; with ``keep_results=True``, a
        ``(outcome, results_by_algorithm)`` tuple.
    """
    from repro.experiments import parallel as _parallel

    resolved_workers = _parallel.resolve_workers(workers if workers is not None else spec.workers)
    if resolved_workers > 1 and spec.runs > 1:
        return _parallel.run_spec_parallel(
            spec, keep_results=keep_results, workers=resolved_workers
        )

    _log.info(
        "run_spec: n=%d k=%d alpha=%d rate=%g mode=%s dist=%s runs=%d engine=%s algorithms=%s",
        spec.n, spec.k, spec.alpha, spec.rate, spec.mode,
        spec.distribution, spec.runs, spec.engine, ",".join(spec.algorithms),
    )
    _emit_spec_start(spec)
    with _trace.span("experiments.run_spec", n=spec.n, runs=spec.runs):
        data = _execute_runs(spec, range(spec.runs), keep_results=keep_results)
    outcomes = _assemble_outcomes(spec, data)
    _emit_spec_end(outcomes)
    outcome = SpecOutcome(spec=spec, outcomes=outcomes)
    if keep_results:
        return outcome, data.raw
    return outcome
