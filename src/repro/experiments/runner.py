"""Experiment runner: execute a spec for every algorithm, average over runs.

The runner owns seeding discipline: run ``i`` of a spec derives all of its
randomness (skill draw + policy randomness) from ``spec.seed + i``, and
every algorithm sees the *same* initial skills in run ``i`` — a paired
design that removes skill-draw variance from algorithm comparisons, as in
the paper's matched-population protocol.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.baselines.registry import make_policy
from repro.core.simulation import SimulationResult, simulate
from repro.data.distributions import get_distribution
from repro.experiments.spec import ExperimentSpec

__all__ = ["AlgorithmOutcome", "SpecOutcome", "run_spec", "draw_skills"]


@dataclass(frozen=True)
class AlgorithmOutcome:
    """Averaged results for one algorithm under one spec.

    Attributes:
        name: algorithm name.
        mean_total_gain: total gain averaged over runs.
        std_total_gain: sample standard deviation over runs (0 if 1 run).
        mean_round_gains: per-round gains averaged over runs (length α).
        mean_runtime_seconds: wall-clock seconds per run, averaged.
    """

    name: str
    mean_total_gain: float
    std_total_gain: float
    mean_round_gains: tuple[float, ...]
    mean_runtime_seconds: float


@dataclass(frozen=True)
class SpecOutcome:
    """All algorithms' averaged results for one spec."""

    spec: ExperimentSpec
    outcomes: dict[str, AlgorithmOutcome]

    def gain_of(self, name: str) -> float:
        """Mean total gain of the named algorithm."""
        return self.outcomes[name].mean_total_gain

    def ranking(self) -> list[str]:
        """Algorithm names sorted by mean total gain, best first."""
        return sorted(self.outcomes, key=lambda a: self.outcomes[a].mean_total_gain, reverse=True)


def draw_skills(spec: ExperimentSpec, run_index: int) -> np.ndarray:
    """The initial skill array of run ``run_index`` of ``spec``."""
    generate = get_distribution(spec.distribution)
    return generate(spec.n, seed=spec.seed + run_index)


def run_spec(
    spec: ExperimentSpec,
    *,
    keep_results: bool = False,
) -> SpecOutcome | tuple[SpecOutcome, dict[str, list[SimulationResult]]]:
    """Run every algorithm of ``spec`` for ``spec.runs`` repetitions.

    Args:
        spec: the experiment configuration.
        keep_results: also return the raw per-run
            :class:`SimulationResult` lists (memory-heavy for large n).

    Returns:
        The averaged :class:`SpecOutcome`; with ``keep_results=True``, a
        ``(outcome, results_by_algorithm)`` tuple.
    """
    totals: dict[str, list[float]] = {name: [] for name in spec.algorithms}
    rounds: dict[str, list[np.ndarray]] = {name: [] for name in spec.algorithms}
    runtimes: dict[str, list[float]] = {name: [] for name in spec.algorithms}
    raw: dict[str, list[SimulationResult]] = {name: [] for name in spec.algorithms}

    for run_index in range(spec.runs):
        skills = draw_skills(spec, run_index)
        for name in spec.algorithms:
            policy = make_policy(
                name, mode=spec.mode, rate=spec.rate, lpa_max_evals=spec.lpa_max_evals
            )
            started = time.perf_counter()
            result = simulate(
                policy,
                skills,
                k=spec.k,
                alpha=spec.alpha,
                mode=spec.mode,
                rate=spec.rate,
                seed=spec.seed + run_index,
                record_groupings=False,
            )
            elapsed = time.perf_counter() - started
            totals[name].append(result.total_gain)
            rounds[name].append(result.round_gains)
            runtimes[name].append(elapsed)
            if keep_results:
                raw[name].append(result)

    outcomes = {
        name: AlgorithmOutcome(
            name=name,
            mean_total_gain=float(np.mean(totals[name])),
            std_total_gain=float(np.std(totals[name], ddof=1)) if spec.runs > 1 else 0.0,
            mean_round_gains=tuple(np.mean(np.vstack(rounds[name]), axis=0)),
            mean_runtime_seconds=float(np.mean(runtimes[name])),
        )
        for name in spec.algorithms
    }
    outcome = SpecOutcome(spec=spec, outcomes=outcomes)
    if keep_results:
        return outcome, raw
    return outcome
