"""Experiment runner: execute a spec for every algorithm, average over runs.

The runner owns seeding discipline: run ``i`` of a spec derives all of its
randomness (skill draw + policy randomness) from ``spec.seed + i``, and
every algorithm sees the *same* initial skills in run ``i`` — a paired
design that removes skill-draw variance from algorithm comparisons, as in
the paper's matched-population protocol.

Instrumentation: each algorithm run is timed with the
:class:`repro.obs.metrics.Timer` API (whole-run wall-clock) and the
engine's per-round timings (``record_timings=True``) feed
:attr:`AlgorithmOutcome.mean_round_seconds`; when observability is
configured (:mod:`repro.obs.runtime`), the runner additionally emits
``spec_start``/``spec_end`` journal events and wraps the work in spans.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from repro.baselines.registry import make_policy
from repro.core.simulation import SimulationResult, simulate
from repro.data.distributions import get_distribution
from repro.experiments.spec import ExperimentSpec
from repro.obs import runtime as _obs
from repro.obs import trace as _trace
from repro.obs.metrics import Timer

__all__ = ["AlgorithmOutcome", "SpecOutcome", "run_spec", "draw_skills"]

_log = logging.getLogger("repro.experiments.runner")


@dataclass(frozen=True)
class AlgorithmOutcome:
    """Averaged results for one algorithm under one spec.

    Attributes:
        name: algorithm name.
        mean_total_gain: total gain averaged over runs.
        std_total_gain: sample standard deviation over runs (0 if 1 run).
        mean_round_gains: per-round gains averaged over runs (length α).
        mean_runtime_seconds: wall-clock seconds per run, averaged.
        mean_round_seconds: per-round wall-clock seconds averaged over
            runs (length α).
    """

    name: str
    mean_total_gain: float
    std_total_gain: float
    mean_round_gains: tuple[float, ...]
    mean_runtime_seconds: float
    mean_round_seconds: tuple[float, ...] = ()


@dataclass(frozen=True)
class SpecOutcome:
    """All algorithms' averaged results for one spec."""

    spec: ExperimentSpec
    outcomes: dict[str, AlgorithmOutcome]

    def gain_of(self, name: str) -> float:
        """Mean total gain of the named algorithm."""
        return self.outcomes[name].mean_total_gain

    def ranking(self) -> list[str]:
        """Algorithm names sorted by mean total gain, best first."""
        return sorted(self.outcomes, key=lambda a: self.outcomes[a].mean_total_gain, reverse=True)


def draw_skills(spec: ExperimentSpec, run_index: int) -> np.ndarray:
    """The initial skill array of run ``run_index`` of ``spec``."""
    generate = get_distribution(spec.distribution)
    return generate(spec.n, seed=spec.seed + run_index)


def run_spec(
    spec: ExperimentSpec,
    *,
    keep_results: bool = False,
) -> SpecOutcome | tuple[SpecOutcome, dict[str, list[SimulationResult]]]:
    """Run every algorithm of ``spec`` for ``spec.runs`` repetitions.

    Args:
        spec: the experiment configuration.
        keep_results: also return the raw per-run
            :class:`SimulationResult` lists (memory-heavy for large n).

    Returns:
        The averaged :class:`SpecOutcome`; with ``keep_results=True``, a
        ``(outcome, results_by_algorithm)`` tuple.
    """
    totals: dict[str, list[float]] = {name: [] for name in spec.algorithms}
    rounds: dict[str, list[np.ndarray]] = {name: [] for name in spec.algorithms}
    round_times: dict[str, list[np.ndarray]] = {name: [] for name in spec.algorithms}
    timers: dict[str, Timer] = {name: Timer(f"run.{name}") for name in spec.algorithms}
    raw: dict[str, list[SimulationResult]] = {name: [] for name in spec.algorithms}

    _log.info(
        "run_spec: n=%d k=%d alpha=%d rate=%g mode=%s dist=%s runs=%d algorithms=%s",
        spec.n, spec.k, spec.alpha, spec.rate, spec.mode,
        spec.distribution, spec.runs, ",".join(spec.algorithms),
    )
    obs = _obs.state()
    journal = obs.journal if obs is not None else None
    if journal is not None:
        journal.emit(
            "spec_start",
            n=spec.n,
            k=spec.k,
            alpha=spec.alpha,
            rate=spec.rate,
            mode=spec.mode,
            distribution=spec.distribution,
            algorithms=list(spec.algorithms),
            runs=spec.runs,
            seed=spec.seed,
        )

    with _trace.span("experiments.run_spec", n=spec.n, runs=spec.runs):
        for run_index in range(spec.runs):
            skills = draw_skills(spec, run_index)
            for name in spec.algorithms:
                policy = make_policy(
                    name, mode=spec.mode, rate=spec.rate, lpa_max_evals=spec.lpa_max_evals
                )
                with _trace.span(f"experiments.run:{name}", run_index=run_index):
                    with timers[name].time():
                        result = simulate(
                            policy,
                            skills,
                            k=spec.k,
                            alpha=spec.alpha,
                            mode=spec.mode,
                            rate=spec.rate,
                            seed=spec.seed + run_index,
                            record_groupings=False,
                            record_timings=True,
                        )
                _log.debug(
                    "run %d/%d %s: total_gain=%.6g in %.4fs",
                    run_index + 1, spec.runs, name,
                    result.total_gain, timers[name].values[-1],
                )
                totals[name].append(result.total_gain)
                rounds[name].append(result.round_gains)
                assert result.round_seconds is not None  # record_timings=True
                round_times[name].append(result.round_seconds)
                if obs is not None:
                    obs.metrics.counter("experiments.simulations").inc()
                if keep_results:
                    raw[name].append(result)

    outcomes = {
        name: AlgorithmOutcome(
            name=name,
            mean_total_gain=float(np.mean(totals[name])),
            std_total_gain=float(np.std(totals[name], ddof=1)) if spec.runs > 1 else 0.0,
            mean_round_gains=tuple(np.mean(np.vstack(rounds[name]), axis=0)),
            mean_runtime_seconds=timers[name].mean,
            mean_round_seconds=tuple(np.mean(np.vstack(round_times[name]), axis=0)),
        )
        for name in spec.algorithms
    }
    if journal is not None:
        journal.emit(
            "spec_end",
            ranking=sorted(outcomes, key=lambda a: outcomes[a].mean_total_gain, reverse=True),
        )
    outcome = SpecOutcome(spec=spec, outcomes=outcomes)
    if keep_results:
        return outcome, raw
    return outcome
