"""Engine selection: one place decides scalar vs vectorized.

Every driver that can run a policy on either engine — the stacked-trial
simulator, the experiment runner, the process-parallel executor — used
to repeat the same scattered checks (is the policy vectorizable? does
the mode's batched update exist for this gain function? what did the
user force?).  :func:`select_engine` is the single decision:

* a policy vectorizes when :func:`repro.core.vectorized.vectorize_policy`
  (which consults the unified registry for extension policies) yields a
  batched counterpart;
* the batched *update* exists for Star under any elementwise gain, and
  for Clique only under linear gains (Theorem 3's closed form);
* the ``engine`` flag (``"auto"`` / ``"scalar"`` / ``"vectorized"``)
  resolves preference vs requirement: ``auto`` falls back silently,
  ``vectorized`` raises when unavailable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.gain_functions import GainFunction
from repro.core.interactions import InteractionMode, get_mode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.simulation import GroupingPolicy
    from repro.core.vectorized import VectorizedPolicy

__all__ = ["ENGINES", "select_engine"]

#: Engine selectors accepted by :func:`select_engine`,
#: :func:`repro.core.vectorized.simulate_many`, and the experiment
#: layer: ``"auto"`` vectorizes when possible, the other two force a
#: path.
ENGINES: tuple[str, ...] = ("auto", "scalar", "vectorized")


def select_engine(
    policy: "GroupingPolicy",
    *,
    mode: "str | InteractionMode",
    gain: GainFunction,
    engine: str = "auto",
) -> "tuple[str, VectorizedPolicy | None]":
    """Resolve which engine a ``(policy, mode, gain)`` combination runs.

    Args:
        policy: the scalar grouping policy.
        mode: interaction mode (name or instance).
        gain: the learning-gain function.
        engine: ``"auto"`` (vectorize when the policy and mode allow,
            scalar otherwise), ``"scalar"`` (force the per-trial path),
            or ``"vectorized"`` (raise if not vectorizable).

    Returns:
        ``("vectorized", vec)`` with the batched policy, or
        ``("scalar", None)``.

    Raises:
        ValueError: for an unknown engine flag, or ``engine="vectorized"``
            when no vectorized path exists for the combination.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    resolved_mode = get_mode(mode)
    if engine == "scalar":
        return "scalar", None
    # The import stays local: core.vectorized itself builds on this
    # module, and vectorize_policy pulls in the baselines.
    from repro.core.vectorized import vectorize_policy

    vec = vectorize_policy(policy)
    # Clique needs Theorem 3's closed form, which only exists for linear
    # gain functions; Star vectorizes for any elementwise gain.
    updatable = resolved_mode.name == "star" or gain.is_linear
    if vec is not None and updatable:
        return "vectorized", vec
    if engine == "vectorized":
        reason = (
            f"policy {policy.name!r} has no vectorized form"
            if vec is None
            else f"mode {resolved_mode.name!r} requires a linear gain function to vectorize"
        )
        raise ValueError(f"engine='vectorized' is not available: {reason}")
    return "scalar", None
