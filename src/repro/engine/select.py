"""Engine selection: one place decides scalar vs vectorized vs sharded.

Every driver that can run a policy on either engine — the stacked-trial
simulator, the experiment runner, the process-parallel executor — used
to repeat the same scattered checks (is the policy vectorizable? does
the mode's batched update exist for this gain function? what did the
user force?).  :func:`select_engine` is the single decision:

* a policy vectorizes when :func:`repro.core.vectorized.vectorize_policy`
  (which consults the unified registry for extension policies) yields a
  batched counterpart;
* the batched *update* exists for Star under any elementwise gain, and
  for Clique only under linear gains (Theorem 3's closed form);
* a policy *shards* when its batched counterpart additionally exposes a
  sharded proposal (``shardable`` — the rank-listing family whose
  grouping is a pure function of the descending order);
* the ``engine`` flag (``"auto"`` / ``"scalar"`` / ``"vectorized"`` /
  ``"sharded"``) resolves preference vs requirement: ``auto`` falls
  back silently (and prefers the sharded path only when shards were
  explicitly requested via ``shards=``/``REPRO_SHARDS``), the forcing
  flags raise when unavailable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.gain_functions import GainFunction
from repro.core.interactions import InteractionMode, get_mode
from repro.core.shard import resolve_shards

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.simulation import GroupingPolicy
    from repro.core.vectorized import VectorizedPolicy

__all__ = ["ENGINES", "select_engine"]

#: Engine selectors accepted by :func:`select_engine`,
#: :func:`repro.core.vectorized.simulate_many`, and the experiment
#: layer: ``"auto"`` picks the best available path, the other three
#: force one.
ENGINES: tuple[str, ...] = ("auto", "scalar", "vectorized", "sharded")


def select_engine(
    policy: "GroupingPolicy",
    *,
    mode: "str | InteractionMode",
    gain: GainFunction,
    engine: str = "auto",
    shards: "int | None" = None,
) -> "tuple[str, VectorizedPolicy | None]":
    """Resolve which engine a ``(policy, mode, gain)`` combination runs.

    Args:
        policy: the scalar grouping policy.
        mode: interaction mode (name or instance).
        gain: the learning-gain function.
        engine: ``"auto"`` (shard when explicitly requested and possible,
            else vectorize when the policy and mode allow, scalar
            otherwise), ``"scalar"`` (force the per-trial path),
            ``"vectorized"`` (raise if not vectorizable), or
            ``"sharded"`` (raise if not shardable).
        shards: requested shard count for ``"auto"`` preference; ``0`` /
            ``None`` defers to ``REPRO_SHARDS``.  Auto only prefers the
            sharded path when the resolved count is positive — sharding
            is bit-identical but not free at small ``n``.

    Returns:
        ``("sharded", vec)`` or ``("vectorized", vec)`` with the batched
        policy, or ``("scalar", None)``.

    Raises:
        ValueError: for an unknown engine flag, or a forcing flag whose
            path does not exist for the combination.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    resolved_mode = get_mode(mode)
    if engine == "scalar":
        return "scalar", None
    # The import stays local: core.vectorized itself builds on this
    # module, and vectorize_policy pulls in the baselines.
    from repro.core.vectorized import vectorize_policy

    vec = vectorize_policy(policy)
    # Clique needs Theorem 3's closed form, which only exists for linear
    # gain functions; Star vectorizes for any elementwise gain.
    updatable = resolved_mode.name == "star" or gain.is_linear
    shardable = vec is not None and updatable and getattr(vec, "shardable", False)
    if engine == "sharded":
        if shardable:
            return "sharded", vec
        if vec is None:
            reason = f"policy {policy.name!r} has no vectorized form"
        elif not updatable:
            reason = f"mode {resolved_mode.name!r} requires a linear gain function to vectorize"
        else:
            reason = (
                f"policy {policy.name!r} has no sharded proposal "
                "(its grouping is not a pure function of the descending order)"
            )
        raise ValueError(f"engine='sharded' is not available: {reason}")
    if vec is not None and updatable:
        if engine == "auto" and shardable and resolve_shards(shards) > 0:
            return "sharded", vec
        return "vectorized", vec
    if engine == "vectorized":
        reason = (
            f"policy {policy.name!r} has no vectorized form"
            if vec is None
            else f"mode {resolved_mode.name!r} requires a linear gain function to vectorize"
        )
        raise ValueError(f"engine='vectorized' is not available: {reason}")
    return "scalar", None
