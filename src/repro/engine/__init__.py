"""The round-step engine: Algorithm 1's inner loop, implemented once.

Every layer of the reproduction advances cohorts by the same three-beat
round step — *propose* a grouping, *update* skills through the
interaction mode, *account* the round's learning gain — but the loop
used to live in four hand-written copies (the scalar simulator, the
stacked-trial simulator, the serving sessions, and the experiment
runner's fallbacks).  This package is the single implementation:

* :class:`~repro.engine.kernel.RoundKernel` — the scalar round step,
  carrying the observability spans, journal events, metrics, and
  runtime-contract hooks exactly once;
* :mod:`repro.engine.stacked` — the batched counterpart: one
  ``(R, n)`` round step advancing a whole stack of trials (or a whole
  wave of served cohorts) with a handful of vectorized numpy calls,
  plus the batched Star/Clique update kernels;
* :func:`~repro.engine.select.select_engine` — the one place that
  decides whether a ``(policy, mode, gain)`` combination runs the
  scalar or the vectorized path.

Drivers — :func:`repro.core.simulation.simulate`,
:func:`repro.core.vectorized.simulate_many`, the serving layer
(:mod:`repro.serve`), and the experiment runner — own looping, seeding,
and recording; the kernels own the step.  Bit-identity across drivers
is a hard design constraint, pinned by the hypothesis properties in
``tests/properties``.
"""

from repro.engine.kernel import RoundKernel, StepOutcome
from repro.engine.select import select_engine
from repro.engine.stacked import (
    StackedRoundKernel,
    grouping_to_members,
    update_clique_many,
    update_star_many,
)

__all__ = [
    "RoundKernel",
    "StackedRoundKernel",
    "StepOutcome",
    "grouping_to_members",
    "select_engine",
    "update_clique_many",
    "update_star_many",
]
