"""The stacked round-step kernel and the batched skill-update kernels.

The batched counterpart of :mod:`repro.engine.kernel`: one
:meth:`StackedRoundKernel.step` advances ``R`` independent trials (or a
wave of same-configuration served cohorts) by one round with a handful
of vectorized numpy calls — one ``(R, n)`` proposal, one batched update,
one row-wise gain reduction.

Bit-identity with the scalar kernel is a hard design constraint, pinned
by hypothesis properties in ``tests/properties``: every elementwise
float operation here is the same operation, on the same operands, as its
scalar counterpart — gathering values into a different layout does not
change what is added to what.  Clique tie order matches the scalar
``np.lexsort((-skills, labels))`` convention via a two-pass stable sort
(by member index, then by descending value).

The update kernels (:func:`update_star_many`, :func:`update_clique_many`)
moved here from ``repro.core.vectorized`` so the serving scheduler can
batch full round steps without importing the simulation driver; the old
module re-exports them for compatibility.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro._validation import require_divisible_groups
from repro.analysis import contracts as _contracts
from repro.core.gain_functions import GainFunction
from repro.core.grouping import Grouping
from repro.core.interactions import InteractionMode, get_mode
from repro.core.shard import ShardPlan, apply_update_sharded
from repro.obs import runtime as _obs
from repro.obs import trace as _trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.vectorized import VectorizedPolicy

__all__ = [
    "StackedRoundKernel",
    "StackedStepOutcome",
    "apply_update_many",
    "check_members_are_permutations",
    "grouping_to_members",
    "update_clique_many",
    "update_star_many",
]


def _check_members(skills: np.ndarray, members: np.ndarray, k: int) -> int:
    """Validate a members matrix against a skill matrix; returns group size."""
    if skills.ndim != 2:
        raise ValueError(f"skills must be 2-D (trials, n), got shape {skills.shape}")
    if members.shape != skills.shape:
        raise ValueError(
            f"members matrix shape {members.shape} does not match skills shape {skills.shape}"
        )
    return require_divisible_groups(skills.shape[1], k)


def update_star_many(
    skills: np.ndarray, members: np.ndarray, k: int, gain: GainFunction
) -> np.ndarray:
    """Batched ``UPDATE-SKILLS-STAR`` over a ``(R, n)`` skill matrix.

    ``members`` is a members matrix in the stacked layout (group ``g``
    in columns ``[g·t, (g+1)·t)``).  Per trial this performs exactly the
    scalar :func:`repro.core.update.update_star` arithmetic: every member
    adds ``gain(teacher − s)`` with the teacher the group's row-wise max.
    """
    t = _check_members(skills, members, k)
    trials, n = skills.shape
    group_vals = np.take_along_axis(skills, members, axis=1).reshape(trials, k, t)
    teachers = np.max(group_vals, axis=2, keepdims=True)
    updated_groups = group_vals + np.asarray(gain(teachers - group_vals), dtype=np.float64)
    out = np.empty_like(skills)
    np.put_along_axis(out, members, updated_groups.reshape(trials, n), axis=1)
    return out


def update_clique_many(
    skills: np.ndarray, members: np.ndarray, k: int, gain: GainFunction
) -> np.ndarray:
    """Batched ``UPDATE-SKILLS-CLIQUE`` (Theorem 3) for linear gains.

    Sorts each group of each trial by descending skill — ties broken by
    ascending participant index, reproducing the scalar engine's
    ``np.lexsort((-skills, labels))`` via a two-pass stable sort — then
    applies the prefix-sum increment ``r·(c_i − i·s_{i+1}) / i`` with the
    same float operations and operand order as the scalar kernel.

    Raises:
        ValueError: for a non-linear gain function (no closed form; use
            the scalar engine's naive path).
    """
    t = _check_members(skills, members, k)
    if not gain.is_linear:
        raise ValueError("update_clique_many requires a linear gain function")
    rate: float = gain.rate  # type: ignore[attr-defined]
    trials, n = skills.shape
    mem = members.reshape(trials, k, t)
    vals = np.take_along_axis(skills, members, axis=1).reshape(trials, k, t)
    # Two-pass stable sort == lexsort((-value, member)): order members
    # ascending first so the stable by-value pass breaks ties by index.
    by_index = np.argsort(mem, axis=2, kind="stable")
    mem = np.take_along_axis(mem, by_index, axis=2)
    vals = np.take_along_axis(vals, by_index, axis=2)
    # Positive doubles order identically to their int64 bit views, and the
    # stable sort on integer keys is radix — same tie-keeping permutation.
    if vals.size and np.all(vals > 0.0):
        by_value = np.argsort(-np.ascontiguousarray(vals).view(np.int64), axis=2, kind="stable")
    else:
        by_value = np.argsort(-vals, axis=2, kind="stable")
    mem = np.take_along_axis(mem, by_value, axis=2)
    vals = np.take_along_axis(vals, by_value, axis=2)
    increment = np.zeros_like(vals)
    if t > 1:
        prefix = np.cumsum(vals, axis=2)
        ranks = np.arange(1, t, dtype=np.float64)
        increment[:, :, 1:] = rate * (prefix[:, :, :-1] - ranks * vals[:, :, 1:]) / ranks
    out = np.empty_like(skills)
    np.put_along_axis(out, mem.reshape(trials, n), (vals + increment).reshape(trials, n), axis=1)
    return out


def apply_update_many(
    skills: np.ndarray, members: np.ndarray, k: int, mode: InteractionMode, gain: GainFunction
) -> np.ndarray:
    """Dispatch the batched skill update for a mode.

    Raises:
        ValueError: for a mode without a batched update, or clique with a
            non-linear gain.
    """
    if mode.name == "star":
        return update_star_many(skills, members, k, gain)
    if mode.name == "clique":
        return update_clique_many(skills, members, k, gain)
    raise ValueError(f"mode {mode.name!r} has no batched skill update")


def grouping_to_members(grouping: Grouping) -> np.ndarray:
    """Flatten a grouping to the stacked members layout.

    Group ``g`` occupies the contiguous slice ``[g·t, (g+1)·t)`` of the
    returned ``(n,)`` index array, members in the grouping's own order —
    exactly the row layout :func:`update_star_many` /
    :func:`update_clique_many` consume, so a served cohort's cached
    grouping feeds the batched update without re-deriving ranks.

    :class:`~repro.core.grouping.Grouping` guarantees equal-sized groups
    that tile ``0 … n−1``, so one rectangular ``np.array`` over the group
    tuples replaces the per-group asarray + concatenate round-trip — the
    flat twin of the ``Grouping.from_members`` fast path.
    """
    return np.array(tuple(grouping), dtype=np.intp).reshape(-1)


def check_members_are_permutations(members: np.ndarray) -> None:
    """Contract: every members-matrix row is a permutation of ``0 … n−1``."""
    n = members.shape[1]
    expected = np.arange(n, dtype=members.dtype)
    if not np.array_equal(np.sort(members, axis=1), np.broadcast_to(expected, members.shape)):
        raise _contracts.ContractViolation(
            "vectorized proposal violated the partition contract: "
            "a members-matrix row is not a permutation of 0..n-1"
        )


@dataclass(frozen=True)
class StackedStepOutcome:
    """What one stacked round step produced.

    Attributes:
        members: the ``(R, n)`` members matrix played this round.
        updated: the ``(R, n)`` post-round skill matrix.
        gains: length-``R`` round gains, one per trial.
        seconds: wall-clock duration of the whole stacked step (``None``
            unless the kernel is timing).
    """

    members: np.ndarray
    updated: np.ndarray
    gains: np.ndarray
    seconds: "float | None" = None


class StackedRoundKernel:
    """One configured stacked round step over ``(R, n)`` skill matrices.

    The batched analogue of :class:`repro.engine.kernel.RoundKernel`:
    propose for every trial at once through a
    :class:`~repro.core.vectorized.VectorizedPolicy`, apply the batched
    mode update, and account per-trial gains — with the vectorized
    engine's spans, journal events, metrics, and contract hooks carried
    exactly once.

    Args:
        vec: the batched policy proposing each round.
        mode: interaction mode (name or instance); must have a batched
            update (clique additionally requires a linear gain).
        gain_fn: the learning-gain function.
        shard_plan: run the sharded execution path — per-shard partial
            sorts in the proposal, group-chunked updates — under this
            :class:`~repro.core.shard.ShardPlan`.  ``None`` keeps the
            monolithic vectorized path.  Requires a ``shardable`` policy;
            the outcome is bit-identical either way.
        record_timings: measure per-step wall-clock durations even when
            observability is off.
        instrument: resolve the process-global observability state; the
            serving scheduler passes ``False``.

    Raises:
        ValueError: for a mode/gain combination with no batched update,
            or a shard plan with a non-shardable policy.
    """

    def __init__(
        self,
        vec: "VectorizedPolicy",
        mode: "str | InteractionMode",
        gain_fn: GainFunction,
        *,
        shard_plan: "ShardPlan | None" = None,
        record_timings: bool = False,
        instrument: bool = True,
    ) -> None:
        self.vec = vec
        self.mode = get_mode(mode)
        self.gain_fn = gain_fn
        if self.mode.name == "clique" and not gain_fn.is_linear:
            raise ValueError(
                "mode 'clique' requires a linear gain function to vectorize (Theorem 3)"
            )
        if self.mode.name not in ("star", "clique"):
            raise ValueError(f"mode {self.mode.name!r} has no batched skill update")
        if shard_plan is not None and not getattr(vec, "shardable", False):
            raise ValueError(
                f"policy {vec.name or type(vec).__name__!r} has no sharded proposal; "
                "drop the shard plan or pick a shardable policy"
            )
        self.shard_plan = shard_plan
        self.engine_label = "vectorized" if shard_plan is None else "sharded"
        self.policy_label = vec.name or type(vec).__name__
        obs = _obs.state() if instrument else None
        self.journal = obs.journal if obs is not None else None
        self.metrics = obs.metrics if obs is not None else None
        self.timing = record_timings or obs is not None
        if self.metrics is not None:
            self._rounds_counter = self.metrics.counter("core.rounds")
            self._engine_rounds_counter = self.metrics.counter(
                f"core.rounds.{self.engine_label}"
            )
            self._interactions_counter = self.metrics.counter("core.interactions")
            self._proposals_counter = self.metrics.counter(f"core.proposals.{self.policy_label}")
            self._round_timer = self.metrics.timer("core.round_seconds")
            self._engine_round_timer = self.metrics.timer(
                f"core.round_seconds.{self.engine_label}"
            )

    def step(
        self,
        current: np.ndarray,
        k: int,
        rngs: Sequence[np.random.Generator],
        *,
        round_index: int,
    ) -> StackedStepOutcome:
        """Advance every trial of ``current`` by one round.

        Args:
            current: the ``(R, n)`` pre-round skill matrix (never
                mutated).
            k: number of groups; divides ``n``.
            rngs: one generator per trial, handed to the batched propose.
            round_index: 0-based round number, for journal events.

        Raises:
            ValueError: if the proposal's shape does not match.
            ContractViolation: when runtime contracts are enabled and an
                invariant fails.
        """
        step_started = time.perf_counter() if self.timing else 0.0
        trials = current.shape[0]
        journal = self.journal
        if journal is not None:
            journal.emit(
                "round_start", round=round_index, trials=trials, engine=self.engine_label
            )
        with _trace.span(f"policy.propose_many:{self.policy_label}"):
            if self.shard_plan is None:
                members = self.vec.propose_many(current, k, rngs)
            else:
                members = self.vec.propose_many_sharded(current, k, rngs, self.shard_plan)
        if members.shape != current.shape:
            raise ValueError(
                f"vectorized policy {self.policy_label!r} returned a members matrix of shape "
                f"{members.shape}; expected {current.shape}"
            )
        checking = _contracts.contracts_enabled()
        if checking:
            check_members_are_permutations(members)
        with _trace.span(f"core.skill_update:{self.engine_label}"):
            if self.shard_plan is None:
                updated = apply_update_many(current, members, k, self.mode, self.gain_fn)
            else:
                updated = apply_update_sharded(
                    current, members, k, self.mode, self.gain_fn, self.shard_plan
                )
        gains = np.sum(updated - current, axis=1)
        if checking:
            _contracts.check_gains_nonnegative(gains)
        seconds: "float | None" = None
        if self.timing:
            seconds = time.perf_counter() - step_started
            if self.metrics is not None:
                self._round_timer.observe(seconds)
                self._engine_round_timer.observe(seconds)
        if self.metrics is not None:
            self._rounds_counter.inc(trials)
            self._engine_rounds_counter.inc(trials)
            self._interactions_counter.inc(trials * current.shape[1])
            self._proposals_counter.inc(trials)
        if journal is not None:
            journal.emit(
                "round_end",
                round=round_index,
                gain=float(gains.sum()),
                trials=trials,
                engine=self.engine_label,
            )
        return StackedStepOutcome(members=members, updated=updated, gains=gains, seconds=seconds)

    def __repr__(self) -> str:
        return (
            f"StackedRoundKernel(policy={self.policy_label!r}, mode={self.mode.name!r}, "
            f"gain={self.gain_fn!r})"
        )
