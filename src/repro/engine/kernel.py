"""The scalar round-step kernel (Algorithm 1's loop body, once).

:class:`RoundKernel` owns the three-beat round step every scalar driver
shares — propose a grouping, update skills through the interaction mode,
account the round's learning gain — together with everything that has to
ride along with it exactly once:

* the observability wiring: ``policy.propose:{name}`` and
  ``core.skill_update`` spans, the per-round journal events
  (``round_start`` / ``propose`` / ``gain`` / ``skill_update`` /
  ``round_end``), and the ``core.rounds`` / ``core.interactions`` /
  ``core.proposals.*`` counters and round timers;
* the runtime-contract hooks of :mod:`repro.analysis.contracts`
  (partition, mode-specific invariants, non-negative gains) behind the
  same single flag read the old inlined loops used;
* the gain accounting ``gain_t = float(np.sum(updated − current))``.

Drivers construct one kernel per run (or per served session, with
``instrument=False`` so service trajectories stay observationally
unchanged) and call :meth:`RoundKernel.step` per round.  The kernel
never records trajectories — arrays, groupings, and histories belong to
the driver — and it never draws randomness of its own, so trajectories
are bit-identical to the previously hand-inlined loops.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.analysis import contracts as _contracts
from repro.core.gain_functions import GainFunction
from repro.core.grouping import Grouping
from repro.core.interactions import InteractionMode, get_mode
from repro.obs import runtime as _obs
from repro.obs import trace as _trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports engine)
    from repro.core.simulation import GroupingPolicy

__all__ = ["RoundKernel", "StepOutcome", "check_required_mode"]

#: The propose-step override signature (the serving layer passes the
#: cache/scheduler fast path for the deterministic DyGroups groupers).
ProposeFn = Callable[[np.ndarray, int, np.random.Generator], Grouping]


def check_required_mode(policy: "GroupingPolicy", mode: InteractionMode) -> None:
    """Reject a policy whose internal objective assumes a different mode.

    Objective-aware policies (e.g. LPA) declare the mode their scoring
    assumes via a ``required_mode`` property; running them under another
    mode is a user error every driver must reject the same way.

    Raises:
        ValueError: on a mode mismatch.
    """
    required = getattr(policy, "required_mode", None)
    if required is not None and required != mode.name:
        raise ValueError(
            f"policy {policy.name!r} optimizes for mode {required!r} "
            f"but the simulation runs mode {mode.name!r}"
        )


@dataclass(frozen=True)
class StepOutcome:
    """What one round step produced.

    Attributes:
        grouping: the grouping played this round.
        updated: the post-round skill array (a fresh array; the input is
            never mutated).
        gain: the round's learning gain ``LG(G_t)``.
        seconds: wall-clock duration of the step (``None`` unless the
            kernel is timing).
    """

    grouping: Grouping
    updated: np.ndarray
    gain: float
    seconds: "float | None" = None


class RoundKernel:
    """One configured scalar round step: propose → update → gain.

    Args:
        policy: the grouping policy proposing each round.
        mode: interaction mode (name or instance).
        gain_fn: the learning-gain function.
        record_timings: measure per-step wall-clock durations even when
            observability is off.
        instrument: resolve the process-global observability state
            (journal, metrics, spans).  The serving layer passes
            ``False`` so served rounds emit exactly the events they
            always did; results are bit-identical either way.

    Raises:
        ValueError: if the policy's ``required_mode`` contradicts
            ``mode``.
    """

    def __init__(
        self,
        policy: "GroupingPolicy",
        mode: "str | InteractionMode",
        gain_fn: GainFunction,
        *,
        record_timings: bool = False,
        instrument: bool = True,
    ) -> None:
        self.policy = policy
        self.mode = get_mode(mode)
        self.gain_fn = gain_fn
        check_required_mode(policy, self.mode)
        self.policy_label = policy.name or type(policy).__name__
        obs = _obs.state() if instrument else None
        self.journal = obs.journal if obs is not None else None
        self.metrics = obs.metrics if obs is not None else None
        self.timing = record_timings or obs is not None
        if self.metrics is not None:
            # `core.rounds` / `core.round_seconds` aggregate across
            # engines; the `.scalar` variants attribute work per engine
            # (see repro.engine.stacked for the batched counterpart).
            self._rounds_counter = self.metrics.counter("core.rounds")
            self._engine_rounds_counter = self.metrics.counter("core.rounds.scalar")
            self._interactions_counter = self.metrics.counter("core.interactions")
            self._proposals_counter = self.metrics.counter(f"core.proposals.{self.policy_label}")
            self._round_timer = self.metrics.timer("core.round_seconds")
            self._engine_round_timer = self.metrics.timer("core.round_seconds.scalar")

    def step(
        self,
        current: np.ndarray,
        k: int,
        rng: np.random.Generator,
        *,
        round_index: int,
        propose: "ProposeFn | None" = None,
    ) -> StepOutcome:
        """Play one round over ``current`` and return its outcome.

        Args:
            current: the pre-round skill array (never mutated).
            k: number of groups; divides ``len(current)``.
            rng: the run's random generator, handed to the propose step.
            round_index: 0-based round number, for journal events.
            propose: optional override for the propose step (the serving
                layer's cache/scheduler fast path); defaults to the
                kernel policy's own
                :meth:`~repro.core.simulation.GroupingPolicy.propose`.

        Raises:
            ValueError: if the proposal does not match ``(n, k)``.
            ContractViolation: when runtime contracts are enabled and an
                invariant fails.
        """
        step_started = time.perf_counter() if self.timing else 0.0
        journal = self.journal
        if journal is not None:
            journal.emit("round_start", round=round_index)
            propose_started = time.perf_counter()
        with _trace.span(f"policy.propose:{self.policy_label}"):
            if propose is None:
                grouping = self.policy.propose(current, k, rng)
            else:
                grouping = propose(current, k, rng)
        if journal is not None:
            journal.emit(
                "propose",
                round=round_index,
                policy=self.policy_label,
                dur=round(time.perf_counter() - propose_started, 9),
            )
        if grouping.n != len(current) or grouping.k != k:
            raise ValueError(
                f"policy {self.policy_label!r} returned a grouping with n={grouping.n}, "
                f"k={grouping.k}; expected n={len(current)}, k={k}"
            )
        checking = _contracts.contracts_enabled()
        if checking:
            _contracts.check_partition(grouping, n=len(current), k=k)
        with _trace.span("core.skill_update"):
            updated = self.mode.update(current, grouping, self.gain_fn)
        gain_t = float(np.sum(updated - current))
        if checking:
            if self.mode.name == "star":
                _contracts.check_star_teacher_unchanged(current, updated, grouping)
            elif self.mode.name == "clique":
                _contracts.check_clique_order_preserved(current, updated, grouping)
            _contracts.check_gains_nonnegative(gain_t)
        if journal is not None:
            journal.emit("gain", round=round_index, value=gain_t)
            journal.emit("skill_update", round=round_index, total_skill=float(updated.sum()))
        seconds: "float | None" = None
        if self.timing:
            seconds = time.perf_counter() - step_started
            if self.metrics is not None:
                self._round_timer.observe(seconds)
                self._engine_round_timer.observe(seconds)
        if self.metrics is not None:
            self._rounds_counter.inc()
            self._engine_rounds_counter.inc()
            self._interactions_counter.inc(grouping.n)
            self._proposals_counter.inc()
        if journal is not None:
            journal.emit("round_end", round=round_index, gain=gain_t)
        return StepOutcome(grouping=grouping, updated=updated, gain=gain_t, seconds=seconds)

    def __repr__(self) -> str:
        return (
            f"RoundKernel(policy={self.policy_label!r}, mode={self.mode.name!r}, "
            f"gain={self.gain_fn!r})"
        )
