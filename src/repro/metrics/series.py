"""Labeled numeric series — the interchange type between experiments and rendering.

A :class:`Series` is an ordered mapping from x-values (e.g. ``n``, ``k``,
``α``, ``r``) to y-values (e.g. aggregate learning gain), tagged with a
label (algorithm name).  Figures are collections of series sharing an
x-axis; :mod:`repro.experiments.render` turns them into aligned text
tables and ASCII charts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

__all__ = ["Series", "SeriesSet"]


@dataclass(frozen=True)
class Series:
    """One labeled line of a figure.

    Attributes:
        label: legend entry, e.g. ``"dygroups-star"``.
        x: x-coordinates (parameter values).
        y: y-coordinates (measurements), same length as ``x``.
    """

    label: str
    x: tuple[float, ...]
    y: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(f"series {self.label!r}: len(x)={len(self.x)} != len(y)={len(self.y)}")
        if len(self.x) == 0:
            raise ValueError(f"series {self.label!r} is empty")

    @classmethod
    def from_pairs(cls, label: str, pairs: Sequence[tuple[float, float]]) -> "Series":
        """Build a series from ``(x, y)`` pairs."""
        xs, ys = zip(*pairs) if pairs else ((), ())
        return cls(label=label, x=tuple(float(v) for v in xs), y=tuple(float(v) for v in ys))

    def ratio_to(self, other: "Series", *, label: str | None = None) -> "Series":
        """Pointwise ``self/other`` over the shared x-grid (Figure 10 style).

        Raises:
            ValueError: if the x-grids differ or ``other`` has a zero y.
        """
        if self.x != other.x:
            raise ValueError(f"x-grids differ: {self.x} vs {other.x}")
        if any(v == 0.0 for v in other.y):  # noqa: DYG302 — exact zero guard
            raise ValueError(f"series {other.label!r} contains zero values; ratio undefined")
        return Series(
            label=label if label is not None else f"{self.label}/{other.label}",
            x=self.x,
            y=tuple(a / b for a, b in zip(self.y, other.y)),
        )

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The series as ``(x, y)`` float arrays."""
        return np.array(self.x, dtype=np.float64), np.array(self.y, dtype=np.float64)

    def __len__(self) -> int:
        return len(self.x)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self.x, self.y))


@dataclass(frozen=True)
class SeriesSet:
    """A figure: several series over one x-axis.

    Attributes:
        title: figure title (e.g. ``"Fig 5(a): LG vs n — clique, log-normal"``).
        x_label: x-axis name.
        y_label: y-axis name.
        series: the lines, in legend order.
    """

    title: str
    x_label: str
    y_label: str
    series: tuple[Series, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.series:
            raise ValueError("a SeriesSet needs at least one series")
        grids = {s.x for s in self.series}
        if len(grids) != 1:
            raise ValueError(f"all series must share one x-grid, got {sorted(grids)}")

    @property
    def x(self) -> tuple[float, ...]:
        """The shared x-grid."""
        return self.series[0].x

    def get(self, label: str) -> Series:
        """The series with the given label.

        Raises:
            KeyError: if no series has that label.
        """
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series labeled {label!r} in {self.title!r}")

    def labels(self) -> tuple[str, ...]:
        """All series labels, in legend order."""
        return tuple(s.label for s in self.series)
