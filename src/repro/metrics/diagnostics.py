"""Grouping diagnostics: explain *why* a grouping performs as it does.

The aggregate learning gain is one number; these diagnostics decompose a
grouping (or a whole simulation) into the quantities the paper reasons
about — the teachers' strength, how far learners sit from their teachers,
and how much of the available teaching capital a policy actually uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.grouping import Grouping
from repro.core.simulation import SimulationResult
from repro.core.update import group_max

__all__ = ["GroupingDiagnostics", "diagnose_grouping", "teacher_utilization_series"]


@dataclass(frozen=True, slots=True)
class GroupingDiagnostics:
    """Structural statistics of one grouping against a skill array.

    Attributes:
        k: number of groups.
        group_size: members per group.
        teacher_skills: per-group maximum skill, descending.
        teacher_utilization: sum of group maxima divided by the sum of
            the ``k`` largest skills — 1.0 exactly when the grouping is
            star-round-optimal (Theorem 1).
        mean_gap_to_teacher: mean over members of (group max − skill).
        max_gap_to_teacher: largest such gap.
        within_group_ranges: per-group max − min, descending.
    """

    k: int
    group_size: int
    teacher_skills: tuple[float, ...]
    teacher_utilization: float
    mean_gap_to_teacher: float
    max_gap_to_teacher: float
    within_group_ranges: tuple[float, ...]


def diagnose_grouping(skills: np.ndarray, grouping: Grouping) -> GroupingDiagnostics:
    """Compute :class:`GroupingDiagnostics` for one grouping."""
    array = np.asarray(skills, dtype=np.float64)
    if array.ndim != 1 or len(array) != grouping.n:
        raise ValueError(
            f"skills must be 1-D with length {grouping.n}, got shape {array.shape}"
        )
    maxima = group_max(array, grouping)
    top_k_sum = float(np.sort(array)[::-1][: grouping.k].sum())
    gaps = maxima[grouping.assignment] - array
    ranges = []
    for group in grouping:
        values = array[group.indices()]
        ranges.append(float(values.max() - values.min()))
    return GroupingDiagnostics(
        k=grouping.k,
        group_size=grouping.group_size,
        teacher_skills=tuple(sorted((float(m) for m in maxima), reverse=True)),
        teacher_utilization=float(maxima.sum()) / top_k_sum if top_k_sum > 0 else 1.0,
        mean_gap_to_teacher=float(gaps.mean()),
        max_gap_to_teacher=float(gaps.max()),
        within_group_ranges=tuple(sorted(ranges, reverse=True)),
    )


def teacher_utilization_series(result: SimulationResult) -> list[float]:
    """Per-round teacher utilization of a recorded simulation.

    Requires the result to carry both its groupings and its skill
    history; raises :class:`ValueError` otherwise.  A policy that always
    places the top-``k`` skills in distinct groups (any star-round-optimal
    policy) scores 1.0 every round.
    """
    if not result.groupings:
        raise ValueError("result has no recorded groupings (record_groupings=True needed)")
    if result.skill_history is None:
        raise ValueError("result has no skill history (record_history=True needed)")
    series = []
    for t, grouping in enumerate(result.groupings):
        diagnostics = diagnose_grouping(result.skill_history[t], grouping)
        series.append(diagnostics.teacher_utilization)
    return series
