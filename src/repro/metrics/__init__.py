"""Metrics: learning gain, inequality indices, line fits, labeled series."""

from repro.metrics.diagnostics import (
    GroupingDiagnostics,
    diagnose_grouping,
    teacher_utilization_series,
)
from repro.metrics.fit import LinearFit, fit_line
from repro.metrics.gain import (
    gain_ratio,
    normalized_gain,
    per_round_gain_series,
    remaining_learnable_skill,
)
from repro.metrics.inequality import atkinson, coefficient_of_variation, gini, theil
from repro.metrics.series import Series, SeriesSet
from repro.metrics.stats import (
    ConfidenceInterval,
    bootstrap_ci,
    bootstrap_diff_ci,
    paired_permutation_test,
    permutation_test,
)

__all__ = [
    "GroupingDiagnostics",
    "diagnose_grouping",
    "teacher_utilization_series",
    "LinearFit",
    "fit_line",
    "gain_ratio",
    "normalized_gain",
    "per_round_gain_series",
    "remaining_learnable_skill",
    "atkinson",
    "coefficient_of_variation",
    "gini",
    "theil",
    "Series",
    "SeriesSet",
    "ConfidenceInterval",
    "bootstrap_ci",
    "bootstrap_diff_ci",
    "paired_permutation_test",
    "permutation_test",
]
