"""Inequality metrics for the fairness analysis (Section V-B5).

The paper measures the inequality of the skill distribution with two
metrics:

* the **coefficient of variation** (CV) — the ratio of the standard
  deviation to the mean (the paper's footnote states the inverse ratio,
  an evident typo: the conventional CV shrinks as skills homogenize,
  matching Figure 11(b)'s downward trend);
* the **Gini coefficient** — per the paper's footnote 9,
  ``G = Σ_{i>j} |s_i − s_j| / (n · Σ_i |s_i|)``.

Additional standard indices (Theil, Atkinson) are provided for the
extended fairness analysis in :mod:`repro.extensions.fairness`.
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_skill_array

__all__ = ["coefficient_of_variation", "gini", "theil", "atkinson"]


def coefficient_of_variation(skills: np.ndarray) -> float:
    """Population standard deviation divided by the mean."""
    array = as_skill_array(skills)
    return float(array.std() / array.mean())


def gini(skills: np.ndarray) -> float:
    """Gini coefficient per the paper's footnote 9.

    ``G = Σ_{i>j} |s_i − s_j| / (n · Σ_i s_i)``, computed in
    ``O(n log n)`` via the sorted-rank identity
    ``Σ_{i>j} |s_i − s_j| = Σ_i (2i − n + 1)·s_(i)`` (0-indexed ranks of
    the ascending sort).
    """
    array = np.sort(as_skill_array(skills))
    n = array.size
    ranks = np.arange(n, dtype=np.float64)
    pairwise_diff_sum = float(np.sum((2.0 * ranks - n + 1.0) * array))
    return pairwise_diff_sum / (n * float(array.sum()))


def theil(skills: np.ndarray) -> float:
    """Theil T index, ``(1/n) Σ (s_i/µ)·ln(s_i/µ)``; 0 means equality."""
    array = as_skill_array(skills)
    ratio = array / array.mean()
    return float(np.mean(ratio * np.log(ratio)))


def atkinson(skills: np.ndarray, epsilon: float = 0.5) -> float:
    """Atkinson index with inequality-aversion ``epsilon > 0``.

    ``A_ε = 1 − (mean(s^{1−ε}))^{1/(1−ε)} / mean(s)`` for ``ε ≠ 1``, and
    ``1 − geometric_mean(s)/mean(s)`` for ``ε = 1``.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    array = as_skill_array(skills)
    mean = array.mean()
    if epsilon == 1.0:  # noqa: DYG302 — exact parameter special case
        return float(1.0 - np.exp(np.mean(np.log(array))) / mean)
    power = 1.0 - epsilon
    return float(1.0 - np.mean(array**power) ** (1.0 / power) / mean)
