"""Least-squares linear fit (Figure 2: linear fit to learning gain).

The paper fits a line to the cumulative learning gain across rounds
(Observation IV: the gain appears to grow *linearly* in the first rounds
even though a negative second derivative would be expected).  This module
provides a dependency-free ordinary-least-squares fit with the R² summary
the figure relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LinearFit", "fit_line"]


@dataclass(frozen=True, slots=True)
class LinearFit:
    """An ordinary-least-squares line ``y ≈ slope·x + intercept``.

    Attributes:
        slope: fitted slope.
        intercept: fitted intercept.
        r_squared: coefficient of determination in [0, 1]; 1 for a
            degenerate zero-variance ``y``.
    """

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the fitted line at ``x``."""
        return self.slope * np.asarray(x, dtype=np.float64) + self.intercept

    def __str__(self) -> str:
        return f"y = {self.slope:.6g}·x + {self.intercept:.6g}  (R² = {self.r_squared:.4f})"


def fit_line(x: np.ndarray, y: np.ndarray) -> LinearFit:
    """Fit ``y ≈ slope·x + intercept`` by ordinary least squares.

    Raises:
        ValueError: if the inputs differ in length, have fewer than two
            points, or ``x`` has zero variance.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError(f"x and y must be equal-length 1-D arrays, got {x.shape} and {y.shape}")
    if x.size < 2:
        raise ValueError("need at least two points to fit a line")
    x_mean = x.mean()
    y_mean = y.mean()
    x_var = float(np.sum((x - x_mean) ** 2))
    if x_var == 0.0:  # noqa: DYG302 — exact zero guard
        raise ValueError("x has zero variance; the slope is undefined")
    slope = float(np.sum((x - x_mean) * (y - y_mean)) / x_var)
    intercept = float(y_mean - slope * x_mean)
    residual = y - (slope * x + intercept)
    total = float(np.sum((y - y_mean) ** 2))
    r_squared = 1.0 if total == 0.0 else 1.0 - float(np.sum(residual**2)) / total  # noqa: DYG302 — exact zero guard
    return LinearFit(slope=slope, intercept=intercept, r_squared=r_squared)
