"""Resampling statistics for experiment comparisons.

The paper reports its human-subject findings with confidence language
("75% confidence interval", "statistical significance").  This module
provides the dependency-free resampling tools used to reproduce those
statements on the simulated experiments:

* :func:`bootstrap_ci` — percentile bootstrap confidence interval for any
  statistic of one sample;
* :func:`bootstrap_diff_ci` — CI for the difference of means of two
  independent samples (the Observation I/II comparisons);
* :func:`permutation_test` — exact-style two-sample permutation test on
  the difference of means;
* :func:`paired_permutation_test` — sign-flip permutation test for paired
  designs (the runner's paired-seed comparisons).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro._validation import require_positive_int, require_probability

__all__ = [
    "ConfidenceInterval",
    "bootstrap_ci",
    "bootstrap_diff_ci",
    "permutation_test",
    "paired_permutation_test",
]


@dataclass(frozen=True, slots=True)
class ConfidenceInterval:
    """A percentile bootstrap confidence interval.

    Attributes:
        estimate: the statistic on the original sample.
        low: lower CI bound.
        high: upper CI bound.
        confidence: the confidence level (e.g. 0.95).
    """

    estimate: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval (inclusive)."""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return f"{self.estimate:.6g} [{self.low:.6g}, {self.high:.6g}] @ {self.confidence:.0%}"


def _as_sample(values: np.ndarray, *, name: str) -> np.ndarray:
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1 or array.size < 2:
        raise ValueError(f"{name} must be a 1-D sample with at least 2 observations")
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} must be finite")
    return array


def bootstrap_ci(
    sample: np.ndarray,
    statistic: Callable[[np.ndarray], float] = np.mean,
    *,
    confidence: float = 0.95,
    resamples: int = 2_000,
    seed: int | None = 0,
) -> ConfidenceInterval:
    """Percentile bootstrap CI for ``statistic`` of one sample."""
    array = _as_sample(sample, name="sample")
    confidence = require_probability(confidence, name="confidence")
    resamples = require_positive_int(resamples, name="resamples")
    rng = np.random.default_rng(seed)
    draws = rng.integers(0, array.size, size=(resamples, array.size))
    stats = np.array([float(statistic(array[row])) for row in draws])
    tail = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        estimate=float(statistic(array)),
        low=float(np.quantile(stats, tail)),
        high=float(np.quantile(stats, 1.0 - tail)),
        confidence=confidence,
    )


def bootstrap_diff_ci(
    sample_a: np.ndarray,
    sample_b: np.ndarray,
    *,
    confidence: float = 0.95,
    resamples: int = 2_000,
    seed: int | None = 0,
) -> ConfidenceInterval:
    """Bootstrap CI for ``mean(a) − mean(b)`` of two independent samples.

    A CI excluding 0 supports a difference at the given confidence.
    """
    a = _as_sample(sample_a, name="sample_a")
    b = _as_sample(sample_b, name="sample_b")
    confidence = require_probability(confidence, name="confidence")
    resamples = require_positive_int(resamples, name="resamples")
    rng = np.random.default_rng(seed)
    diffs = np.empty(resamples, dtype=np.float64)
    for i in range(resamples):
        diffs[i] = float(
            a[rng.integers(0, a.size, size=a.size)].mean()
            - b[rng.integers(0, b.size, size=b.size)].mean()
        )
    tail = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        estimate=float(a.mean() - b.mean()),
        low=float(np.quantile(diffs, tail)),
        high=float(np.quantile(diffs, 1.0 - tail)),
        confidence=confidence,
    )


def permutation_test(
    sample_a: np.ndarray,
    sample_b: np.ndarray,
    *,
    permutations: int = 5_000,
    seed: int | None = 0,
) -> float:
    """Two-sided permutation p-value for ``mean(a) − mean(b)``.

    Randomly reassigns the pooled observations to the two groups and
    counts how often the permuted |difference| reaches the observed one.
    Uses the add-one estimator so the p-value is never exactly 0.
    """
    a = _as_sample(sample_a, name="sample_a")
    b = _as_sample(sample_b, name="sample_b")
    permutations = require_positive_int(permutations, name="permutations")
    rng = np.random.default_rng(seed)
    observed = abs(a.mean() - b.mean())
    pooled = np.concatenate([a, b])
    hits = 0
    for _ in range(permutations):
        shuffled = rng.permutation(pooled)
        diff = abs(shuffled[: a.size].mean() - shuffled[a.size :].mean())
        if diff >= observed - 1e-15:
            hits += 1
    return (hits + 1) / (permutations + 1)


def paired_permutation_test(
    sample_a: np.ndarray,
    sample_b: np.ndarray,
    *,
    permutations: int = 5_000,
    seed: int | None = 0,
) -> float:
    """Two-sided sign-flip permutation p-value for paired samples.

    For paired designs (e.g. two algorithms on the same seeds) the null
    hypothesis flips the sign of each pairwise difference independently.
    """
    a = _as_sample(sample_a, name="sample_a")
    b = _as_sample(sample_b, name="sample_b")
    if a.size != b.size:
        raise ValueError(f"paired samples must match in length, got {a.size} and {b.size}")
    permutations = require_positive_int(permutations, name="permutations")
    rng = np.random.default_rng(seed)
    deltas = a - b
    observed = abs(deltas.mean())
    hits = 0
    for _ in range(permutations):
        signs = rng.choice((-1.0, 1.0), size=deltas.size)
        if abs((deltas * signs).mean()) >= observed - 1e-15:
            hits += 1
    return (hits + 1) / (permutations + 1)
