"""Learning-gain metrics over simulation results.

Small helpers the figures are built from: total/per-round gains, gain
ratios between algorithms (Figure 10), and normalized gain (the fraction
of the total *learnable* skill captured — an upper-bound-aware view used
in the extended analysis).
"""

from __future__ import annotations

import numpy as np

from repro.core.objective import b_objective
from repro.core.simulation import SimulationResult

__all__ = ["gain_ratio", "normalized_gain", "per_round_gain_series", "remaining_learnable_skill"]


def gain_ratio(result: SimulationResult, reference: SimulationResult) -> float:
    """Total-gain ratio of ``result`` over ``reference`` (Figure 10).

    Raises:
        ValueError: if the reference achieved zero gain (undefined ratio).
    """
    denominator = reference.total_gain
    if denominator == 0.0:  # noqa: DYG302 — exact zero guard
        raise ValueError("reference result has zero total gain; ratio undefined")
    return result.total_gain / denominator


def remaining_learnable_skill(skills: np.ndarray) -> float:
    """Upper bound on all future learning: ``Σ_i (max(s) − s_i)``.

    No sequence of groupings can ever deliver more total gain than this,
    because nobody can exceed the current maximum skill (the b-objective
    of Equation 4).
    """
    return b_objective(skills)


def normalized_gain(result: SimulationResult) -> float:
    """Fraction of the initially learnable skill actually captured, in [0, 1]."""
    learnable = remaining_learnable_skill(result.initial_skills)
    if learnable == 0.0:  # noqa: DYG302 — exact zero guard
        return 1.0
    return result.total_gain / learnable


def per_round_gain_series(result: SimulationResult) -> list[tuple[int, float]]:
    """``(round, LG)`` pairs, 1-indexed rounds — the Figure 1/4 series."""
    return [(t + 1, float(g)) for t, g in enumerate(result.round_gains)]
