"""Multi-round simulation engine (the generic loop of Algorithm 1).

The engine separates *policy* from *process*:

* a :class:`GroupingPolicy` decides, each round, how to split the current
  skill array into ``k`` groups (``DYGROUPS-MODE-LOCAL`` and all baseline
  algorithms are policies);
* :func:`simulate` runs the α-round loop — propose grouping, measure the
  round gain, update skills — and records the trajectory in a
  :class:`SimulationResult`.

This mirrors Algorithm 1 exactly while letting every algorithm in the
paper's evaluation share one thoroughly tested loop.
"""

from __future__ import annotations

import abc
import logging
from dataclasses import dataclass, field

import numpy as np

from repro._validation import (
    as_skill_array,
    require_divisible_groups,
    require_positive_int,
)
from repro.core.gain_functions import GainFunction, LinearGain
from repro.core.grouping import Grouping
from repro.core.interactions import InteractionMode, get_mode
from repro.obs import trace as _trace

__all__ = ["GroupingPolicy", "SimulationResult", "simulate"]

_log = logging.getLogger("repro.core.simulation")


class GroupingPolicy(abc.ABC):
    """A per-round grouping strategy.

    Policies are stateless by default; stateful policies (e.g. the static
    baseline, which freezes its first grouping) override :meth:`reset`,
    which the engine calls once per simulation.
    """

    #: Machine-readable policy name used by registries and result tables.
    name: str = ""

    @abc.abstractmethod
    def propose(self, skills: np.ndarray, k: int, rng: np.random.Generator) -> Grouping:
        """Return a grouping of the current ``skills`` into ``k`` groups.

        Args:
            skills: current skill array (must not be mutated).
            k: number of groups; divides ``len(skills)``.
            rng: the simulation's random generator — policies must draw all
                randomness from it so runs are reproducible by seed.
        """

    def reset(self) -> None:
        """Clear any cross-round state before a new simulation."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


@dataclass(frozen=True)
class SimulationResult:
    """Trajectory of one α-round TDG simulation.

    Attributes:
        policy_name: name of the grouping policy.
        mode_name: interaction mode (``"star"``/``"clique"``).
        k: number of groups per round.
        alpha: number of rounds.
        initial_skills: skills before round 1.
        final_skills: skills after round α.
        round_gains: length-α array, ``round_gains[t] = LG(G_{t+1})``.
        groupings: the grouping chosen each round (empty when the engine
            was asked not to record them).
        skill_history: ``(α+1, n)`` matrix of skills before each round and
            after the last (``None`` unless recording was requested).
        round_seconds: length-α wall-clock seconds per round (``None``
            unless timing was requested or observability is enabled).
    """

    policy_name: str
    mode_name: str
    k: int
    alpha: int
    initial_skills: np.ndarray
    final_skills: np.ndarray
    round_gains: np.ndarray
    groupings: tuple[Grouping, ...] = field(default=())
    skill_history: np.ndarray | None = None
    round_seconds: np.ndarray | None = None

    @property
    def n(self) -> int:
        """Number of participants."""
        return int(self.initial_skills.size)

    @property
    def total_gain(self) -> float:
        """Aggregated learning gain ``Σ_t LG(G_t)`` (the TDG objective)."""
        return float(self.round_gains.sum())

    @property
    def cumulative_gains(self) -> np.ndarray:
        """Cumulative gain after each round (length α)."""
        return np.cumsum(self.round_gains)

    def __str__(self) -> str:
        return (
            f"SimulationResult(policy={self.policy_name!r}, mode={self.mode_name!r}, "
            f"n={self.n}, k={self.k}, alpha={self.alpha}, total_gain={self.total_gain:.6g})"
        )


def simulate(
    policy: GroupingPolicy,
    skills: np.ndarray,
    *,
    k: int,
    alpha: int,
    mode: "str | InteractionMode",
    gain: GainFunction | None = None,
    rate: float | None = None,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    record_groupings: bool = True,
    record_history: bool = False,
    record_timings: bool = False,
) -> SimulationResult:
    """Run ``policy`` for ``alpha`` rounds and return the trajectory.

    Exactly one of ``gain`` and ``rate`` must be provided; ``rate=r`` is a
    shorthand for ``gain=LinearGain(r)``.  Provide either ``rng`` or
    ``seed`` (or neither, for OS entropy) to control the randomness handed
    to stochastic policies.

    ``record_timings=True`` fills :attr:`SimulationResult.round_seconds`
    with per-round wall-clock durations (also on whenever observability
    is configured; see :mod:`repro.obs`).  Timing and instrumentation
    never touch the random stream, so results are bit-identical either
    way.

    Raises:
        ValueError: on inconsistent parameters (``k`` not dividing ``n``,
            both or neither of ``gain``/``rate``, ...).
    """
    array = as_skill_array(skills)
    require_divisible_groups(len(array), k)
    alpha = require_positive_int(alpha, name="alpha")
    resolved_mode = get_mode(mode)
    if (gain is None) == (rate is None):
        raise ValueError("provide exactly one of gain= or rate=")
    gain_fn = gain if gain is not None else LinearGain(rate)  # type: ignore[arg-type]
    if rng is not None and seed is not None:
        raise ValueError("provide at most one of rng= or seed=")
    generator = rng if rng is not None else np.random.default_rng(seed)

    # The kernel owns the round step — propose span, shape validation,
    # contract hooks, skill update, gain accounting, journal events, and
    # metrics, resolved once per call (see repro.engine.kernel).  It also
    # rejects a policy whose `required_mode` contradicts the mode.
    from repro.engine.kernel import RoundKernel

    kernel = RoundKernel(policy, resolved_mode, gain_fn, record_timings=record_timings)

    policy.reset()
    initial = array.copy()
    history = np.empty((alpha + 1, len(array)), dtype=np.float64) if record_history else None
    if history is not None:
        history[0] = array
    round_gains = np.empty(alpha, dtype=np.float64)
    groupings: list[Grouping] = []
    timing = kernel.timing
    round_seconds = np.empty(alpha, dtype=np.float64) if timing else None
    journal = kernel.journal
    _log.debug(
        "simulate: policy=%s mode=%s n=%d k=%d alpha=%d",
        policy.name, resolved_mode.name, len(array), k, alpha,
    )
    if journal is not None:
        journal.emit(
            "run_start",
            policy=policy.name,
            mode=resolved_mode.name,
            n=len(array),
            k=int(k),
            alpha=alpha,
        )

    current = array
    with _trace.span("core.simulate", policy=policy.name, alpha=alpha):
        for t in range(alpha):
            outcome = kernel.step(current, k, generator, round_index=t)
            round_gains[t] = outcome.gain
            if record_groupings:
                groupings.append(outcome.grouping)
            if history is not None:
                history[t + 1] = outcome.updated
            current = outcome.updated
            if timing:
                round_seconds[t] = outcome.seconds  # type: ignore[index]

    total_gain = float(round_gains.sum())
    _log.debug("simulate done: policy=%s total_gain=%.6g", policy.name, total_gain)
    if journal is not None:
        journal.emit("run_end", policy=policy.name, total_gain=total_gain)
    return SimulationResult(
        policy_name=policy.name,
        mode_name=resolved_mode.name,
        k=int(k),
        alpha=alpha,
        initial_skills=initial,
        final_skills=current,
        round_gains=round_gains,
        groupings=tuple(groupings),
        skill_history=history,
        round_seconds=round_seconds,
    )
