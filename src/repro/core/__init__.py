"""Core model and algorithms of the TDG problem and the DyGroups framework.

Contents:

* :mod:`repro.core.gain_functions` — the 2-person learning-gain model;
* :mod:`repro.core.grouping` — validated group/grouping data structures;
* :mod:`repro.core.interactions` — Star and Clique interaction modes;
* :mod:`repro.core.update` — O(n) skill-update engines (Theorem 3);
* :mod:`repro.core.local` — round-local groupers (Algorithms 2 and 3);
* :mod:`repro.core.objective` — LG, the telescoped objective, b-distances;
* :mod:`repro.core.simulation` — the α-round engine and policy protocol;
* :mod:`repro.core.dygroups` — the DyGroups driver (Algorithm 1);
* :mod:`repro.core.batch` — vectorized batch propose path (serving layer);
* :mod:`repro.core.vectorized` — the stacked-trial engine (``R`` trials
  advance per round through batched kernels, bit-identical to scalar).
"""

from repro.core.batch import (
    BATCH_MODES,
    as_skills_matrix,
    descending_orders,
    flat_rank_listing,
    propose_batch,
    rank_structure,
)
from repro.core.dygroups import DyGroupsClique, DyGroupsStar, dygroups, dygroups_policy
from repro.core.gain_functions import GainFunction, LinearGain, pairwise_gain
from repro.core.grouping import Group, Grouping
from repro.core.interactions import MODES, Clique, InteractionMode, Star, get_mode
from repro.core.local import dygroups_clique_local, dygroups_star_local
from repro.core.objective import (
    b_distances,
    b_objective,
    gain_from_trajectory,
    learning_gain,
    total_learning_gain,
)
from repro.core.simulation import GroupingPolicy, SimulationResult, simulate
from repro.core.skills import SkillSummary, as_skill_array, descending_order, skill_variance, summarize
from repro.core.update import (
    group_max,
    update_clique,
    update_clique_naive,
    update_star,
    update_star_naive,
)
from repro.core.vectorized import (
    ENGINES,
    BatchSimulationResult,
    VectorizedPolicy,
    simulate_many,
    update_clique_many,
    update_star_many,
    vectorize_policy,
)

__all__ = [
    "GainFunction",
    "LinearGain",
    "pairwise_gain",
    "Group",
    "Grouping",
    "InteractionMode",
    "Star",
    "Clique",
    "MODES",
    "get_mode",
    "update_star",
    "update_clique",
    "update_star_naive",
    "update_clique_naive",
    "group_max",
    "dygroups_star_local",
    "dygroups_clique_local",
    "BATCH_MODES",
    "as_skills_matrix",
    "descending_orders",
    "flat_rank_listing",
    "propose_batch",
    "rank_structure",
    "ENGINES",
    "BatchSimulationResult",
    "VectorizedPolicy",
    "simulate_many",
    "update_star_many",
    "update_clique_many",
    "vectorize_policy",
    "learning_gain",
    "total_learning_gain",
    "gain_from_trajectory",
    "b_distances",
    "b_objective",
    "GroupingPolicy",
    "SimulationResult",
    "simulate",
    "DyGroupsStar",
    "DyGroupsClique",
    "dygroups",
    "dygroups_policy",
    "as_skill_array",
    "descending_order",
    "skill_variance",
    "SkillSummary",
    "summarize",
]
