"""Batch-friendly propose path for the DyGroups round-local groupers.

The serving layer (:mod:`repro.serve`) coalesces concurrent ``propose``
requests into batches.  Both ``DYGROUPS-MODE-LOCAL`` groupers are pure
functions of the *descending order* of the skill array (Algorithms 2
and 3), so a batch of ``m`` same-shaped requests reduces to a single
``(m, n)`` stable argsort — one vectorized numpy call instead of ``m``
Python round trips — followed by an index gather per row.

The pieces, shared by the serving scheduler and the stacked-trial
simulation engine (:mod:`repro.core.vectorized`):

* :func:`rank_structure` — the grouper's output expressed over *ranks*
  (position in the descending order) rather than member indices.  For a
  fixed ``(n, k, mode)`` this structure is constant: Algorithm 2 places
  rank ``i`` as teacher ``i`` and deals the rest in contiguous blocks;
  Algorithm 3 deals rank ``j`` to group ``j mod k``.  The grouping
  memo (:mod:`repro.serve.cache`) replays cached structures through it.
* :func:`flat_rank_listing` — the same structure flattened to one
  ``(n,)`` index array (group ``g`` occupies the contiguous slice
  ``[g·t, (g+1)·t)``), the layout the batched update kernels consume.
* :func:`descending_orders` — the single stable ``(m, n)`` argsort every
  batched grouper reduces to.
* :func:`as_skills_matrix` — validate/coerce a batch of skill vectors to
  a fresh ``(m, n)`` float64 matrix.
* :func:`propose_batch` — compose the above and materialize the ``m``
  groupings.

Bit-identity with the scalar groupers is guaranteed (and pinned by
tests): ``propose_batch(S, k, mode)[i]`` lists exactly the same members
in exactly the same order as ``dygroups_star_local(S[i], k)`` /
``dygroups_clique_local(S[i], k)``.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro._validation import require_divisible_groups
from repro.core.grouping import Grouping

__all__ = [
    "BATCH_MODES",
    "as_skills_matrix",
    "descending_orders",
    "flat_rank_listing",
    "propose_batch",
    "rank_structure",
]

#: Modes with a vectorizable rank-space grouper.
BATCH_MODES: tuple[str, ...] = ("star", "clique")


@lru_cache(maxsize=256)
def rank_structure(n: int, k: int, mode: str) -> tuple[tuple[int, ...], ...]:
    """The DyGroups-Local grouping of ``n`` members over ranks 0..n-1.

    Entry ``[i][j]`` is the descending-order *rank* of the ``j``-th member
    of group ``i``; applying a concrete order ``o`` via ``o[ranks]``
    reproduces the scalar grouper's output exactly.

    Args:
        n: number of participants.
        k: number of groups; must divide ``n``.
        mode: ``"star"`` (Algorithm 2) or ``"clique"`` (Algorithm 3).

    Raises:
        ValueError: for an unknown mode or an invalid ``(n, k)`` pair.
    """
    size = require_divisible_groups(n, k)
    if mode == "star":
        members_per_group = size - 1
        return tuple(
            (i, *range(k + i * members_per_group, k + (i + 1) * members_per_group))
            for i in range(k)
        )
    if mode == "clique":
        return tuple(tuple(range(i, n, k)) for i in range(k))
    raise ValueError(f"no batchable rank structure for mode {mode!r}; expected one of {BATCH_MODES}")


@lru_cache(maxsize=256)
def _flat_rank_listing_cached(n: int, k: int, mode: str) -> np.ndarray:
    flat = np.concatenate([np.asarray(ranks, dtype=np.intp) for ranks in rank_structure(n, k, mode)])
    flat.setflags(write=False)
    return flat


def flat_rank_listing(n: int, k: int, mode: str) -> np.ndarray:
    """:func:`rank_structure` flattened to one read-only ``(n,)`` array.

    Group ``g`` of the grouping occupies the contiguous slice
    ``[g·t, (g+1)·t)`` where ``t = n // k``; indexing a descending order
    with this array therefore yields the member listing of every group at
    once.  The result is cached and marked read-only — copy before
    mutating.

    Raises:
        ValueError: for an unknown mode or an invalid ``(n, k)`` pair.
    """
    return _flat_rank_listing_cached(n, k, mode)


def descending_orders(matrix: np.ndarray) -> np.ndarray:
    """Stable descending argsort of each row of a ``(m, n)`` skill matrix.

    This is the one vectorized call every batched DyGroups grouper reduces
    to; ties keep ascending column-index order, matching the scalar
    :func:`repro.core.skills.descending_order` exactly.

    For strictly positive rows (the validated skill domain) the sort runs
    on the IEEE-754 bit patterns instead of the floats: positive doubles
    order identically to their ``int64`` views, equal values share one
    bit pattern (no signed zeros in the domain), and numpy's stable sort
    is a radix sort for integer keys — same permutation, bit for bit,
    measurably faster per row.  Non-positive or non-finite input falls
    back to the float sort.
    """
    matrix = np.ascontiguousarray(matrix, dtype=np.float64)
    if matrix.size and np.all(matrix > 0.0):
        return np.argsort(-matrix.view(np.int64), axis=1, kind="stable")
    return np.argsort(-matrix, axis=1, kind="stable")


def as_skills_matrix(skills: np.ndarray, *, name: str = "skills") -> np.ndarray:
    """Coerce to a fresh 2-D float64 matrix of positive finite rows.

    A single 1-D vector is accepted and reshaped to a batch of one.

    Raises:
        TypeError: if ``skills`` is not numeric.
        ValueError: on empty/higher-rank shapes or non-positive values.
    """
    try:
        matrix = np.array(skills, dtype=np.float64, copy=True)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a 2-D numeric array, got {type(skills).__name__}") from exc
    if matrix.ndim == 1:
        matrix = matrix.reshape(1, -1)
    if matrix.ndim != 2:
        raise ValueError(f"{name} must be two-dimensional, got shape {matrix.shape}")
    if matrix.shape[0] == 0 or matrix.shape[1] == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(matrix)):
        raise ValueError(f"{name} must contain only finite values")
    if np.any(matrix <= 0.0):
        raise ValueError(f"{name} must be strictly positive (the model assumes positive skill levels)")
    return matrix


def propose_batch(skills: np.ndarray, k: int, mode: str) -> list[Grouping]:
    """Run the DyGroups-Local grouper over a batch of skill vectors.

    Args:
        skills: ``(m, n)`` matrix — one request per row (a single 1-D
            vector is treated as a batch of one).
        k: number of groups; must divide ``n``.
        mode: ``"star"`` or ``"clique"``.

    Returns:
        One :class:`~repro.core.grouping.Grouping` per row, bit-identical
        to the scalar grouper applied to that row.

    Raises:
        TypeError: if ``skills`` is not numeric.
        ValueError: on invalid shapes, non-positive values, a ``k`` that
            does not divide ``n``, or a non-batchable mode.
    """
    matrix = as_skills_matrix(skills)
    n = matrix.shape[1]
    listing = flat_rank_listing(n, k, mode)
    # One stable argsort for the whole batch — the vectorized hot path.
    orders = descending_orders(matrix)
    members = orders[:, listing].reshape(matrix.shape[0], k, n // k)
    return [Grouping(row) for row in members]
