"""Batch-friendly propose path for the DyGroups round-local groupers.

The serving layer (:mod:`repro.serve`) coalesces concurrent ``propose``
requests into batches.  Both ``DYGROUPS-MODE-LOCAL`` groupers are pure
functions of the *descending order* of the skill array (Algorithms 2
and 3), so a batch of ``m`` same-shaped requests reduces to a single
``(m, n)`` stable argsort — one vectorized numpy call instead of ``m``
Python round trips — followed by an index gather per row.

The pieces, shared by the serving scheduler and the stacked-trial
simulation engine (:mod:`repro.core.vectorized`):

* :func:`rank_structure` — the grouper's output expressed over *ranks*
  (position in the descending order) rather than member indices.  For a
  fixed ``(n, k, mode)`` this structure is constant: Algorithm 2 places
  rank ``i`` as teacher ``i`` and deals the rest in contiguous blocks;
  Algorithm 3 deals rank ``j`` to group ``j mod k``.  The grouping
  memo (:mod:`repro.serve.cache`) replays cached structures through it.
* :func:`flat_rank_listing` — the same structure flattened to one
  ``(n,)`` index array (group ``g`` occupies the contiguous slice
  ``[g·t, (g+1)·t)``), the layout the batched update kernels consume.
* :func:`descending_orders` — the single stable ``(m, n)`` argsort every
  batched grouper reduces to.
* :func:`as_skills_matrix` — validate/coerce a batch of skill vectors to
  a fresh ``(m, n)`` float64 matrix.
* :func:`propose_batch` — compose the above and materialize the ``m``
  groupings.

Bit-identity with the scalar groupers is guaranteed (and pinned by
tests): ``propose_batch(S, k, mode)[i]`` lists exactly the same members
in exactly the same order as ``dygroups_star_local(S[i], k)`` /
``dygroups_clique_local(S[i], k)``.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro._validation import require_divisible_groups
from repro.core.grouping import Grouping

__all__ = [
    "BATCH_MODES",
    "SharedMatrix",
    "as_skills_matrix",
    "descending_orders",
    "flat_rank_listing",
    "propose_batch",
    "rank_structure",
    "shared_memory_available",
]

#: Modes with a vectorizable rank-space grouper.
BATCH_MODES: tuple[str, ...] = ("star", "clique")


@lru_cache(maxsize=256)
def rank_structure(n: int, k: int, mode: str) -> tuple[tuple[int, ...], ...]:
    """The DyGroups-Local grouping of ``n`` members over ranks 0..n-1.

    Entry ``[i][j]`` is the descending-order *rank* of the ``j``-th member
    of group ``i``; applying a concrete order ``o`` via ``o[ranks]``
    reproduces the scalar grouper's output exactly.

    Args:
        n: number of participants.
        k: number of groups; must divide ``n``.
        mode: ``"star"`` (Algorithm 2) or ``"clique"`` (Algorithm 3).

    Raises:
        ValueError: for an unknown mode or an invalid ``(n, k)`` pair.
    """
    size = require_divisible_groups(n, k)
    if mode == "star":
        members_per_group = size - 1
        return tuple(
            (i, *range(k + i * members_per_group, k + (i + 1) * members_per_group))
            for i in range(k)
        )
    if mode == "clique":
        return tuple(tuple(range(i, n, k)) for i in range(k))
    raise ValueError(f"no batchable rank structure for mode {mode!r}; expected one of {BATCH_MODES}")


@lru_cache(maxsize=256)
def _flat_rank_listing_cached(n: int, k: int, mode: str) -> np.ndarray:
    flat = np.concatenate([np.asarray(ranks, dtype=np.intp) for ranks in rank_structure(n, k, mode)])
    flat.setflags(write=False)
    return flat


def flat_rank_listing(n: int, k: int, mode: str) -> np.ndarray:
    """:func:`rank_structure` flattened to one read-only ``(n,)`` array.

    Group ``g`` of the grouping occupies the contiguous slice
    ``[g·t, (g+1)·t)`` where ``t = n // k``; indexing a descending order
    with this array therefore yields the member listing of every group at
    once.  The result is cached and marked read-only — copy before
    mutating.

    Raises:
        ValueError: for an unknown mode or an invalid ``(n, k)`` pair.
    """
    return _flat_rank_listing_cached(n, k, mode)


def descending_orders(matrix: np.ndarray, *, plan=None) -> np.ndarray:
    """Stable descending argsort of each row of a ``(m, n)`` skill matrix.

    This is the one vectorized call every batched DyGroups grouper reduces
    to; ties keep ascending column-index order, matching the scalar
    :func:`repro.core.skills.descending_order` exactly.

    For strictly positive rows (the validated skill domain) the sort runs
    on the IEEE-754 bit patterns instead of the floats: positive doubles
    order identically to their ``int64`` views, equal values share one
    bit pattern (no signed zeros in the domain), and numpy's stable sort
    is a radix sort for integer keys — same permutation, bit for bit,
    measurably faster per row.  Non-positive or non-finite input falls
    back to the float sort.

    With a :class:`repro.core.shard.ShardPlan` the call delegates to
    :func:`repro.core.shard.sharded_descending_orders`, which bounds the
    sort working set to one skill-range shard at a time (and can spill
    the order output out of core) while returning the identical
    permutation bit for bit.
    """
    if plan is not None:
        from repro.core.shard import sharded_descending_orders

        return sharded_descending_orders(matrix, plan)
    matrix = np.ascontiguousarray(matrix, dtype=np.float64)
    if matrix.size and np.all(matrix > 0.0):
        return np.argsort(-matrix.view(np.int64), axis=1, kind="stable")
    return np.argsort(-matrix, axis=1, kind="stable")


def as_skills_matrix(skills: np.ndarray, *, name: str = "skills") -> np.ndarray:
    """Coerce to a fresh 2-D float64 matrix of positive finite rows.

    A single 1-D vector is accepted and reshaped to a batch of one.

    Raises:
        TypeError: if ``skills`` is not numeric.
        ValueError: on empty/higher-rank shapes or non-positive values.
    """
    try:
        matrix = np.array(skills, dtype=np.float64, copy=True)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a 2-D numeric array, got {type(skills).__name__}") from exc
    if matrix.ndim == 1:
        matrix = matrix.reshape(1, -1)
    if matrix.ndim != 2:
        raise ValueError(f"{name} must be two-dimensional, got shape {matrix.shape}")
    if matrix.shape[0] == 0 or matrix.shape[1] == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(matrix)):
        raise ValueError(f"{name} must contain only finite values")
    if np.any(matrix <= 0.0):
        raise ValueError(f"{name} must be strictly positive (the model assumes positive skill levels)")
    return matrix


class SharedMatrix:
    """A 2-D ``float64`` matrix backed by a named shared-memory segment.

    The zero-pickle transport for stacked trial matrices: the process
    that owns the data copies it **once** into a
    :class:`multiprocessing.shared_memory.SharedMemory` segment
    (:meth:`create`), ships only the ``(name, shape)`` descriptor
    (:attr:`meta`) to other processes, and each of them maps the same
    physical pages read-only with :meth:`attach` — no per-chunk pickling
    of the skill arrays, regardless of how many chunks revisit the same
    grid point.

    Lifecycle contract: exactly one process — the creator — calls
    :meth:`unlink` (after every reader is done with the rows it sliced);
    every process, creator and readers alike, calls :meth:`close` on its
    own handle.  Attached views are marked read-only, so a reader that
    needs a private working buffer must copy (``simulate`` /
    ``simulate_many`` already copy their inputs).

    On Python < 3.13 an attached segment would be re-registered with the
    ``multiprocessing`` resource tracker and double-unlinked at reader
    exit; :meth:`attach` deregisters it so ownership stays with the
    creator.
    """

    __slots__ = ("_shm", "shape", "owner")

    def __init__(self, shm: object, shape: "tuple[int, int]", *, owner: bool) -> None:
        self._shm = shm
        self.shape = shape
        self.owner = owner

    @classmethod
    def create(cls, matrix: np.ndarray) -> "SharedMatrix":
        """Copy ``matrix`` into a fresh shared segment owned by the caller.

        Raises:
            ValueError: for a non-2-D matrix.
            OSError: when the platform cannot allocate shared memory.
        """
        from multiprocessing import shared_memory

        source = np.ascontiguousarray(matrix, dtype=np.float64)
        if source.ndim != 2:
            raise ValueError(f"matrix must be two-dimensional, got shape {source.shape}")
        shm = shared_memory.SharedMemory(create=True, size=max(1, source.nbytes))
        view = np.ndarray(source.shape, dtype=np.float64, buffer=shm.buf)
        view[...] = source
        return cls(shm, (int(source.shape[0]), int(source.shape[1])), owner=True)

    @property
    def meta(self) -> "tuple[str, tuple[int, int]]":
        """The picklable ``(segment name, shape)`` descriptor readers attach with."""
        return (self._shm.name, self.shape)  # type: ignore[attr-defined]

    @classmethod
    def attach(cls, meta: "tuple[str, tuple[int, int]]") -> "SharedMatrix":
        """Map an existing segment (by descriptor) as a non-owning reader."""
        from multiprocessing import shared_memory

        name, shape = meta
        try:
            # Python >= 3.13: never hand the segment to this process's
            # resource tracker — the creator owns unlinking.
            shm = shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
        except TypeError:
            # Python < 3.13 registers even plain attaches with the
            # resource tracker, which would double-unlink at reader exit
            # (and, with several readers of one segment, spam tracker
            # KeyErrors).  Suppress the registration for the duration of
            # the attach; readers are single-threaded at attach time.
            from multiprocessing import resource_tracker

            original = resource_tracker.register

            def _skip(path: str, rtype: str) -> None:  # pragma: no cover - trivial shim
                if rtype != "shared_memory":
                    original(path, rtype)

            resource_tracker.register = _skip  # type: ignore[assignment]
            try:
                shm = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original  # type: ignore[assignment]
        return cls(shm, (int(shape[0]), int(shape[1])), owner=False)

    def array(self) -> np.ndarray:
        """A read-only ``(rows, cols)`` float64 view over the shared pages."""
        view = np.ndarray(self.shape, dtype=np.float64, buffer=self._shm.buf)  # type: ignore[attr-defined]
        view.setflags(write=False)
        return view

    def close(self) -> None:
        """Unmap this process's view (idempotent; does not free the segment)."""
        try:
            self._shm.close()  # type: ignore[attr-defined]
        except BufferError:  # pragma: no cover - a live numpy view pins the buffer
            pass

    def unlink(self) -> None:
        """Free the segment (owner only; idempotent)."""
        if not self.owner:
            return
        try:
            self._shm.unlink()  # type: ignore[attr-defined]
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "SharedMatrix":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
        self.unlink()

    def __repr__(self) -> str:
        role = "owner" if self.owner else "reader"
        return f"SharedMatrix(name={self._shm.name!r}, shape={self.shape}, {role})"  # type: ignore[attr-defined]


@lru_cache(maxsize=1)
def shared_memory_available() -> bool:
    """Whether this platform can round-trip a shared-memory segment.

    Probed once per process (create → attach → unlink a 1-byte segment);
    the parallel executor falls back to pickling skill matrices when the
    probe fails (e.g. no ``/dev/shm`` in a locked-down container).
    """
    try:
        probe = SharedMatrix.create(np.ones((1, 1)))
    except Exception:
        return False
    try:
        reader = SharedMatrix.attach(probe.meta)
        ok = bool(reader.array()[0, 0] == 1.0)  # noqa: DYG302 - exact round-trip guard
        reader.close()
        return ok
    except Exception:
        return False
    finally:
        probe.close()
        probe.unlink()


def propose_batch(skills: np.ndarray, k: int, mode: str) -> list[Grouping]:
    """Run the DyGroups-Local grouper over a batch of skill vectors.

    Args:
        skills: ``(m, n)`` matrix — one request per row (a single 1-D
            vector is treated as a batch of one).
        k: number of groups; must divide ``n``.
        mode: ``"star"`` or ``"clique"``.

    Returns:
        One :class:`~repro.core.grouping.Grouping` per row, bit-identical
        to the scalar grouper applied to that row.

    Raises:
        TypeError: if ``skills`` is not numeric.
        ValueError: on invalid shapes, non-positive values, a ``k`` that
            does not divide ``n``, or a non-batchable mode.
    """
    matrix = as_skills_matrix(skills)
    n = matrix.shape[1]
    listing = flat_rank_listing(n, k, mode)
    # One stable argsort for the whole batch — the vectorized hot path.
    orders = descending_orders(matrix)
    members = orders[:, listing].reshape(matrix.shape[0], k, n // k)
    # Rows are permutations of 0..n-1 (rank listing ∘ sort order), so the
    # trusted constructor can skip the partition checks.
    return [Grouping.from_members(row) for row in members]
