"""Interaction modes (Star and Clique) as strategy objects.

An :class:`InteractionMode` bundles the three mode-specific operations the
framework needs:

* :meth:`~InteractionMode.update` — apply one round of within-group
  learning to the full skill array (``UPDATE-SKILLS-MODE`` in Algorithm 1);
* :meth:`~InteractionMode.group_gain` — the learning gain ``g(x)`` of one
  group (Equations 1 and 2);
* :meth:`~InteractionMode.round_gain` — the aggregated gain ``LG(G)`` of a
  grouping (Equation 3).

Because every 2-person interaction only *adds* skill, the aggregated gain
of a round always equals the total skill increase, so ``round_gain`` is
computed as ``sum(update(s) − s)`` — an identity the test suite verifies
against the literal per-group formulas.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.gain_functions import GainFunction
from repro.core.grouping import Group, Grouping
from repro.core.update import (
    update_clique,
    update_clique_naive,
    update_star,
    update_star_naive,
)

__all__ = ["InteractionMode", "Star", "Clique", "get_mode", "MODES"]


class InteractionMode(abc.ABC):
    """Abstract interaction mode; see module docstring."""

    #: Canonical lower-case mode name (``"star"`` / ``"clique"``).
    name: str = ""

    @abc.abstractmethod
    def update(self, skills: np.ndarray, grouping: Grouping, gain: GainFunction) -> np.ndarray:
        """Return the post-round skill array (input is not mutated)."""

    @abc.abstractmethod
    def group_gain(self, skills: np.ndarray, group: Group, gain: GainFunction) -> float:
        """Learning gain ``g(x)`` of a single group (per-group formula)."""

    def round_gain(self, skills: np.ndarray, grouping: Grouping, gain: GainFunction) -> float:
        """Aggregated learning gain ``LG(G)`` of a grouping (Equation 3)."""
        return float(np.sum(self.update(skills, grouping, gain) - skills))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self)

    def __hash__(self) -> int:
        return hash(type(self))


class Star(InteractionMode):
    """Star mode: every member learns only from the group's teacher.

    The group gain (Equation 1) is ``Σ_{j≠1} f(p_1 → p_j)`` where ``p_1``
    is the group's highest-skilled member.
    """

    name = "star"

    def update(self, skills: np.ndarray, grouping: Grouping, gain: GainFunction) -> np.ndarray:
        return update_star(skills, grouping, gain)

    def group_gain(self, skills: np.ndarray, group: Group, gain: GainFunction) -> float:
        values = skills[group.indices()]
        teacher = float(values.max())
        return float(np.sum(gain.directed_gain(teacher, values)))


class Clique(InteractionMode):
    """Clique mode: all pairwise interactions; averaged positive gains.

    The group gain (Equation 2) credits each member with the *average* of
    its positive pairwise gains, which preserves within-group skill order.
    """

    name = "clique"

    def update(self, skills: np.ndarray, grouping: Grouping, gain: GainFunction) -> np.ndarray:
        return update_clique(skills, grouping, gain)

    def group_gain(self, skills: np.ndarray, group: Group, gain: GainFunction) -> float:
        if not gain.is_linear:
            return self._group_gain_reference(skills, group, gain)
        # Theorem 3 for linear gains: the rank-i member's averaged gain is
        # r·(c_{i−1} − (i−1)·s_i)/(i−1) with c the descending prefix sums,
        # so the per-group total needs one vectorized pass, not O(t²)
        # pairwise calls.  Tie order cannot affect the sum (equal values
        # sort to identical arrays), so a plain descending sort suffices.
        values = np.sort(np.asarray(skills, dtype=np.float64)[group.indices()])[::-1]
        if values.size < 2:
            return 0.0
        rate: float = gain.rate  # type: ignore[attr-defined]
        prefix = np.cumsum(values)
        ranks = np.arange(1, values.size, dtype=np.float64)
        return float(np.sum(rate * (prefix[:-1] - ranks * values[1:]) / ranks))

    def _group_gain_reference(self, skills: np.ndarray, group: Group, gain: GainFunction) -> float:
        # Equation 2 literally: the rank-i member averages its pairwise
        # gains over (i − 1); ties are ranked stably by member index.
        ranked = sorted(group, key=lambda m: (-float(skills[m]), m))
        values = [float(skills[m]) for m in ranked]
        total = 0.0
        for i in range(1, len(values)):
            s = values[i]
            total += sum(gain.directed_gain(v, s) for v in values[:i]) / i
        return total


class _NaiveStar(Star):
    """Reference Star mode using the loop-based updater (testing only)."""

    def update(self, skills: np.ndarray, grouping: Grouping, gain: GainFunction) -> np.ndarray:
        return update_star_naive(skills, grouping, gain)


class _NaiveClique(Clique):
    """Reference Clique mode using the pairwise updater (testing only)."""

    def update(self, skills: np.ndarray, grouping: Grouping, gain: GainFunction) -> np.ndarray:
        return update_clique_naive(skills, grouping, gain)


#: Registry of the canonical interaction modes by name.
MODES: dict[str, InteractionMode] = {"star": Star(), "clique": Clique()}


def get_mode(mode: "str | InteractionMode") -> InteractionMode:
    """Resolve a mode given by name or instance.

    Accepts ``"star"``/``"clique"`` (case-insensitive) or an
    :class:`InteractionMode` instance, which is returned unchanged.
    """
    if isinstance(mode, InteractionMode):
        return mode
    if isinstance(mode, str):
        try:
            return MODES[mode.lower()]
        except KeyError:
            raise ValueError(f"unknown interaction mode {mode!r}; expected one of {sorted(MODES)}") from None
    raise TypeError(f"mode must be a string or InteractionMode, got {type(mode).__name__}")
