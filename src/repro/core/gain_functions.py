"""Learning-gain functions for 2-person interactions.

Section II of the paper defines the learning outcome of a 2-person
interaction between participants ``i`` and ``j`` with skills ``s_i > s_j``:
``s_i`` is unaltered and ``s_j`` becomes ``s_j + f(Δ)`` where
``Δ = s_i − s_j``.  The paper works with the *linear* family
``f(Δ) = r·Δ`` with learning rate ``r ∈ (0, 1)``; Section VII points out
that DyGroups can be adapted to any *concave* gain function, which
:mod:`repro.extensions.concave` implements on top of the abstractions here.

All gain functions are vectorized: they accept scalars or numpy arrays of
non-negative skill differences and apply elementwise.
"""

from __future__ import annotations

import abc
from typing import Union

import numpy as np

from repro._validation import require_learning_rate

__all__ = ["GainFunction", "LinearGain", "pairwise_gain"]

ArrayLike = Union[float, np.ndarray]


class GainFunction(abc.ABC):
    """Abstract learning-gain function ``f``.

    Subclasses implement :meth:`__call__` mapping a non-negative skill
    difference ``Δ`` to the learner's skill increment ``f(Δ)``.  Valid gain
    functions must satisfy the model's sanity conditions, which the test
    suite checks property-based:

    * ``f(0) == 0`` — no gap, no learning;
    * ``0 <= f(Δ) <= Δ`` — a learner never overtakes the teacher;
    * monotone non-decreasing in ``Δ``.
    """

    @abc.abstractmethod
    def __call__(self, delta: ArrayLike) -> ArrayLike:
        """Return the learning gain for skill difference ``delta >= 0``."""

    @property
    @abc.abstractmethod
    def is_linear(self) -> bool:
        """Whether the function is linear (enables closed-form updates)."""

    def directed_gain(self, teacher: ArrayLike, learner: ArrayLike) -> ArrayLike:
        """Gain of ``learner`` from ``teacher`` (the paper's ``f(i → j)``).

        Zero whenever the teacher is not more skilled than the learner.
        """
        delta = np.maximum(np.asarray(teacher, dtype=np.float64) - learner, 0.0)
        return self(delta)


class LinearGain(GainFunction):
    """The paper's linear learning-gain function ``f(Δ) = r·Δ``.

    Args:
        rate: the learning rate ``r``; must lie in the open interval (0, 1).

    Example:
        >>> f = LinearGain(0.5)
        >>> f(0.6)
        0.3
    """

    __slots__ = ("_rate",)

    def __init__(self, rate: float) -> None:
        self._rate = require_learning_rate(rate)

    @property
    def rate(self) -> float:
        """The learning rate ``r``."""
        return self._rate

    @property
    def is_linear(self) -> bool:
        return True

    def __call__(self, delta: ArrayLike) -> ArrayLike:
        delta = np.asarray(delta, dtype=np.float64)
        if np.any(delta < 0.0):
            raise ValueError("skill difference delta must be non-negative")
        result = self._rate * delta
        return float(result) if result.ndim == 0 else result

    def __repr__(self) -> str:
        return f"LinearGain(rate={self._rate})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LinearGain) and other._rate == self._rate

    def __hash__(self) -> int:
        return hash((LinearGain, self._rate))


def pairwise_gain(gain: GainFunction, s_i: float, s_j: float) -> float:
    """Skill increment of participant ``j`` after interacting with ``i``.

    Implements the asymmetric 2-person interaction of Section II: the more
    skilled participant is unaltered; the less skilled one gains
    ``f(|s_i − s_j|)``.  Returns 0 when ``s_i <= s_j``.
    """
    if s_i <= s_j:
        return 0.0
    return float(gain(s_i - s_j))
