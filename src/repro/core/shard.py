"""Sharded round kernels: million-participant rounds with bounded memory.

Both ``DYGROUPS-MODE-LOCAL`` groupers are pure functions of the
descending skill order, and both batched updates are group-local — so a
round over ``n`` participants decomposes exactly:

* **propose** — partition each trial's population into contiguous
  *skill-range* shards (:func:`shard_cuts` picks the boundary values
  with one O(n) introselect per row), stable-sort each shard
  independently, and merge.  Because shards are value-disjoint and every
  tie shares a shard by construction, the k-way merge degenerates to
  concatenation high-to-low — and the result is the monolithic
  :func:`repro.core.batch.descending_orders` permutation **bit for
  bit**, including the ascending-index tie convention and the
  IEEE-754 bit-view radix fast path for positive rows.
* **update** — Star's group-max gather and Clique's Theorem-3
  prefix-sum run per contiguous *group chunk* (:func:`shard_group_slices`)
  into a shared output, performing the identical elementwise float
  operations on the identical operands as the monolithic kernels, so
  bit-identity is structural rather than numerical luck.

Shard boundaries are recomputed from the *current* skills every call —
that is the per-round rebalancing: as skills drift, the value ranges
follow, keeping shards near ``n / shards`` elements (the
``core.shard.imbalance`` gauge reports the worst ratio; an all-ties
population collapses into one shard and the gauge says so).

Memory: the monolithic path materializes ``(R, n)`` sort scratch plus
full-population update temporaries at once.  The sharded path bounds
the *sort working set* to one shard at a time and the *update
temporaries* to one group chunk at a time, and can spill its two large
persistent arrays (the ``(R, n)`` order output and the per-row grouped
index scratch) to an unlinked temp-file ``np.memmap`` when their
estimated footprint exceeds ``REPRO_SHARD_MEM_MB``
(:meth:`ShardPlan.should_spill`) — the out-of-core option that keeps
resident set bounded while the page cache absorbs the rest.

Knobs: ``REPRO_SHARDS`` (shard count; ``0``/unset auto-sizes at
:data:`DEFAULT_SHARD_SIZE` elements per shard) and
``REPRO_SHARD_MEM_MB`` (spill threshold; unset never spills), both
overridable per call through :class:`ShardPlan`.

Observability: ``core.shard.orders`` / ``core.shard.partial_sorts`` /
``core.shard.spills`` counters, ``core.shard.count`` /
``core.shard.imbalance`` gauges, and one ``shard_plan`` journal event
per sharded propose.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass

import numpy as np

from repro._validation import require_divisible_groups
from repro.core.gain_functions import GainFunction
from repro.core.interactions import InteractionMode
from repro.obs import runtime as _obs

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "SHARDS_ENV",
    "SHARD_MEM_ENV",
    "ShardPlan",
    "apply_update_sharded",
    "bucket_partition",
    "resolve_shard_mem_mb",
    "resolve_shards",
    "shard_cuts",
    "shard_group_slices",
    "sharded_descending_orders",
    "update_clique_sharded",
    "update_star_sharded",
]

#: Environment variable supplying the default shard count (0/unset = auto).
SHARDS_ENV = "REPRO_SHARDS"

#: Environment variable supplying the spill threshold in MiB (unset = never).
SHARD_MEM_ENV = "REPRO_SHARD_MEM_MB"

#: Auto-sizing target: elements per shard when no count is requested.
DEFAULT_SHARD_SIZE = 262_144


def resolve_shards(shards: "int | None" = None) -> int:
    """Resolve the requested shard count (argument → :data:`SHARDS_ENV` → 0).

    ``0`` means "not requested": :meth:`ShardPlan.shard_count` auto-sizes
    it, and ``engine="auto"`` does not prefer the sharded path for it.

    Raises:
        ValueError: for a negative or non-integer count, or a variable
            value that is not an integer.
    """
    if shards is None:
        shards = 0
    if isinstance(shards, bool) or not isinstance(shards, int) or shards < 0:
        raise ValueError(f"shards must be a non-negative int, got {shards!r}")
    if shards == 0:
        raw = os.environ.get(SHARDS_ENV, "").strip()
        if not raw:
            return 0
        try:
            shards = int(raw)
        except ValueError:
            raise ValueError(f"{SHARDS_ENV} must be an integer, got {raw!r}") from None
        if shards < 0:
            raise ValueError(f"{SHARDS_ENV} must be non-negative, got {shards}")
    return shards


def resolve_shard_mem_mb(mem_mb: "float | None" = None) -> "float | None":
    """Resolve the spill threshold (argument → :data:`SHARD_MEM_ENV` → None).

    Raises:
        ValueError: for a non-positive threshold or a variable value that
            is not a number.
    """
    if mem_mb is None:
        raw = os.environ.get(SHARD_MEM_ENV, "").strip()
        if not raw:
            return None
        try:
            mem_mb = float(raw)
        except ValueError:
            raise ValueError(f"{SHARD_MEM_ENV} must be a number, got {raw!r}") from None
    if isinstance(mem_mb, bool) or not isinstance(mem_mb, (int, float)) or mem_mb <= 0:
        raise ValueError(f"mem_mb must be a positive number, got {mem_mb!r}")
    return float(mem_mb)


@dataclass(frozen=True)
class ShardPlan:
    """How a round's population is partitioned into skill-range shards.

    Attributes:
        shards: requested shard count; ``0`` auto-sizes to about
            :data:`DEFAULT_SHARD_SIZE` elements per shard.  The effective
            count is clamped to ``[1, n]`` per population.
        mem_mb: out-of-core threshold in MiB — when the sharded order
            pass's persistent arrays would exceed it, they live in an
            unlinked temp-file memmap instead of the heap.  ``None``
            never spills.
    """

    shards: int = 0
    mem_mb: "float | None" = None

    def __post_init__(self) -> None:
        if isinstance(self.shards, bool) or not isinstance(self.shards, int) or self.shards < 0:
            raise ValueError(f"shards must be a non-negative int, got {self.shards!r}")
        if self.mem_mb is not None and (
            isinstance(self.mem_mb, bool)
            or not isinstance(self.mem_mb, (int, float))
            or self.mem_mb <= 0
        ):
            raise ValueError(f"mem_mb must be a positive number, got {self.mem_mb!r}")

    @classmethod
    def from_env(cls, shards: "int | None" = None) -> "ShardPlan":
        """A plan from the environment knobs, with ``shards`` overriding."""
        return cls(shards=resolve_shards(shards), mem_mb=resolve_shard_mem_mb())

    def shard_count(self, n: int) -> int:
        """The effective shard count for a population of ``n``."""
        if n <= 0:
            return 1
        if self.shards == 0:
            return max(1, -(-n // DEFAULT_SHARD_SIZE))
        return max(1, min(self.shards, n))

    def should_spill(self, trials: int, n: int) -> bool:
        """Whether the order pass's persistent arrays exceed the threshold.

        The estimate covers the ``(trials, n)`` order output plus the
        per-row grouped-index scratch; transient per-shard sort buffers
        are already bounded by the shard size.
        """
        if self.mem_mb is None:
            return False
        estimate = (trials * n + n) * np.dtype(np.intp).itemsize
        return estimate > self.mem_mb * 1024 * 1024


def shard_cuts(values: np.ndarray, shards: int) -> np.ndarray:
    """Ascending boundary values splitting one row into value-range shards.

    One ``np.partition`` introselect (O(n)) places the boundary elements;
    the returned cut values partition by *value*, never by count, so a
    run of ties always lands whole in one shard — the property that
    makes per-shard sorting reproduce the global stable tie order.
    Heavy ties can therefore yield duplicate cuts (empty shards) or one
    oversized shard; both are correct, just imbalanced.
    """
    n = values.shape[0]
    count = max(1, min(shards, n))
    if count <= 1:
        return np.empty(0, dtype=np.float64)
    positions = sorted({n - (n * s) // count for s in range(1, count)} - {0, n})
    if not positions:
        return np.empty(0, dtype=np.float64)
    part = np.partition(values, positions)
    return np.ascontiguousarray(part[positions], dtype=np.float64)


def bucket_partition(
    values: np.ndarray, cuts: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Stable group-by-shard of one row: ``(offsets, grouped_indices)``.

    ``grouped[offsets[b]:offsets[b + 1]]`` lists the original indices of
    shard ``b`` — shard 0 holds the highest values — each shard in
    **ascending original index** order, so a stable descending sort of a
    shard's gathered values reproduces the global tie-break exactly.
    Elements equal to a cut value join the higher shard (``side="right"``
    counts them with the values above the cut), which is what keeps ties
    unsplit.
    """
    count = cuts.shape[0] + 1
    fences = np.searchsorted(cuts, values, side="right")
    shard_ids = (cuts.shape[0] - fences).astype(np.uint16 if count <= 65_535 else np.intp)
    grouped = np.argsort(shard_ids, kind="stable")
    counts = np.bincount(shard_ids, minlength=count)
    offsets = np.zeros(count + 1, dtype=np.intp)
    np.cumsum(counts, out=offsets[1:])
    return offsets, grouped


def _order_scratch(trials: int, n: int, spill: bool) -> "tuple[np.ndarray, np.ndarray]":
    """The order output and per-row index scratch, heap or memmap backed.

    Spilled arrays live in immediately-unlinked temp files: the mapping
    keeps the pages reachable, the kernel reclaims them under pressure,
    and the space frees itself when the arrays die — no cleanup path.
    """
    if not spill:
        return np.empty((trials, n), dtype=np.intp), np.empty(n, dtype=np.intp)
    orders = np.memmap(
        tempfile.TemporaryFile(prefix="repro-shard-orders-"),
        dtype=np.intp, mode="w+", shape=(trials, n),
    )
    scratch = np.memmap(
        tempfile.TemporaryFile(prefix="repro-shard-scratch-"),
        dtype=np.intp, mode="w+", shape=(n,),
    )
    return orders, scratch


def _observe_orders(
    *, trials: int, n: int, shards: int, largest: int, partial_sorts: int, spilled: bool
) -> None:
    """Account one sharded order pass in the metrics registry and journal."""
    obs = _obs.state()
    if obs is None:
        return
    metrics = obs.metrics
    metrics.counter("core.shard.orders").inc(trials)
    metrics.counter("core.shard.partial_sorts").inc(partial_sorts)
    if spilled:
        metrics.counter("core.shard.spills").inc()
    metrics.gauge("core.shard.count").set(shards)
    ideal = n / shards if shards else 1.0
    metrics.gauge("core.shard.imbalance").set(largest / ideal if ideal else 1.0)
    if obs.journal is not None:
        obs.journal.emit(
            "shard_plan",
            trials=trials,
            n=n,
            shards=shards,
            largest_shard=int(largest),
            partial_sorts=partial_sorts,
            spilled=bool(spilled),
        )


def sharded_descending_orders(
    matrix: np.ndarray, plan: "ShardPlan | None" = None
) -> np.ndarray:
    """Sharded stable descending argsort of each row — bit-identical.

    The sharded variant of :func:`repro.core.batch.descending_orders`:
    per row, pick value-range boundaries (:func:`shard_cuts`), group
    elements by shard in ascending-index order
    (:func:`bucket_partition`), stable-sort each shard's values
    descending, and concatenate high-to-low.  Shards are value-disjoint
    and ties never straddle a boundary, so the concatenation *is* the
    k-way merge and equals the monolithic stable argsort bit for bit —
    including the positive-row ``int64`` bit-view radix fast path, which
    is decided once per matrix exactly like the monolith.

    With ``plan.mem_mb`` set and exceeded, the order output and index
    scratch spill to unlinked temp-file memmaps
    (``core.shard.spills`` counts it); the returned array is then a
    disk-backed ``np.memmap`` that behaves like any ndarray.
    """
    plan = plan if plan is not None else ShardPlan()
    matrix = np.ascontiguousarray(matrix, dtype=np.float64)
    trials, n = matrix.shape
    shards = plan.shard_count(n)
    # Same fast-path rule, same scope (the whole matrix), as the monolith.
    bitview = bool(matrix.size) and bool(np.all(matrix > 0.0))
    spilled = plan.should_spill(trials, n)
    orders, scratch = _order_scratch(trials, n, spilled)
    largest = 0
    partial_sorts = 0
    for r in range(trials):
        row = matrix[r]
        cuts = shard_cuts(row, shards)
        if cuts.size == 0:
            # One shard (requested, tiny n, or an all-ties row): the
            # plain stable sort, just like the monolith's row.
            if bitview:
                orders[r] = np.argsort(-row.view(np.int64), kind="stable")
            else:
                orders[r] = np.argsort(-row, kind="stable")
            largest = max(largest, n)
            partial_sorts += 1
            continue
        offsets, grouped = bucket_partition(row, cuts)
        scratch[:] = grouped
        out_row = orders[r]
        for b in range(offsets.shape[0] - 1):
            lo, hi = int(offsets[b]), int(offsets[b + 1])
            if hi <= lo:
                continue
            idx = scratch[lo:hi]
            vals = np.ascontiguousarray(row[idx])
            if bitview:
                local = np.argsort(-vals.view(np.int64), kind="stable")
            else:
                local = np.argsort(-vals, kind="stable")
            out_row[lo:hi] = idx[local]
            largest = max(largest, hi - lo)
            partial_sorts += 1
    _observe_orders(
        trials=trials, n=n, shards=shards,
        largest=largest, partial_sorts=partial_sorts, spilled=spilled,
    )
    return orders


def shard_group_slices(k: int, shards: int) -> "list[tuple[int, int]]":
    """Partition ``k`` groups into at most ``shards`` contiguous chunks.

    The update kernels' unit of locality: each ``(g0, g1)`` chunk covers
    about ``k / shards`` groups, so chunk temporaries stay near
    ``n / shards`` elements regardless of ``n``.
    """
    count = max(1, min(shards, k))
    edges = [(k * s) // count for s in range(count + 1)]
    return [(edges[s], edges[s + 1]) for s in range(count) if edges[s + 1] > edges[s]]


def _check_members(skills: np.ndarray, members: np.ndarray, k: int) -> int:
    """Validate a members matrix against a skill matrix; returns group size."""
    if skills.ndim != 2:
        raise ValueError(f"skills must be 2-D (trials, n), got shape {skills.shape}")
    if members.shape != skills.shape:
        raise ValueError(
            f"members matrix shape {members.shape} does not match skills shape {skills.shape}"
        )
    return require_divisible_groups(skills.shape[1], k)


def update_star_sharded(
    skills: np.ndarray,
    members: np.ndarray,
    k: int,
    gain: GainFunction,
    plan: "ShardPlan | None" = None,
) -> np.ndarray:
    """Shard-local ``UPDATE-SKILLS-STAR`` — bit-identical, bounded scratch.

    Runs :func:`repro.engine.stacked.update_star_many`'s exact
    gather → group-max → gain → scatter arithmetic one group chunk at a
    time into a shared output.  The update is group-local, so chunking
    changes only how much is materialized at once — never which float
    operation runs on which operands.
    """
    t = _check_members(skills, members, k)
    plan = plan if plan is not None else ShardPlan()
    trials, n = skills.shape
    mem3 = members.reshape(trials, k, t)
    out = np.empty_like(skills)
    for g0, g1 in shard_group_slices(k, plan.shard_count(n)):
        cols = np.ascontiguousarray(mem3[:, g0:g1]).reshape(trials, (g1 - g0) * t)
        group_vals = np.take_along_axis(skills, cols, axis=1).reshape(trials, g1 - g0, t)
        teachers = np.max(group_vals, axis=2, keepdims=True)
        updated = group_vals + np.asarray(gain(teachers - group_vals), dtype=np.float64)
        np.put_along_axis(out, cols, updated.reshape(trials, (g1 - g0) * t), axis=1)
    return out


def update_clique_sharded(
    skills: np.ndarray,
    members: np.ndarray,
    k: int,
    gain: GainFunction,
    plan: "ShardPlan | None" = None,
) -> np.ndarray:
    """Shard-local ``UPDATE-SKILLS-CLIQUE`` (Theorem 3) for linear gains.

    The group-chunked twin of
    :func:`repro.engine.stacked.update_clique_many`: per chunk, the same
    two-pass stable sort (by member index, then stable by descending
    value — the scalar ``lexsort((-value, member))`` convention) and the
    same prefix-sum increment, on the same operands.  The positive-value
    bit-view fast path is decided per chunk; for positive values the bit
    order equals the value order with identical tie-keeping, so the
    permutation — and therefore every downstream float — is unchanged.

    Raises:
        ValueError: for a non-linear gain function (no closed form).
    """
    t = _check_members(skills, members, k)
    if not gain.is_linear:
        raise ValueError("update_clique_sharded requires a linear gain function")
    rate: float = gain.rate  # type: ignore[attr-defined]
    plan = plan if plan is not None else ShardPlan()
    trials, n = skills.shape
    mem3 = members.reshape(trials, k, t)
    out = np.empty_like(skills)
    for g0, g1 in shard_group_slices(k, plan.shard_count(n)):
        groups = g1 - g0
        mem = np.ascontiguousarray(mem3[:, g0:g1])
        vals = np.take_along_axis(skills, mem.reshape(trials, groups * t), axis=1).reshape(
            trials, groups, t
        )
        by_index = np.argsort(mem, axis=2, kind="stable")
        mem = np.take_along_axis(mem, by_index, axis=2)
        vals = np.take_along_axis(vals, by_index, axis=2)
        if vals.size and np.all(vals > 0.0):
            by_value = np.argsort(
                -np.ascontiguousarray(vals).view(np.int64), axis=2, kind="stable"
            )
        else:
            by_value = np.argsort(-vals, axis=2, kind="stable")
        mem = np.take_along_axis(mem, by_value, axis=2)
        vals = np.take_along_axis(vals, by_value, axis=2)
        increment = np.zeros_like(vals)
        if t > 1:
            prefix = np.cumsum(vals, axis=2)
            ranks = np.arange(1, t, dtype=np.float64)
            increment[:, :, 1:] = rate * (prefix[:, :, :-1] - ranks * vals[:, :, 1:]) / ranks
        np.put_along_axis(
            out,
            mem.reshape(trials, groups * t),
            (vals + increment).reshape(trials, groups * t),
            axis=1,
        )
    return out


def apply_update_sharded(
    skills: np.ndarray,
    members: np.ndarray,
    k: int,
    mode: InteractionMode,
    gain: GainFunction,
    plan: "ShardPlan | None" = None,
) -> np.ndarray:
    """Dispatch the shard-local skill update for a mode.

    Raises:
        ValueError: for a mode without a batched update, or clique with a
            non-linear gain.
    """
    if mode.name == "star":
        return update_star_sharded(skills, members, k, gain, plan)
    if mode.name == "clique":
        return update_clique_sharded(skills, members, k, gain, plan)
    raise ValueError(f"mode {mode.name!r} has no sharded skill update")
