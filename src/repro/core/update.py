"""Skill-update engines (``UPDATE-SKILLS-STAR`` / ``UPDATE-SKILLS-CLIQUE``).

Given the current skill array and a grouping, these functions return the
post-round skill array under the Star or Clique interaction mode of
Section II.  The fast implementations follow the paper's complexity
analysis:

* Star: each learner interacts only with its group's teacher — ``O(n)``.
* Clique: Theorem 3's prefix-sum trick computes all within-group averaged
  gains in ``O(n)`` total (after per-group sorting) for *linear* gain
  functions.  For non-linear gain functions (the Section VII extension) the
  averaged gain is not a function of prefix sums, so a naive ``O(n·t)``
  reference is used instead.

Naive pairwise reference implementations are exported as well; the test
suite checks fast ≡ naive property-based.

Tie convention (clique): the paper's Equation 2 divides the ``i``-th
ranked member's summed pairwise gain by ``i − 1`` — its *rank* minus one,
not the number of strictly more skilled peers.  We implement that formula
literally; with duplicated skill values members tied at the same skill are
ranked stably by participant index, so the update is deterministic and
independent of the order in which a group's members are listed.  (An
alternative strictly-greater-divisor convention looks natural but breaks
Theorem 4: diluting a weak learner's average with mediocre teachers can
then change the optimal grouping.  The property-based test suite contains
the counterexample that rules it out.)
"""

from __future__ import annotations

import numpy as np

from repro.core.gain_functions import GainFunction
from repro.core.grouping import Grouping

__all__ = [
    "update_star",
    "update_clique",
    "update_star_naive",
    "update_clique_naive",
    "group_max",
]


def _check_inputs(skills: np.ndarray, grouping: Grouping) -> None:
    if skills.ndim != 1:
        raise ValueError(f"skills must be 1-D, got shape {skills.shape}")
    if len(skills) != grouping.n:
        raise ValueError(f"skills has {len(skills)} entries but grouping covers n={grouping.n}")


def _group_max_unchecked(skills: np.ndarray, grouping: Grouping) -> np.ndarray:
    """:func:`group_max` minus input validation, for pre-validated hot paths."""
    maxima = np.full(grouping.k, -np.inf)
    np.maximum.at(maxima, grouping.assignment, skills)
    return maxima


def group_max(skills: np.ndarray, grouping: Grouping) -> np.ndarray:
    """Per-group maximum skill (the 'teacher' skill), indexed by group."""
    _check_inputs(skills, grouping)
    return _group_max_unchecked(skills, grouping)


def update_star(skills: np.ndarray, grouping: Grouping, gain: GainFunction) -> np.ndarray:
    """Post-round skills under Star mode, vectorized ``O(n)``.

    Every member learns from its group's highest-skilled member; the
    teacher itself has zero skill difference and is unaltered.
    """
    _check_inputs(skills, grouping)
    teachers = _group_max_unchecked(skills, grouping)[grouping.assignment]
    delta = teachers - skills
    return skills + np.asarray(gain(delta), dtype=np.float64)


def update_star_naive(skills: np.ndarray, grouping: Grouping, gain: GainFunction) -> np.ndarray:
    """Reference Star update: explicit loop over groups and members."""
    _check_inputs(skills, grouping)
    new = np.array(skills, dtype=np.float64, copy=True)
    for group in grouping:
        teacher = max(float(skills[m]) for m in group)
        for m in group:
            new[m] = skills[m] + gain.directed_gain(teacher, float(skills[m]))
    return new


def _sorted_group_matrix(skills: np.ndarray, grouping: Grouping) -> tuple[np.ndarray, np.ndarray]:
    """Sort members within each group by descending skill (stable by index).

    Returns ``(perm, s_mat)`` where ``perm`` is the participant permutation
    and ``s_mat`` is the ``(k, group_size)`` matrix of descending-sorted
    group skills, row ``g`` holding group ``g``'s members.  Ties keep
    ascending participant-index order, fixing the paper's rank ``i``
    deterministically.
    """
    labels = grouping.assignment
    # lexsort is stable and uses the *last* key as primary: sort by group
    # label, then by descending skill; ties fall back to index order.
    perm = np.lexsort((-skills, labels))
    s_mat = skills[perm].reshape(grouping.k, grouping.group_size)
    return perm, s_mat


def update_clique(skills: np.ndarray, grouping: Grouping, gain: GainFunction) -> np.ndarray:
    """Post-round skills under Clique mode.

    Uses the ``O(n)`` prefix-sum formulation of Theorem 3 when ``gain`` is
    linear; otherwise falls back to the naive pairwise computation.
    """
    _check_inputs(skills, grouping)
    if not gain.is_linear:
        return update_clique_naive(skills, grouping, gain)
    rate: float = gain.rate  # type: ignore[attr-defined]
    perm, s_mat = _sorted_group_matrix(skills, grouping)
    k, t = s_mat.shape
    increment = np.zeros_like(s_mat)
    if t > 1:
        # Theorem 3: with c_i the sum of the top-i skills, the member of
        # rank i+1 gains r·(c_i − i·s_{i+1}) / i.
        prefix = np.cumsum(s_mat, axis=1)
        ranks = np.arange(1, t, dtype=np.float64)
        increment[:, 1:] = rate * (prefix[:, :-1] - ranks * s_mat[:, 1:]) / ranks
    new = np.empty_like(skills, dtype=np.float64)
    new[perm] = (s_mat + increment).ravel()
    return new


def update_clique_naive(skills: np.ndarray, grouping: Grouping, gain: GainFunction) -> np.ndarray:
    """Reference Clique update: the literal Equation 2, ``O(t²)`` per group.

    The member of rank ``i`` (descending skill, ties broken by ascending
    participant index) gains ``(1/(i−1)) Σ_{j≠i} f(p_j → p_i)``.  Works
    with any :class:`GainFunction`.
    """
    _check_inputs(skills, grouping)
    new = np.array(skills, dtype=np.float64, copy=True)
    for group in grouping:
        ranked = sorted(group, key=lambda m: (-float(skills[m]), m))
        values = [float(skills[m]) for m in ranked]
        for i in range(1, len(ranked)):
            s = values[i]
            total = sum(gain.directed_gain(v, s) for v in values[:i])
            new[ranked[i]] = s + total / i
    return new
