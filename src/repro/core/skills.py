"""Skill-array helpers shared across the framework.

Participants are represented positionally: participant ``i`` owns entry
``i`` of a 1-D ``float64`` numpy array of strictly positive skills (see
Section II).  This module provides the small, heavily reused helpers for
those arrays — coercion/validation, stable descending ordering, and a
summary snapshot used by the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import as_skill_array

__all__ = ["as_skill_array", "descending_order", "skill_variance", "SkillSummary", "summarize"]


def descending_order(skills: np.ndarray) -> np.ndarray:  # noqa: DYG201 — hot path; inputs validated at the public entry points
    """Indices that sort ``skills`` in descending order (stable).

    Stability matters for reproducibility: participants with equal skills
    keep their index order, so groupers are deterministic functions of the
    input array.
    """
    # argsort is ascending and stable under kind="stable"; negating indices
    # would break stability, so sort ascending and reverse blocks of equal
    # values implicitly by sorting on the negated values with a stable sort.
    # Strictly positive doubles order identically to their int64 bit views
    # (one bit pattern per value — no signed zeros in the skill domain), and
    # numpy's stable sort on integer keys is a radix sort: same permutation,
    # faster.  Anything outside the validated domain takes the float sort.
    array = np.ascontiguousarray(skills, dtype=np.float64)
    if array.size and np.all(array > 0.0):
        return np.argsort(-array.view(np.int64), kind="stable")
    return np.argsort(-array, kind="stable")


def skill_variance(skills: np.ndarray) -> float:  # noqa: DYG201 — hot path; inputs validated at the public entry points
    """Population variance of the skill values (Theorem 2's tie-break)."""
    return float(np.var(np.asarray(skills, dtype=np.float64)))


@dataclass(frozen=True, slots=True)
class SkillSummary:
    """Snapshot statistics of a skill array."""

    n: int
    total: float
    mean: float
    variance: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.n} total={self.total:.6g} mean={self.mean:.6g} "
            f"var={self.variance:.6g} min={self.minimum:.6g} max={self.maximum:.6g}"
        )


def summarize(skills: np.ndarray) -> SkillSummary:
    """Compute a :class:`SkillSummary` for ``skills``."""
    array = np.asarray(skills, dtype=np.float64)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("skills must be a non-empty 1-D array")
    return SkillSummary(
        n=int(array.size),
        total=float(array.sum()),
        mean=float(array.mean()),
        variance=float(array.var()),
        minimum=float(array.min()),
        maximum=float(array.max()),
    )
