"""Round-local groupers (``DYGROUPS-MODE-LOCAL``, Algorithms 2 and 3).

Both groupers sort the participants by descending skill (``O(n log n)``)
and then assign in ``O(n)``:

* :func:`dygroups_star_local` — Algorithm 2.  The top-``k`` skills become
  the *teachers* of the ``k`` groups (Theorem 1: any such grouping
  maximizes the round gain).  Among all round-optimal groupings, the
  variance-maximizing one (Theorem 2) assigns the remaining members in
  descending *contiguous blocks*: the next ``n/k − 1`` best join teacher 1,
  the following block joins teacher 2, and so on.

* :func:`dygroups_clique_local` — Algorithm 3.  Deals the descending-sorted
  members *round-robin* over the ``k`` groups, producing the unique
  grouping whose ``j``-th ranked skill in group ``i`` dominates the
  ``j``-th ranked skill in group ``i+1`` (Theorem 4: round-gain optimal
  for the clique mode).
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_skill_array, require_divisible_groups
from repro.core.batch import flat_rank_listing
from repro.core.grouping import Grouping
from repro.core.skills import descending_order

__all__ = ["dygroups_star_local", "dygroups_clique_local"]


def dygroups_star_local(skills: np.ndarray, k: int) -> Grouping:
    """Variance-maximizing round-optimal grouping for Star mode.

    Args:
        skills: 1-D positive skill array of length ``n``.
        k: number of groups; must divide ``n``.

    Returns:
        A :class:`Grouping` where group ``i`` holds the ``i``-th best
        teacher plus the ``i``-th descending block of the remaining
        members.

    Example (the paper's toy example, Section III-A round 1):
        >>> import numpy as np
        >>> s = np.array([0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9])
        >>> [sorted(s[list(g)].tolist()) for g in dygroups_star_local(s, 3)]
        [[0.5, 0.6, 0.9], [0.3, 0.4, 0.8], [0.1, 0.2, 0.7]]
    """
    array = as_skill_array(skills)
    size = require_divisible_groups(len(array), k)
    order = descending_order(array)
    # The cached rank listing IS Algorithm 2 (teacher i + the i-th
    # descending block); indexed through the sort order it yields a
    # permutation of 0..n-1, so the trusted constructor applies.
    listing = flat_rank_listing(len(array), k, "star")
    return Grouping.from_members(order[listing].reshape(k, size))


def dygroups_clique_local(skills: np.ndarray, k: int) -> Grouping:
    """Round-gain-maximizing grouping for Clique mode (round-robin deal).

    Args:
        skills: 1-D positive skill array of length ``n``.
        k: number of groups; must divide ``n``.

    Returns:
        A :class:`Grouping` where member of descending rank ``j`` lands in
        group ``j mod k``.

    Example (the paper's toy example, Section III-B round 1):
        >>> import numpy as np
        >>> s = np.array([0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9])
        >>> [sorted(s[list(g)].tolist()) for g in dygroups_clique_local(s, 3)]
        [[0.3, 0.6, 0.9], [0.2, 0.5, 0.8], [0.1, 0.4, 0.7]]
    """
    array = as_skill_array(skills)
    size = require_divisible_groups(len(array), k)
    order = descending_order(array)
    # Same trusted path as the star grouper: the clique rank listing is
    # the round-robin deal, so order[listing] partitions 0..n-1 exactly.
    listing = flat_rank_listing(len(array), k, "clique")
    return Grouping.from_members(order[listing].reshape(k, size))
