"""Grouping data structures.

A *grouping* (Section II) partitions the ``n`` participants into ``k``
non-overlapping, equi-sized groups.  Participants are identified by their
integer index ``0 … n−1`` into the skill array; a :class:`Group` is an
immutable tuple of member indices and a :class:`Grouping` is an immutable
sequence of groups that is validated to be a proper equi-sized partition.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro._validation import require_divisible_groups

__all__ = ["Group", "Grouping"]


class Group(tuple):
    """An immutable group of participant indices.

    ``Group`` is a thin ``tuple`` subclass: cheap, hashable, and directly
    usable for numpy fancy indexing via :meth:`indices`.
    """

    __slots__ = ()

    def __new__(cls, members: Iterable[int]) -> "Group":
        if isinstance(members, np.ndarray) and np.issubdtype(members.dtype, np.integer):
            # tolist() converts to Python ints at C speed — this path is
            # hot when building groupings for millions of participants.
            members = tuple(members.tolist())
        else:
            members = tuple(int(m) for m in members)
        if len(members) == 0:
            raise ValueError("a group must have at least one member")
        if min(members) < 0:
            raise ValueError("member indices must be non-negative")
        if len(set(members)) != len(members):
            raise ValueError(f"group contains duplicate members: {members}")
        return super().__new__(cls, members)

    def indices(self) -> np.ndarray:
        """Member indices as an integer numpy array (for fancy indexing)."""
        return np.array(self, dtype=np.intp)

    def __repr__(self) -> str:
        return f"Group({list(self)})"


class Grouping:
    """A validated partition of ``n`` participants into ``k`` equi-sized groups.

    Args:
        groups: an iterable of groups (each an iterable of member indices).
        n: optional expected number of participants; inferred from the
            groups when omitted.

    Raises:
        ValueError: if the groups are not disjoint, do not cover exactly
            ``0 … n−1``, or are not all the same size.

    Example:
        >>> g = Grouping([[0, 3], [1, 2]])
        >>> g.k, g.group_size, g.n
        (2, 2, 4)
    """

    __slots__ = ("_groups", "_n", "_assignment")

    def __init__(self, groups: Iterable[Iterable[int]], *, n: int | None = None) -> None:
        self._groups: tuple[Group, ...] = tuple(
            member if isinstance(member, Group) else Group(member) for member in groups
        )
        if not self._groups:
            raise ValueError("a grouping must contain at least one group")
        sizes = {len(g) for g in self._groups}
        if len(sizes) != 1:
            raise ValueError(f"all groups must be equi-sized, got sizes {sorted(sizes)}")
        members = [m for g in self._groups for m in g]
        total = len(members)
        if n is not None and n != total:
            raise ValueError(f"grouping covers {total} members, expected n={n}")
        covered = set(members)
        if len(covered) != total:
            raise ValueError("groups must be disjoint")
        if covered != set(range(total)):
            raise ValueError(f"groups must cover exactly the indices 0..{total - 1}")
        self._n = total
        assignment = np.empty(total, dtype=np.intp)
        for gi, group in enumerate(self._groups):
            assignment[list(group)] = gi
        self._assignment = assignment

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_assignment(cls, assignment: Sequence[int] | np.ndarray) -> "Grouping":
        """Build a grouping from a length-``n`` group-label array.

        ``assignment[i]`` is the group index of participant ``i``.  Labels
        must be ``0 … k−1`` and yield equi-sized groups.
        """
        labels = np.asarray(assignment, dtype=np.intp)
        if labels.ndim != 1 or labels.size == 0:
            raise ValueError("assignment must be a non-empty 1-D sequence")
        k = int(labels.max()) + 1
        groups: list[list[int]] = [[] for _ in range(k)]
        for member, label in enumerate(labels):
            if label < 0:
                raise ValueError("group labels must be non-negative")
            groups[label].append(member)
        if any(not g for g in groups):
            raise ValueError("group labels must be contiguous 0..k-1 (found an empty group)")
        return cls(groups)

    @classmethod
    def blocks_of_sorted(cls, order: np.ndarray, k: int) -> "Grouping":
        """Partition an ordering of participants into ``k`` contiguous blocks."""
        n = len(order)
        size = require_divisible_groups(n, k)
        return cls(order[i * size : (i + 1) * size] for i in range(k))

    @classmethod
    def from_members(cls, members: np.ndarray) -> "Grouping":
        """Build a grouping from a ``(k, size)`` member-index matrix.

        Trusted fast path for the grouping kernels: the caller guarantees
        ``members`` is an integer matrix whose entries are a permutation
        of ``0 … n−1`` (rank listings indexed through a sort order are
        permutations by construction), so the partition checks of the
        validating constructor are skipped.  Hot in ``propose_batch`` and
        the serve-layer grouping memo, where constructor validation used
        to dominate the per-proposal cost.
        """
        k, size = members.shape
        n = k * size
        groups = tuple(
            tuple.__new__(Group, row) for row in members.tolist()
        )
        grouping = object.__new__(cls)
        grouping._groups = groups
        grouping._n = n
        assignment = np.empty(n, dtype=np.intp)
        assignment[members.ravel()] = np.repeat(np.arange(k, dtype=np.intp), size)
        grouping._assignment = assignment
        return grouping

    # -- accessors ---------------------------------------------------------

    @property
    def groups(self) -> tuple[Group, ...]:
        """The groups, in formation order."""
        return self._groups

    @property
    def n(self) -> int:
        """Total number of participants."""
        return self._n

    @property
    def k(self) -> int:
        """Number of groups."""
        return len(self._groups)

    @property
    def group_size(self) -> int:
        """Members per group (``n // k``)."""
        return self._n // len(self._groups)

    @property
    def assignment(self) -> np.ndarray:
        """Length-``n`` array mapping each participant to its group index."""
        return self._assignment.copy()

    def group_of(self, member: int) -> int:
        """Group index of ``member``."""
        if not 0 <= member < self._n:
            raise IndexError(f"member index {member} out of range 0..{self._n - 1}")
        return int(self._assignment[member])

    def canonical(self) -> tuple[tuple[int, ...], ...]:
        """Order-independent canonical form (sorted members, sorted groups).

        Two groupings are the *same partition* iff their canonical forms
        are equal; used for equality, hashing, and brute-force dedup.
        """
        return tuple(sorted(tuple(sorted(g)) for g in self._groups))

    # -- dunder ------------------------------------------------------------

    def __iter__(self) -> Iterator[Group]:
        return iter(self._groups)

    def __len__(self) -> int:
        return len(self._groups)

    def __getitem__(self, index: int) -> Group:
        return self._groups[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Grouping):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.canonical())

    def __repr__(self) -> str:
        inner = ", ".join(repr(list(g)) for g in self._groups)
        return f"Grouping([{inner}])"
