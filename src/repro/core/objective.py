"""TDG objective functions.

Problem 1 maximizes the aggregated learning gain over ``α`` rounds,
``Σ_t LG(G_t)``.  Because skill only ever increases and no skill is lost,
this telescopes into the *equivalent objective* of Section IV-C:

    ``Σ_t LG(G_t)  =  Σ_i (s_i^α − s_i^0)``

i.e. total final skill minus total initial skill.  Section IV-C further
rewrites the problem in terms of distances to the top skill,
``b_i = s_1 − s_i`` (Equation 4): maximizing total gain is equivalent to
*minimizing* ``Σ_i b_i^α``, since the top skill ``s_1`` is invariant.

These identities are load-bearing for the k=2 optimality proof, and this
module exposes them both for the algorithms and for the numeric theorem
checks in :mod:`repro.theory`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._validation import as_skill_array
from repro.core.gain_functions import GainFunction
from repro.core.grouping import Grouping
from repro.core.interactions import InteractionMode, get_mode

__all__ = [
    "learning_gain",
    "total_learning_gain",
    "gain_from_trajectory",
    "b_distances",
    "b_objective",
]


def learning_gain(
    skills: np.ndarray,
    grouping: Grouping,
    mode: "str | InteractionMode",
    gain: GainFunction,
) -> float:
    """Aggregated learning gain ``LG(G)`` of one round (Equation 3)."""
    return get_mode(mode).round_gain(as_skill_array(skills), grouping, gain)


def total_learning_gain(
    skills: np.ndarray,
    groupings: Sequence[Grouping],
    mode: "str | InteractionMode",
    gain: GainFunction,
) -> float:
    """Total gain ``Σ_t LG(G_t)`` of a grouping sequence applied in order.

    Skill values are advanced round by round; the input array is not
    mutated.
    """
    resolved = get_mode(mode)
    current = as_skill_array(skills)
    total = 0.0
    for grouping in groupings:
        updated = resolved.update(current, grouping, gain)
        total += float(np.sum(updated - current))
        current = updated
    return total


def gain_from_trajectory(initial: np.ndarray, final: np.ndarray) -> float:
    """Total gain via the telescoped objective ``Σ_i (s_i^α − s_i^0)``."""
    initial = np.asarray(initial, dtype=np.float64)
    final = np.asarray(final, dtype=np.float64)
    if initial.shape != final.shape:
        raise ValueError(f"shape mismatch: initial {initial.shape} vs final {final.shape}")
    return float(np.sum(final - initial))


def b_distances(skills: np.ndarray) -> np.ndarray:
    """Distances to the highest skill, ``b_i = max(s) − s_i`` (Equation 4)."""
    array = np.asarray(skills, dtype=np.float64)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("skills must be a non-empty 1-D array")
    return array.max() - array


def b_objective(skills: np.ndarray) -> float:
    """The Section IV-C surrogate ``Σ_i b_i`` — lower is better.

    Minimizing this after ``α`` rounds is equivalent to maximizing the
    total learning gain because the top skill never changes.
    """
    return float(np.sum(b_distances(skills)))
