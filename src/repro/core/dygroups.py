"""The DyGroups algorithmic framework (Algorithm 1).

DyGroups is greedy: each round it forms the grouping that maximizes that
round's aggregated learning gain, breaking ties among round-optimal
groupings by maximizing the post-round skill *variance* (Theorem 2) —
which keeps better teachers available for later rounds and is what makes
the greedy sequence globally optimal for Star mode with ``k = 2``
(Theorem 5).

Two entry points:

* the policy classes :class:`DyGroupsStar` / :class:`DyGroupsClique`, for
  use with :func:`repro.core.simulation.simulate` (and hence head-to-head
  with the baselines);
* the convenience function :func:`dygroups`, which mirrors Algorithm 1's
  signature — skills, ``k``, ``r``, ``α``, mode — and returns the full
  :class:`~repro.core.simulation.SimulationResult` (the α groupings plus
  the gain trajectory).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import contracts as _contracts
from repro.core.grouping import Grouping
from repro.core.interactions import InteractionMode, get_mode
from repro.core.local import dygroups_clique_local, dygroups_star_local
from repro.core.simulation import GroupingPolicy, SimulationResult, simulate

__all__ = ["DyGroupsStar", "DyGroupsClique", "dygroups", "dygroups_policy"]


class DyGroupsStar(GroupingPolicy):
    """``DYGROUPS-STAR``: Algorithm 2 applied every round.

    Deterministic; the ``rng`` argument is ignored.
    """

    name = "dygroups-star"

    def propose(self, skills: np.ndarray, k: int, rng: np.random.Generator) -> Grouping:
        grouping = dygroups_star_local(skills, k)
        if _contracts.contracts_enabled():
            _contracts.check_top_k_teachers(skills, grouping)
        return grouping


class DyGroupsClique(GroupingPolicy):
    """``DYGROUPS-CLIQUE``: Algorithm 3 applied every round.

    Deterministic; the ``rng`` argument is ignored.
    """

    name = "dygroups-clique"

    def propose(self, skills: np.ndarray, k: int, rng: np.random.Generator) -> Grouping:
        grouping = dygroups_clique_local(skills, k)
        if _contracts.contracts_enabled():
            # The round-robin deal places rank j in group j mod k, so the
            # per-group maxima are exactly the global top-k here as well.
            _contracts.check_top_k_teachers(skills, grouping)
        return grouping


def dygroups_policy(mode: "str | InteractionMode") -> GroupingPolicy:
    """The DyGroups policy matching an interaction mode."""
    resolved = get_mode(mode)
    if resolved.name == "star":
        return DyGroupsStar()
    if resolved.name == "clique":
        return DyGroupsClique()
    raise ValueError(f"no DyGroups instantiation for mode {resolved.name!r}")


def dygroups(
    skills: np.ndarray,
    *,
    k: int,
    alpha: int,
    rate: float,
    mode: "str | InteractionMode" = "star",
    record_groupings: bool = True,
    record_history: bool = False,
) -> SimulationResult:
    """Run DyGroups end to end (Algorithm 1).

    Args:
        skills: initial positive skill values, one per participant.
        k: number of groups per round (must divide ``len(skills)``).
        alpha: number of rounds.
        rate: linear learning rate ``r ∈ (0, 1)``.
        mode: ``"star"`` or ``"clique"`` (or an
            :class:`~repro.core.interactions.InteractionMode`).
        record_groupings: keep the per-round groupings on the result.
        record_history: keep the full ``(α+1, n)`` skill trajectory.

    Returns:
        The :class:`~repro.core.simulation.SimulationResult`, whose
        ``groupings`` attribute is the ``G_1 … G_α`` sequence of
        Algorithm 1 and whose ``total_gain`` is the TDG objective value.

    Example:
        >>> import numpy as np
        >>> result = dygroups(
        ...     np.array([0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]),
        ...     k=3, alpha=3, rate=0.5, mode="star")
        >>> round(result.total_gain, 6)
        2.55
    """
    return simulate(
        dygroups_policy(mode),
        skills,
        k=k,
        alpha=alpha,
        mode=mode,
        rate=rate,
        record_groupings=record_groupings,
        record_history=record_history,
    )
