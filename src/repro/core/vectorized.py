"""Stacked-trial simulation engine: all trials advance in lock-step.

Every effectiveness and runtime figure in the paper averages ``R``
independent trials of the same ``(policy, n, k, α, mode)`` configuration.
The scalar engine (:func:`repro.core.simulation.simulate`) runs them one
at a time; this module runs the whole stack per round with a handful of
vectorized numpy calls:

* both ``DYGROUPS-MODE-LOCAL`` groupers (and the percentile baseline) are
  pure functions of the descending order, so proposing for ``R`` trials is
  one ``(R, n)`` stable argsort (:func:`repro.core.batch.descending_orders`)
  plus an index gather;
* the Star update is a row-wise group-max gather over the ``(R, k, t)``
  member tensor;
* the Clique update applies Theorem 3's prefix-sum formula to the
  within-group descending sort of the same tensor.

Bit-identity with the scalar engine is a hard design constraint, pinned
by hypothesis properties in ``tests/properties``: the round step itself
lives in :class:`repro.engine.stacked.StackedRoundKernel` (with the
batched Star/Clique update kernels beside it), which performs the same
float operations, on the same operands, as the scalar kernel.  This
module keeps the driver: trial stacking, per-trial seeding, trajectory
recording, and the scalar fallback.

Policies without a vectorization (annealing, k-means, LPA, brute force)
fall back to per-trial scalar :func:`~repro.core.simulation.simulate`
calls automatically; :func:`simulate_many` is the single entry point
either way, :func:`vectorize_policy` is the dispatch, and
:func:`repro.engine.select.select_engine` is the decision.
"""

from __future__ import annotations

import abc
import logging
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro._validation import require_divisible_groups, require_positive_int
from repro.core.batch import (
    SharedMatrix,
    as_skills_matrix,
    descending_orders,
    flat_rank_listing,
    shared_memory_available,
)
from repro.core.gain_functions import GainFunction, LinearGain
from repro.core.interactions import InteractionMode, get_mode
from repro.core.simulation import GroupingPolicy, SimulationResult, simulate
from repro.engine.kernel import check_required_mode
from repro.engine.select import ENGINES, select_engine
from repro.engine.stacked import (
    StackedRoundKernel,
    check_members_are_permutations as _check_members_are_permutations,  # noqa: F401 - back-compat
    update_clique_many,
    update_star_many,
)
from repro.obs import trace as _trace

__all__ = [
    "ENGINES",
    "BatchSimulationResult",
    "SharedMatrix",
    "VectorizedPolicy",
    "shared_memory_available",
    "simulate_many",
    "update_clique_many",
    "update_star_many",
    "vectorize_policy",
]

_log = logging.getLogger("repro.core.vectorized")


class VectorizedPolicy(abc.ABC):
    """A grouping policy that proposes for a whole stack of trials at once.

    The batched analogue of :class:`~repro.core.simulation.GroupingPolicy`:
    instead of one :class:`~repro.core.grouping.Grouping`, a proposal is a
    ``(R, n)`` *members matrix* whose row ``r`` lists participant indices
    such that group ``g`` of trial ``r`` occupies the contiguous column
    slice ``[g·t, (g+1)·t)`` with ``t = n // k``.  Each row must be a
    permutation of ``0 … n−1``.
    """

    #: Must equal the wrapped scalar policy's ``name``.
    name: str = ""

    #: Whether :meth:`propose_many_sharded` exists — true for policies
    #: whose proposal is a pure function of the descending skill order.
    shardable: bool = False

    @abc.abstractmethod
    def propose_many(
        self, skills: np.ndarray, k: int, rngs: Sequence[np.random.Generator]
    ) -> np.ndarray:
        """Return the ``(R, n)`` members matrix for the current skills.

        Args:
            skills: ``(R, n)`` current skill matrix (must not be mutated).
            k: number of groups; divides ``n``.
            rngs: one generator per trial — stochastic policies must draw
                exactly what their scalar counterpart draws, from the
                trial's own generator, so streams stay bit-identical.
        """

    def propose_many_sharded(
        self,
        skills: np.ndarray,
        k: int,
        rngs: Sequence[np.random.Generator],
        plan,
    ) -> np.ndarray:
        """Sharded :meth:`propose_many` under a ``ShardPlan`` — bit-identical.

        Only defined when :attr:`shardable` is true; the base raises.
        """
        raise ValueError(f"policy {self.name or type(self).__name__!r} has no sharded proposal")

    def reset(self) -> None:
        """Clear any cross-round state before a new batch of simulations."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class _RankListingPolicy(VectorizedPolicy):
    """Deterministic policy that is a pure function of the descending order.

    Covers DyGroups Star/Clique (Algorithms 2 and 3) and the percentile
    baseline: the member listing over *ranks* is fixed per ``(n, k)``, so
    a proposal is one batched argsort plus a gather — which is also what
    makes the family ``shardable``: swap the argsort for its sharded,
    bit-identical variant and the same gather applies.
    """

    shardable = True

    def __init__(self, name: str, listing_for: "callable") -> None:
        self.name = name
        self._listing_for = listing_for

    def propose_many(
        self, skills: np.ndarray, k: int, rngs: Sequence[np.random.Generator]
    ) -> np.ndarray:
        listing = self._listing_for(skills.shape[1], k)
        return descending_orders(skills)[:, listing]

    def propose_many_sharded(
        self,
        skills: np.ndarray,
        k: int,
        rngs: Sequence[np.random.Generator],
        plan,
    ) -> np.ndarray:
        from repro.core.shard import sharded_descending_orders

        listing = self._listing_for(skills.shape[1], k)
        return sharded_descending_orders(skills, plan)[:, listing]


@lru_cache(maxsize=256)
def _percentile_listing(n: int, k: int, p: float) -> np.ndarray:
    """Rank listing of ``PercentilePartitions(p)``, flattened per group.

    Mirrors the scalar seed/fill arithmetic exactly: the top ``(1 − p)``
    fraction (clamped to at least one seed per group, dealt round-robin)
    followed by descending filler blocks.
    """
    size = require_divisible_groups(n, k)
    seeds_total = max(k, min(int(round((1.0 - p) * n)), n))
    seeds_per_group = min(seeds_total // k, size)
    seed_count = seeds_per_group * k
    fill_per_group = size - seeds_per_group
    listing = np.empty(n, dtype=np.intp)
    for g in range(k):
        start = g * size
        listing[start : start + seeds_per_group] = np.arange(g, seed_count, k, dtype=np.intp)
        fill_start = seed_count + g * fill_per_group
        listing[start + seeds_per_group : start + size] = np.arange(
            fill_start, fill_start + fill_per_group, dtype=np.intp
        )
    listing.setflags(write=False)
    return listing


class _VectorizedRandom(VectorizedPolicy):
    """Batched ``RANDOM-ASSIGNMENT``: one permutation per trial per round.

    Each trial draws ``rng.permutation(n)`` from its own generator — the
    exact draw (count and order) of the scalar baseline, so a trial's
    random stream is unchanged by batching.
    """

    name = "random"

    def propose_many(
        self, skills: np.ndarray, k: int, rngs: Sequence[np.random.Generator]
    ) -> np.ndarray:
        trials, n = skills.shape
        members = np.empty((trials, n), dtype=np.intp)
        for i in range(trials):
            members[i] = rngs[i].permutation(n)
        return members


class _VectorizedStatic(VectorizedPolicy):
    """Batched static baseline: freeze the base policy's first proposal."""

    def __init__(self, base: VectorizedPolicy) -> None:
        self._base = base
        self._frozen: np.ndarray | None = None
        self.name = f"static-{base.name}"

    @property
    def shardable(self) -> bool:  # type: ignore[override]
        return self._base.shardable

    def reset(self) -> None:
        self._frozen = None
        self._base.reset()

    def propose_many(
        self, skills: np.ndarray, k: int, rngs: Sequence[np.random.Generator]
    ) -> np.ndarray:
        if self._frozen is None:
            self._frozen = self._base.propose_many(skills, k, rngs)
        return self._frozen

    def propose_many_sharded(
        self,
        skills: np.ndarray,
        k: int,
        rngs: Sequence[np.random.Generator],
        plan,
    ) -> np.ndarray:
        if self._frozen is None:
            self._frozen = self._base.propose_many_sharded(skills, k, rngs, plan)
        return self._frozen


def vectorize_policy(policy: GroupingPolicy) -> "VectorizedPolicy | None":
    """The batched counterpart of a scalar policy, or ``None``.

    Dispatches on the exact policy type (a subclass may have changed the
    semantics, so it does not inherit its parent's vectorization), then
    consults the unified registry's per-policy ``vectorizer`` hooks —
    which is how extension policies (e.g. ``fair-star``) vectorize
    without this module importing the extensions package.  Annealing,
    k-means, LPA, and brute force have no vectorized form —
    :func:`simulate_many` falls back to per-trial scalar simulation for
    them.
    """
    # Baselines import the core engine, so these imports must stay inside
    # the function to keep core → baselines out of import time.
    from repro.baselines.percentile import PercentilePartitions
    from repro.baselines.random_assignment import RandomAssignment
    from repro.baselines.static import StaticPolicy
    from repro.core.dygroups import DyGroupsClique, DyGroupsStar

    kind = type(policy)
    if kind is DyGroupsStar:
        return _RankListingPolicy(policy.name, lambda n, k: flat_rank_listing(n, k, "star"))
    if kind is DyGroupsClique:
        return _RankListingPolicy(policy.name, lambda n, k: flat_rank_listing(n, k, "clique"))
    if kind is RandomAssignment:
        return _VectorizedRandom()
    if kind is PercentilePartitions:
        p = policy.p  # type: ignore[attr-defined]
        return _RankListingPolicy(policy.name, lambda n, k: _percentile_listing(n, k, p))
    if kind is StaticPolicy:
        base = vectorize_policy(policy.base)  # type: ignore[attr-defined]
        return None if base is None else _VectorizedStatic(base)
    from repro.registry import vectorizer_for

    return vectorizer_for(policy)


# -- the stacked-trial engine -------------------------------------------------
# (The batched update kernels live in repro.engine.stacked and are
# re-exported above for compatibility.)


@dataclass(frozen=True)
class BatchSimulationResult:
    """Trajectories of ``R`` stacked α-round simulations.

    The batched analogue of
    :class:`~repro.core.simulation.SimulationResult`; trial ``i`` is row
    ``i`` everywhere, and :meth:`result` slices one trial back out.

    Attributes:
        policy_name: name of the grouping policy.
        mode_name: interaction mode (``"star"``/``"clique"``).
        k: number of groups per round.
        alpha: number of rounds.
        engine: which engine produced the rows (``"vectorized"``,
            ``"sharded"``, or ``"scalar"`` after a per-trial fallback).
        initial_skills: ``(R, n)`` skills before round 1.
        final_skills: ``(R, n)`` skills after round α.
        round_gains: ``(R, α)``; ``round_gains[i, t] = LG(G_{t+1})`` of
            trial ``i``.
        skill_history: ``(R, α+1, n)`` trajectory (``None`` unless
            recording was requested).
        round_seconds: ``(R, α)`` per-round seconds (``None`` unless
            timing was requested or observability is enabled).  On the
            vectorized engine a round advances all trials at once, so each
            trial is attributed the batch duration divided by ``R``.
        batch_round_seconds: length-α seconds the vectorized engine spent
            per stacked round (``None`` on the scalar fallback).
    """

    policy_name: str
    mode_name: str
    k: int
    alpha: int
    engine: str
    initial_skills: np.ndarray
    final_skills: np.ndarray
    round_gains: np.ndarray
    skill_history: np.ndarray | None = None
    round_seconds: np.ndarray | None = None
    batch_round_seconds: np.ndarray | None = None

    @property
    def trials(self) -> int:
        """Number of stacked trials ``R``."""
        return int(self.initial_skills.shape[0])

    @property
    def n(self) -> int:
        """Number of participants per trial."""
        return int(self.initial_skills.shape[1])

    @property
    def total_gains(self) -> np.ndarray:
        """Length-``R`` total gain per trial (the TDG objective values)."""
        return self.round_gains.sum(axis=1)

    def result(self, i: int) -> SimulationResult:
        """Trial ``i`` as a scalar :class:`SimulationResult` (no groupings)."""
        if not 0 <= i < self.trials:
            raise IndexError(f"trial index {i} out of range 0..{self.trials - 1}")
        return SimulationResult(
            policy_name=self.policy_name,
            mode_name=self.mode_name,
            k=self.k,
            alpha=self.alpha,
            initial_skills=self.initial_skills[i].copy(),
            final_skills=self.final_skills[i].copy(),
            round_gains=self.round_gains[i].copy(),
            groupings=(),
            skill_history=None if self.skill_history is None else self.skill_history[i].copy(),
            round_seconds=None if self.round_seconds is None else self.round_seconds[i].copy(),
        )

    def __str__(self) -> str:
        return (
            f"BatchSimulationResult(policy={self.policy_name!r}, mode={self.mode_name!r}, "
            f"trials={self.trials}, n={self.n}, k={self.k}, alpha={self.alpha}, "
            f"engine={self.engine!r})"
        )


def _resolve_gain(gain: "GainFunction | None", rate: "float | None") -> GainFunction:
    if (gain is None) == (rate is None):
        raise ValueError("provide exactly one of gain= or rate=")
    return gain if gain is not None else LinearGain(rate)  # type: ignore[arg-type]


def _scalar_fallback(
    policy: GroupingPolicy,
    matrix: np.ndarray,
    *,
    k: int,
    alpha: int,
    mode: InteractionMode,
    gain_fn: GainFunction,
    seeds: "Sequence[int | None]",
    record_history: bool,
    record_timings: bool,
) -> BatchSimulationResult:
    """Per-trial scalar simulation, stacked into a batch result."""
    results = [
        simulate(
            policy,
            matrix[i],
            k=k,
            alpha=alpha,
            mode=mode,
            gain=gain_fn,
            seed=seeds[i],
            record_groupings=False,
            record_history=record_history,
            record_timings=record_timings,
        )
        for i in range(matrix.shape[0])
    ]
    timed = all(r.round_seconds is not None for r in results)
    return BatchSimulationResult(
        policy_name=policy.name,
        mode_name=mode.name,
        k=int(k),
        alpha=alpha,
        engine="scalar",
        initial_skills=matrix,
        final_skills=np.vstack([r.final_skills for r in results]),
        round_gains=np.vstack([r.round_gains for r in results]),
        skill_history=(
            np.stack([r.skill_history for r in results]) if record_history else None
        ),
        round_seconds=np.vstack([r.round_seconds for r in results]) if timed else None,
        batch_round_seconds=None,
    )


def simulate_many(
    policy: GroupingPolicy,
    skills: np.ndarray,
    *,
    k: int,
    alpha: int,
    mode: "str | InteractionMode",
    gain: "GainFunction | None" = None,
    rate: "float | None" = None,
    seeds: "Sequence[int | None] | None" = None,
    engine: str = "auto",
    shards: "int | None" = None,
    record_history: bool = False,
    record_timings: bool = False,
) -> BatchSimulationResult:
    """Run ``R`` stacked trials of ``policy`` for ``alpha`` rounds each.

    The batched analogue of :func:`repro.core.simulation.simulate`: row
    ``i`` of the ``(R, n)`` ``skills`` matrix is one independent trial,
    seeded by ``seeds[i]``, and every row of the returned
    :class:`BatchSimulationResult` is **bit-identical** to the scalar
    ``simulate(policy, skills[i], ..., seed=seeds[i])`` trajectory.

    Args:
        policy: the scalar grouping policy (vectorized automatically via
            :func:`vectorize_policy` when possible).
        skills: ``(R, n)`` initial skill matrix (a 1-D vector is treated
            as a batch of one).
        k: number of groups; must divide ``n``.
        alpha: number of rounds.
        mode: ``"star"`` / ``"clique"`` (or an ``InteractionMode``).
        gain: learning-gain function (exactly one of ``gain``/``rate``).
        rate: shorthand for ``gain=LinearGain(rate)``.
        seeds: per-trial RNG seeds (length ``R``); ``None`` draws OS
            entropy per trial, like scalar ``seed=None``.
        engine: ``"auto"`` (shard when explicitly requested and possible,
            else vectorize when the policy and mode allow, scalar
            fallback otherwise), ``"scalar"`` (force per-trial
            simulation), ``"vectorized"`` (raise if not vectorizable),
            or ``"sharded"`` (raise if not shardable).
        shards: shard count for the sharded path; ``0``/``None`` defers
            to ``REPRO_SHARDS`` (and auto-sizes the count when forced
            with no request).  Sharded rows are bit-identical to
            vectorized and scalar rows.
        record_history: keep the ``(R, α+1, n)`` skill trajectory.
        record_timings: fill per-round timings (also on whenever
            observability is configured).

    Raises:
        ValueError: on inconsistent parameters, an unknown engine, or
            ``engine="vectorized"`` for a policy/mode with no vectorized
            path (non-vectorizable policy, or clique with a non-linear
            gain function).
    """
    matrix = as_skills_matrix(skills)
    trials, n = matrix.shape
    require_divisible_groups(n, k)
    alpha = require_positive_int(alpha, name="alpha")
    resolved_mode = get_mode(mode)
    gain_fn = _resolve_gain(gain, rate)
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if seeds is None:
        seed_list: list[int | None] = [None] * trials
    else:
        seed_list = list(seeds)
        if len(seed_list) != trials:
            raise ValueError(f"seeds has length {len(seed_list)}, expected {trials} (one per trial)")

    check_required_mode(policy, resolved_mode)

    engine_name, vec = select_engine(
        policy, mode=resolved_mode, gain=gain_fn, engine=engine, shards=shards
    )
    if engine_name == "scalar":
        return _scalar_fallback(
            policy,
            matrix,
            k=int(k),
            alpha=alpha,
            mode=resolved_mode,
            gain_fn=gain_fn,
            seeds=seed_list,
            record_history=record_history,
            record_timings=record_timings,
        )
    assert vec is not None  # select_engine pairs a batched engine with a policy
    shard_plan = None
    if engine_name == "sharded":
        from repro.core.shard import ShardPlan

        shard_plan = ShardPlan.from_env(shards)

    rngs = [np.random.default_rng(s) for s in seed_list]
    vec.reset()
    initial = matrix.copy()
    history = np.empty((trials, alpha + 1, n), dtype=np.float64) if record_history else None
    if history is not None:
        history[:, 0] = matrix
    round_gains = np.empty((trials, alpha), dtype=np.float64)

    # The stacked kernel owns the round step — propose span, shape
    # validation, contract hooks, batched update, per-trial gains,
    # journal events, and metrics (see repro.engine.stacked).
    kernel = StackedRoundKernel(
        vec, resolved_mode, gain_fn, shard_plan=shard_plan, record_timings=record_timings
    )
    timing = kernel.timing
    batch_seconds = np.empty(alpha, dtype=np.float64) if timing else None
    journal = kernel.journal
    _log.debug(
        "simulate_many: policy=%s mode=%s trials=%d n=%d k=%d alpha=%d",
        vec.name, resolved_mode.name, trials, n, k, alpha,
    )
    if journal is not None:
        journal.emit(
            "run_start",
            policy=vec.name,
            mode=resolved_mode.name,
            n=n,
            k=int(k),
            alpha=alpha,
            trials=trials,
            engine=engine_name,
        )

    current = matrix
    with _trace.span("core.simulate_many", policy=vec.name, alpha=alpha, trials=trials):
        for t in range(alpha):
            outcome = kernel.step(current, k, rngs, round_index=t)
            round_gains[:, t] = outcome.gains
            if history is not None:
                history[:, t + 1] = outcome.updated
            current = outcome.updated
            if timing:
                batch_seconds[t] = outcome.seconds  # type: ignore[index]

    if journal is not None:
        journal.emit(
            "run_end",
            policy=vec.name,
            total_gain=float(round_gains.sum()),
            trials=trials,
            engine=engine_name,
        )
    round_seconds = None
    if batch_seconds is not None:
        # One vectorized round advances every trial at once; amortize the
        # batch duration uniformly so per-trial timings stay comparable.
        round_seconds = np.tile(batch_seconds / trials, (trials, 1))
    return BatchSimulationResult(
        policy_name=vec.name,
        mode_name=resolved_mode.name,
        k=int(k),
        alpha=alpha,
        engine=engine_name,
        initial_skills=initial,
        final_skills=current,
        round_gains=round_gains,
        skill_history=history,
        round_seconds=round_seconds,
        batch_round_seconds=batch_seconds,
    )
