"""Simulated-annealing one-shot grouper (the OR-literature approach).

The paper's related work (Section VI) notes that the operations-research
community formalizes group formation as integer programming "often solved
using simulated annealing [12] … or genetic algorithms [14]".  This
module implements that classic approach as an additional baseline: a
per-round simulated-annealing search over equi-sized partitions that
maximizes the round's learning gain, applied independently each round
like the other one-shot baselines.

Compared with LPA's pure hill-climbing, annealing also *accepts worsening
swaps* with temperature-controlled probability, escaping local optima at
the cost of more evaluations — the classic trade-off this baseline
exists to measure.
"""

from __future__ import annotations

import math

import numpy as np

from repro._validation import (
    require_divisible_groups,
    require_learning_rate,
    require_positive_int,
)
from repro.baselines._round_gain import group_gain_sorted
from repro.core.grouping import Grouping
from repro.core.interactions import InteractionMode, get_mode
from repro.core.simulation import GroupingPolicy

__all__ = ["AnnealingGrouping"]


class _GroupState:
    """One group's members and values, co-sorted by descending value."""

    __slots__ = ("members", "values", "gain")

    def __init__(self, members: np.ndarray, values: np.ndarray, gain: float) -> None:
        self.members = members
        self.values = values
        self.gain = gain

    def replaced(self, position: int, new_member: int, new_value: float) -> tuple[np.ndarray, np.ndarray]:
        values = np.delete(self.values, position)
        members = np.delete(self.members, position)
        insert_at = len(values) - int(np.searchsorted(values[::-1], new_value, side="left"))
        return (
            np.insert(members, insert_at, new_member),
            np.insert(values, insert_at, new_value),
        )


class AnnealingGrouping(GroupingPolicy):
    """Per-round simulated annealing on the round's learning gain.

    Args:
        mode: interaction mode whose round gain is optimized; must match
            the simulation's mode.
        rate: linear learning rate used for gain scoring.
        steps: annealing steps per round; ``None`` scales as
            ``min(30·n, 60_000)``.
        initial_temperature: starting temperature, as a fraction of the
            initial round gain (adaptive scale).
        cooling: geometric cooling factor per step, in (0, 1).
    """

    name = "annealing"

    def __init__(
        self,
        mode: "str | InteractionMode",
        rate: float,
        *,
        steps: int | None = None,
        initial_temperature: float = 0.05,
        cooling: float = 0.999,
    ) -> None:
        self._mode_name = get_mode(mode).name
        self._rate = require_learning_rate(rate)
        if steps is not None:
            steps = require_positive_int(steps, name="steps")
        self._steps = steps
        if initial_temperature <= 0:
            raise ValueError(f"initial_temperature must be positive, got {initial_temperature}")
        if not 0.0 < cooling < 1.0:
            raise ValueError(f"cooling must lie in (0, 1), got {cooling}")
        self._initial_temperature = float(initial_temperature)
        self._cooling = float(cooling)

    @property
    def required_mode(self) -> str:
        """The interaction mode this policy's objective assumes."""
        return self._mode_name

    def propose(self, skills: np.ndarray, k: int, rng: np.random.Generator) -> Grouping:
        n = len(skills)
        size = require_divisible_groups(n, k)
        steps = self._steps if self._steps is not None else min(30 * n, 60_000)

        order = rng.permutation(n)
        states: list[_GroupState] = []
        for gi in range(k):
            members = order[gi * size : (gi + 1) * size]
            values = skills[members]
            desc = np.argsort(-values, kind="stable")
            members, values = members[desc], values[desc]
            states.append(
                _GroupState(members, values, group_gain_sorted(values, self._rate, self._mode_name))
            )

        current_total = sum(s.gain for s in states)
        best_total = current_total
        best_snapshot = [(s.members.copy(), s.values.copy(), s.gain) for s in states]
        temperature = max(self._initial_temperature * max(current_total, 1e-9), 1e-12)

        for _ in range(steps):
            g1, g2 = rng.choice(k, size=2, replace=False)
            s1, s2 = states[g1], states[g2]
            p1 = int(rng.integers(size))
            p2 = int(rng.integers(size))
            v1, v2 = float(s1.values[p1]), float(s2.values[p2])
            if v1 != v2:
                m1, nv1 = s1.replaced(p1, int(s2.members[p2]), v2)
                m2, nv2 = s2.replaced(p2, int(s1.members[p1]), v1)
                gain1 = group_gain_sorted(nv1, self._rate, self._mode_name)
                gain2 = group_gain_sorted(nv2, self._rate, self._mode_name)
                delta = (gain1 + gain2) - (s1.gain + s2.gain)
                if delta >= 0 or rng.random() < math.exp(delta / temperature):
                    states[g1] = _GroupState(m1, nv1, gain1)
                    states[g2] = _GroupState(m2, nv2, gain2)
                    current_total += delta
                    if current_total > best_total:
                        best_total = current_total
                        best_snapshot = [
                            (s.members.copy(), s.values.copy(), s.gain) for s in states
                        ]
            temperature = max(temperature * self._cooling, 1e-12)

        return Grouping(members for members, _, _ in best_snapshot)

    def __repr__(self) -> str:
        return (
            f"AnnealingGrouping(mode={self._mode_name!r}, rate={self._rate}, "
            f"steps={self._steps}, T0={self._initial_temperature}, cooling={self._cooling})"
        )
