"""``PERCENTILE-PARTITIONS`` baseline (Agrawal et al., EDM 2017).

The one-shot grouping scheme of "Grouping students for maximizing learning
from peers" splits the class at a skill percentile ``p``: the top
``(1 − p)`` fraction act as high-percentile *seeds* that are spread across
the groups, and the lower ``p`` fraction fills the remaining seats in
descending blocks.  The paper under reproduction applies it with
``p = 0.75`` (following the discussion in the original work), re-running
it on the updated skills each round.

No open-source implementation of the original exists; this module
implements the percentile-split scheme as described above — preserving its
defining property that every group is seeded with at least one
high-percentile peer (see DESIGN.md §4 for the substitution note).
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_divisible_groups, require_probability
from repro.core.grouping import Grouping
from repro.core.simulation import GroupingPolicy
from repro.core.skills import descending_order

__all__ = ["PercentilePartitions"]


class PercentilePartitions(GroupingPolicy):
    """Percentile-split grouping with round-robin seeding.

    Args:
        p: the percentile split point in [0, 1]; the top ``(1 − p)``
            fraction of participants (at least one per group) are spread
            round-robin over the ``k`` groups, and the rest fill the
            remaining capacity in descending blocks.  Defaults to the
            paper's ``0.75``.
    """

    name = "percentile"

    def __init__(self, p: float = 0.75) -> None:
        self._p = require_probability(p, name="p")

    @property
    def p(self) -> float:
        """The percentile split parameter."""
        return self._p

    def propose(self, skills: np.ndarray, k: int, rng: np.random.Generator) -> Grouping:
        n = len(skills)
        size = require_divisible_groups(n, k)
        order = descending_order(skills)

        # Seed pool: the top (1 − p) fraction, clamped so that every group
        # receives at least one seed and no group exceeds its capacity.
        seeds_total = int(round((1.0 - self._p) * n))
        seeds_total = max(k, min(seeds_total, n))
        # Keep groups equi-sized: each group takes the same number of
        # seeds; leftovers beyond a multiple of k are treated as fillers.
        seeds_per_group = min(seeds_total // k, size)
        seed_count = seeds_per_group * k

        groups: list[list[int]] = [[] for _ in range(k)]
        for rank, member in enumerate(order[:seed_count]):
            groups[rank % k].append(int(member))
        fill_per_group = size - seeds_per_group
        rest = order[seed_count:]
        for gi in range(k):
            block = rest[gi * fill_per_group : (gi + 1) * fill_per_group]
            groups[gi].extend(int(m) for m in block)
        return Grouping(groups)

    def __repr__(self) -> str:
        return f"PercentilePartitions(p={self._p})"
