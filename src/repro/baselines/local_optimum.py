"""Arbitrary round-optimal groupings for Star mode (ablation A1).

Theorem 1 shows that *any* grouping placing the top-``k`` skills in
distinct groups maximizes the Star round gain — there are exponentially
many such local optima (Lemma 1).  DyGroups picks the variance-maximizing
one; this module provides the others, to isolate the value of the
variance tie-break (the insight behind the Section III-A toy example and
the k=2 optimality proof):

* ``"random"`` — non-teachers split uniformly at random;
* ``"reversed"`` — non-teachers assigned in *ascending* blocks, so the
  best teacher gets the weakest learners (the paper's "arbitrary locally
  optimal" walk-through, which finishes with total gain 2.4 vs DyGroups'
  2.55 on the toy example);
* ``"interleaved"`` — non-teachers dealt round-robin (the clique-style
  split applied to star mode).
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_divisible_groups
from repro.core.grouping import Grouping
from repro.core.simulation import GroupingPolicy
from repro.core.skills import descending_order

__all__ = ["ArbitraryLocalOptimum", "STRATEGIES"]

#: Recognized non-teacher assignment strategies.
STRATEGIES = ("random", "reversed", "interleaved")


class ArbitraryLocalOptimum(GroupingPolicy):
    """Star-round-optimal grouping with a non-variance-maximizing split.

    Args:
        strategy: one of :data:`STRATEGIES`; see module docstring.
    """

    def __init__(self, strategy: str = "random") -> None:
        if strategy not in STRATEGIES:
            raise ValueError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")
        self._strategy = strategy
        self.name = f"local-optimum-{strategy}"

    @property
    def strategy(self) -> str:
        """The non-teacher assignment strategy."""
        return self._strategy

    def propose(self, skills: np.ndarray, k: int, rng: np.random.Generator) -> Grouping:
        n = len(skills)
        size = require_divisible_groups(n, k)
        order = descending_order(skills)
        teachers = order[:k]
        rest = order[k:]
        per_group = size - 1

        if self._strategy == "random":
            rest = rng.permutation(rest)
            blocks = [rest[i * per_group : (i + 1) * per_group] for i in range(k)]
        elif self._strategy == "reversed":
            ascending = rest[::-1]
            blocks = [ascending[i * per_group : (i + 1) * per_group] for i in range(k)]
        else:  # interleaved
            blocks = [rest[i::k] for i in range(k)]

        return Grouping(
            np.concatenate(([teachers[i]], blocks[i])) for i in range(k)
        )

    def __repr__(self) -> str:
        return f"ArbitraryLocalOptimum(strategy={self._strategy!r})"
