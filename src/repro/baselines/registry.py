"""Name-based policy registry.

The experiment harness, CLI, and benches refer to grouping algorithms by
their canonical string names.  :func:`make_policy` builds a fresh policy
instance for a name, threading through the context (mode, learning rate)
that objective-aware policies such as LPA require.
"""

from __future__ import annotations

from typing import Callable

from repro.baselines.annealing import AnnealingGrouping
from repro.baselines.kmeans import KMeansGrouping
from repro.baselines.local_optimum import ArbitraryLocalOptimum
from repro.baselines.lpa import LpaGrouping
from repro.baselines.percentile import PercentilePartitions
from repro.baselines.random_assignment import RandomAssignment
from repro.baselines.static import StaticPolicy
from repro.core.dygroups import DyGroupsClique, DyGroupsStar, dygroups_policy
from repro.core.simulation import GroupingPolicy

__all__ = ["POLICY_NAMES", "make_policy"]

#: Canonical algorithm names accepted by :func:`make_policy`.
POLICY_NAMES: tuple[str, ...] = (
    "dygroups",
    "dygroups-star",
    "dygroups-clique",
    "random",
    "kmeans",
    "percentile",
    "lpa",
    "annealing",
    "static-dygroups",
    "static-random",
    "local-optimum-random",
    "local-optimum-reversed",
    "local-optimum-interleaved",
)


def make_policy(
    name: str,
    *,
    mode: str = "star",
    rate: float = 0.5,
    percentile_p: float = 0.75,
    lpa_max_evals: int | None = None,
) -> GroupingPolicy:
    """Instantiate the policy registered under ``name``.

    Args:
        name: one of :data:`POLICY_NAMES` (``"dygroups"`` resolves to the
            instantiation matching ``mode``).
        mode: interaction mode context (needed by ``dygroups`` and
            ``lpa``).
        rate: learning-rate context (needed by ``lpa``).
        percentile_p: the Percentile-Partitions split parameter.
        lpa_max_evals: optional evaluation budget for the search-based
            baselines (LPA's swap evaluations / annealing's steps).

    Raises:
        ValueError: for an unknown name.
    """
    factories: dict[str, Callable[[], GroupingPolicy]] = {
        "dygroups": lambda: dygroups_policy(mode),
        "dygroups-star": DyGroupsStar,
        "dygroups-clique": DyGroupsClique,
        "random": RandomAssignment,
        "kmeans": KMeansGrouping,
        "percentile": lambda: PercentilePartitions(percentile_p),
        "lpa": lambda: LpaGrouping(mode, rate, max_evals=lpa_max_evals),
        "annealing": lambda: AnnealingGrouping(mode, rate, steps=lpa_max_evals),
        "static-dygroups": lambda: StaticPolicy(dygroups_policy(mode)),
        "static-random": lambda: StaticPolicy(RandomAssignment()),
        "local-optimum-random": lambda: ArbitraryLocalOptimum("random"),
        "local-optimum-reversed": lambda: ArbitraryLocalOptimum("reversed"),
        "local-optimum-interleaved": lambda: ArbitraryLocalOptimum("interleaved"),
    }
    try:
        factory = factories[name]
    except KeyError:
        raise ValueError(f"unknown policy {name!r}; expected one of {POLICY_NAMES}") from None
    return factory()
