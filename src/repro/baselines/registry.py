"""Name-based policy registry (compatibility shim).

The canonical registry now lives in :mod:`repro.registry`, which adds
typed :class:`~repro.registry.PolicySpec` params, capability flags, and
the Section VII extension policies.  This module keeps the historical
surface: :data:`POLICY_NAMES` lists the *baseline* algorithm names (the
paper's evaluation line-up, without extensions) and :func:`make_policy`
accepts the legacy keyword knobs (``percentile_p``, ``lpa_max_evals``)
and forwards them as spec params.
"""

from __future__ import annotations

from repro.core.simulation import GroupingPolicy
from repro.registry import PolicySpec, build_policy, policy_names

__all__ = ["POLICY_NAMES", "make_policy"]

#: Canonical baseline algorithm names accepted by :func:`make_policy`
#: (every unified-registry name works too; extensions are listed by
#: :func:`repro.registry.policy_names`).
POLICY_NAMES: tuple[str, ...] = policy_names(include_extensions=False)


def make_policy(
    name: str,
    *,
    mode: str = "star",
    rate: float = 0.5,
    percentile_p: float = 0.75,
    lpa_max_evals: int | None = None,
) -> GroupingPolicy:
    """Instantiate the policy registered under ``name``.

    Args:
        name: a registered policy name or spec string (``"dygroups"``
            resolves to the instantiation matching ``mode``;
            ``"percentile:p=0.9"`` carries typed params inline).
        mode: interaction mode context (needed by ``dygroups`` and
            ``lpa``).
        rate: learning-rate context (needed by ``lpa``).
        percentile_p: the Percentile-Partitions split parameter (legacy
            knob; equivalent to the ``p`` spec param).
        lpa_max_evals: optional evaluation budget for the search-based
            baselines (LPA's swap evaluations / annealing's steps;
            legacy knob, equivalent to ``max_evals`` / ``steps``).

    Raises:
        ValueError: for an unknown name or a bad spec param.
    """
    spec = PolicySpec.parse(name)
    spec = spec.with_defaults(p=percentile_p, max_evals=lpa_max_evals, steps=lpa_max_evals)
    return build_policy(spec, mode=mode, rate=rate)
