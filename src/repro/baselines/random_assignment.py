"""``RANDOM-ASSIGNMENT`` baseline (Section V-B1).

Each round, the participants are shuffled uniformly at random and split
into ``k`` contiguous blocks.  Every equi-sized partition is produced with
equal probability.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_divisible_groups
from repro.core.grouping import Grouping
from repro.core.simulation import GroupingPolicy

__all__ = ["RandomAssignment"]


class RandomAssignment(GroupingPolicy):
    """Uniformly random equi-sized grouping, fresh each round."""

    name = "random"

    def propose(self, skills: np.ndarray, k: int, rng: np.random.Generator) -> Grouping:
        require_divisible_groups(len(skills), k)
        order = rng.permutation(len(skills))
        return Grouping.blocks_of_sorted(order, k)
