"""Exact (exponential-time) TDG solver (``BRUTE-FORCE``, Section V-B1).

Enumerates every sequence of equi-sized ``k``-groupings over ``α`` rounds
and returns the maximum aggregated learning gain.  Tractable only for tiny
instances (the paper uses ``n ∈ {4, 6, 8}``, ``k = 2``, ``α ≤ 4``); used
to validate DyGroups-Star's k=2 optimality (Theorem 5 / Section V-B3).

Three optimizations keep the search honest but fast:

* group-order canonicalization — the lowest-indexed unassigned member
  anchors each group, so each *partition* is enumerated exactly once;
* memoization on the (rounded, descending-sorted) skill multiset — future
  gains depend only on the multiset of skills, not on who holds them, so
  distinct groupings that produce the same post-round skill multiset share
  one subtree;
* batched evaluation — all partitions of a state are updated in one
  vectorized numpy block (a ``(P, k, size)`` tensor of member positions is
  precomputed once), which is two orders of magnitude faster than
  constructing a :class:`~repro.core.grouping.Grouping` per candidate.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro._validation import (
    as_skill_array,
    require_divisible_groups,
    require_positive_int,
)
from repro.core.gain_functions import GainFunction, LinearGain
from repro.core.grouping import Grouping
from repro.core.interactions import InteractionMode, get_mode
from repro.core.skills import descending_order

__all__ = ["BruteForceResult", "brute_force_tdg", "iter_equal_partitions", "count_equal_partitions"]


def count_equal_partitions(n: int, k: int) -> int:
    """Number of ways to split ``n`` members into ``k`` unlabeled equi-sized groups."""
    size = require_divisible_groups(n, k)
    return math.factorial(n) // (math.factorial(size) ** k * math.factorial(k))


def iter_equal_partitions(members: tuple[int, ...], size: int) -> Iterator[tuple[tuple[int, ...], ...]]:
    """Yield every partition of ``members`` into unlabeled groups of ``size``.

    Canonical order: the smallest remaining member anchors each group, so
    each unordered partition appears exactly once.
    """
    if not members:
        yield ()
        return
    first, rest = members[0], members[1:]
    for combo in itertools.combinations(rest, size - 1):
        group = (first, *combo)
        chosen = set(combo)
        remaining = tuple(m for m in rest if m not in chosen)
        for tail in iter_equal_partitions(remaining, size):
            yield (group, *tail)


@dataclass(frozen=True)
class BruteForceResult:
    """Outcome of the exact TDG search.

    Attributes:
        total_gain: the optimal aggregated learning gain over α rounds.
        groupings: one optimal grouping sequence, expressed over the input
            participant indices.
        states_explored: number of distinct (skill multiset, rounds-left)
            states the memoized search expanded.
    """

    total_gain: float
    groupings: tuple[Grouping, ...]
    states_explored: int


class _BatchedEvaluator:
    """Vectorized one-round evaluation of every partition of a state.

    ``members`` is the precomputed ``(P, k, size)`` tensor of member
    positions per partition; :meth:`evaluate` maps a descending-sorted
    skill vector to the per-partition round gains and the (descending,
    rounded) child states.
    """

    def __init__(
        self,
        partitions: list[tuple[tuple[int, ...], ...]],
        mode_name: str,
        rate: float,
        gain: GainFunction,
        round_decimals: int,
    ) -> None:
        self._members = np.array(partitions, dtype=np.intp)  # (P, k, size)
        self._mode_name = mode_name
        self._rate = rate
        self._gain = gain
        self._decimals = round_decimals
        p, k, size = self._members.shape
        self._n = k * size

    def evaluate(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(round_gains, child_states)`` for every partition.

        ``child_states`` is ``(P, n)`` with each row descending-sorted and
        rounded (the memoization key material).
        """
        group_vals = values[self._members]  # (P, k, size)
        if self._gain.is_linear:
            if self._mode_name == "star":
                maxima = group_vals.max(axis=2, keepdims=True)
                updated = group_vals + self._rate * (maxima - group_vals)
            else:  # clique, Theorem 3 batched
                desc = -np.sort(-group_vals, axis=2)
                prefix = np.cumsum(desc, axis=2)
                updated = desc.copy()
                size = desc.shape[2]
                if size > 1:
                    ranks = np.arange(1, size, dtype=np.float64)
                    updated[:, :, 1:] += (
                        self._rate * (prefix[:, :, :-1] - ranks * desc[:, :, 1:]) / ranks
                    )
        else:
            updated = self._updated_general(group_vals)
        round_gains = (updated - group_vals).sum(axis=(1, 2))
        flat = updated.reshape(updated.shape[0], self._n)
        child = np.round(-np.sort(-flat, axis=1), self._decimals)
        return round_gains, child

    def _updated_general(self, group_vals: np.ndarray) -> np.ndarray:
        """Non-linear gains: literal Equation 2 / star definition, batched."""
        desc = -np.sort(-group_vals, axis=2)
        updated = desc.copy()
        size = desc.shape[2]
        if self._mode_name == "star":
            top = desc[:, :, :1]
            updated = desc + np.asarray(self._gain(top - desc))
        else:
            for i in range(1, size):
                total = np.zeros(desc.shape[:2])
                for j in range(i):
                    delta = np.maximum(desc[:, :, j] - desc[:, :, i], 0.0)
                    total += np.asarray(self._gain(delta))
                updated[:, :, i] = desc[:, :, i] + total / i
        return updated


def brute_force_tdg(
    skills: np.ndarray,
    *,
    k: int,
    alpha: int,
    mode: "str | InteractionMode" = "star",
    rate: float | None = None,
    gain: GainFunction | None = None,
    max_partitions: int = 50_000,
    round_decimals: int = 10,
) -> BruteForceResult:
    """Solve the TDG instance exactly.

    Args:
        skills: initial positive skills (keep ``n`` tiny: ≤ 10 or so).
        k: number of groups; must divide ``n``.
        alpha: number of rounds.
        mode: ``"star"`` or ``"clique"``.
        rate: linear learning rate (shorthand for ``gain=LinearGain(rate)``).
        gain: explicit gain function (exactly one of ``rate``/``gain``).
        max_partitions: safety cap on the per-round branching factor.
        round_decimals: decimals used when canonicalizing skill multisets
            for memoization (also bounds numerical drift between states).

    Raises:
        ValueError: if the instance's per-round branching factor exceeds
            ``max_partitions``.
    """
    array = as_skill_array(skills)
    n = len(array)
    size = require_divisible_groups(n, k)
    alpha = require_positive_int(alpha, name="alpha")
    if (gain is None) == (rate is None):
        raise ValueError("provide exactly one of gain= or rate=")
    gain_fn = gain if gain is not None else LinearGain(rate)  # type: ignore[arg-type]
    mode_obj = get_mode(mode)
    effective_rate = gain_fn.rate if gain_fn.is_linear else 0.0  # type: ignore[attr-defined]

    branching = count_equal_partitions(n, k)
    if branching > max_partitions:
        raise ValueError(
            f"instance has {branching} partitions per round (> max_partitions={max_partitions}); "
            "brute force is only intended for tiny instances"
        )

    partitions = list(iter_equal_partitions(tuple(range(n)), size))
    evaluator = _BatchedEvaluator(partitions, mode_obj.name, effective_rate, gain_fn, round_decimals)
    memo: dict[tuple[tuple[float, ...], int], tuple[float, int | None]] = {}

    def canonical(values: np.ndarray) -> tuple[float, ...]:
        return tuple(np.round(np.sort(values)[::-1], round_decimals))

    def best(state: tuple[float, ...], rounds_left: int) -> tuple[float, int | None]:
        """Optimal remaining gain from a descending-sorted skill state."""
        if rounds_left == 0:
            return 0.0, None
        key = (state, rounds_left)
        cached = memo.get(key)
        if cached is not None:
            return cached
        values = np.array(state, dtype=np.float64)
        round_gains, child_states = evaluator.evaluate(values)
        best_gain = -np.inf
        best_partition: int | None = None
        if rounds_left == 1:
            index = int(np.argmax(round_gains))
            best_gain = float(round_gains[index])
            best_partition = index
        else:
            # Deduplicate identical child states before recursing.
            seen: dict[tuple[float, ...], float] = {}
            for index in range(len(partitions)):
                child_key = tuple(child_states[index])
                sub_gain = seen.get(child_key)
                if sub_gain is None:
                    sub_gain, _ = best(child_key, rounds_left - 1)
                    seen[child_key] = sub_gain
                total = float(round_gains[index]) + sub_gain
                if total > best_gain:
                    best_gain = total
                    best_partition = index
        memo[key] = (best_gain, best_partition)
        return best_gain, best_partition

    initial_state = canonical(array)
    total, _ = best(initial_state, alpha)

    # Reconstruct one optimal sequence by replaying the memoized choices on
    # the *actual* (unrounded, original-index) skill array.  Partitions are
    # expressed over descending ranks; map rank -> original index each round.
    groupings: list[Grouping] = []
    current = array.copy()
    for rounds_left in range(alpha, 0, -1):
        # best() is memoized; if floating-point drift between the rounded
        # DFS chain and the exact replay trajectory produces an unseen
        # state, it is simply solved afresh.
        _, partition_index = best(canonical(current), rounds_left)
        assert partition_index is not None
        partition = partitions[partition_index]
        ranks_to_index = descending_order(current)
        grouping = Grouping(tuple(int(ranks_to_index[r]) for r in group) for group in partition)
        groupings.append(grouping)
        current = mode_obj.update(current, grouping, gain_fn)

    return BruteForceResult(
        total_gain=float(total),
        groupings=tuple(groupings),
        states_explored=len(memo),
    )
