"""``LPA`` baseline (after Esfandiari et al., KDD 2019).

The original LPA optimizes *one-shot* group formation for peer learning
with member affinities.  No open-source implementation or affinity data
exists, so this module implements it as its affinity-free core: a
swap-based local search that maximizes the current round's aggregated
learning gain, re-run independently every round (see DESIGN.md §4).

This gives the evaluation the same contrast the paper draws: a strong
per-round one-shot grouper that approaches round-local optimality but —
unlike DyGroups — without the variance-maximizing tie-break that pays off
across rounds.

The search keeps each group's member ids and skill values co-sorted in
descending order so a candidate swap is scored in ``O(t)`` numpy work.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_divisible_groups, require_learning_rate, require_positive_int
from repro.baselines._round_gain import group_gain_sorted
from repro.core.grouping import Grouping
from repro.core.interactions import InteractionMode, get_mode
from repro.core.simulation import GroupingPolicy

__all__ = ["LpaGrouping"]

_IMPROVEMENT_TOL = 1e-12


class _GroupState:
    """One group's members and values, co-sorted by descending value."""

    __slots__ = ("members", "values", "gain")

    def __init__(self, members: np.ndarray, values: np.ndarray, gain: float) -> None:
        self.members = members
        self.values = values
        self.gain = gain

    def replaced(self, position: int, new_member: int, new_value: float) -> tuple[np.ndarray, np.ndarray]:
        """Member/value arrays after swapping out the entry at ``position``."""
        values = np.delete(self.values, position)
        members = np.delete(self.members, position)
        # Insertion point that keeps the array descending.
        insert_at = len(values) - int(np.searchsorted(values[::-1], new_value, side="left"))
        values = np.insert(values, insert_at, new_value)
        members = np.insert(members, insert_at, new_member)
        return members, values


class LpaGrouping(GroupingPolicy):
    """Per-round swap local search on the round's learning gain.

    Args:
        mode: interaction mode whose round gain is optimized; must match
            the mode passed to :func:`repro.core.simulation.simulate`.
        rate: linear learning rate used for gain scoring.
        max_evals: cap on candidate-swap evaluations per round; ``None``
            scales with the population (``min(20·n, 100_000)``).
        patience: consecutive non-improving evaluations before stopping
            early; ``None`` scales as ``max(500, 2·n)``.
    """

    name = "lpa"

    def __init__(
        self,
        mode: "str | InteractionMode",
        rate: float,
        *,
        max_evals: int | None = None,
        patience: int | None = None,
    ) -> None:
        self._mode_name = get_mode(mode).name
        self._rate = require_learning_rate(rate)
        if max_evals is not None:
            max_evals = require_positive_int(max_evals, name="max_evals")
        if patience is not None:
            patience = require_positive_int(patience, name="patience")
        self._max_evals = max_evals
        self._patience = patience

    @property
    def required_mode(self) -> str:
        """The interaction mode this policy's objective assumes."""
        return self._mode_name

    def propose(self, skills: np.ndarray, k: int, rng: np.random.Generator) -> Grouping:
        n = len(skills)
        require_divisible_groups(n, k)
        max_evals = self._max_evals if self._max_evals is not None else min(20 * n, 100_000)
        patience = self._patience if self._patience is not None else max(500, 2 * n)

        order = rng.permutation(n)
        size = n // k
        states: list[_GroupState] = []
        for gi in range(k):
            members = order[gi * size : (gi + 1) * size]
            values = skills[members]
            desc = np.argsort(-values, kind="stable")
            members = members[desc]
            values = values[desc]
            states.append(
                _GroupState(members, values, group_gain_sorted(values, self._rate, self._mode_name))
            )

        fails = 0
        for _ in range(max_evals):
            if fails >= patience:
                break
            g1, g2 = rng.choice(k, size=2, replace=False)
            s1, s2 = states[g1], states[g2]
            p1 = int(rng.integers(size))
            p2 = int(rng.integers(size))
            v1 = float(s1.values[p1])
            v2 = float(s2.values[p2])
            if v1 == v2:
                fails += 1
                continue
            m1, nv1 = s1.replaced(p1, int(s2.members[p2]), v2)
            m2, nv2 = s2.replaced(p2, int(s1.members[p1]), v1)
            new_gain1 = group_gain_sorted(nv1, self._rate, self._mode_name)
            new_gain2 = group_gain_sorted(nv2, self._rate, self._mode_name)
            if new_gain1 + new_gain2 > s1.gain + s2.gain + _IMPROVEMENT_TOL:
                states[g1] = _GroupState(m1, nv1, new_gain1)
                states[g2] = _GroupState(m2, nv2, new_gain2)
                fails = 0
            else:
                fails += 1
        return Grouping(state.members for state in states)

    def __repr__(self) -> str:
        return (
            f"LpaGrouping(mode={self._mode_name!r}, rate={self._rate}, "
            f"max_evals={self._max_evals}, patience={self._patience})"
        )
