"""Baseline grouping algorithms from the paper's evaluation (Section V-B1).

* :class:`RandomAssignment` — uniformly random equi-sized groups;
* :class:`KMeansGrouping` — random centers + capacity-constrained nearest
  assignment (the paper's own heuristic baseline);
* :class:`PercentilePartitions` — Agrawal et al. (EDM 2017), ``p = 0.75``;
* :class:`LpaGrouping` — Esfandiari et al. (KDD 2019), affinity-free
  local-search core (see DESIGN.md §4);
* :class:`StaticPolicy` — one-shot grouping replayed for all rounds;
* :class:`ArbitraryLocalOptimum` — star-round-optimal grouping without the
  variance tie-break (ablation);
* :func:`brute_force_tdg` — exact exponential-time TDG solver.
"""

from repro.baselines.brute_force import (
    BruteForceResult,
    brute_force_tdg,
    count_equal_partitions,
    iter_equal_partitions,
)
from repro.baselines.annealing import AnnealingGrouping
from repro.baselines.kmeans import KMeansGrouping
from repro.baselines.local_optimum import STRATEGIES, ArbitraryLocalOptimum
from repro.baselines.lpa import LpaGrouping
from repro.baselines.percentile import PercentilePartitions
from repro.baselines.random_assignment import RandomAssignment
from repro.baselines.registry import POLICY_NAMES, make_policy
from repro.baselines.static import StaticPolicy

__all__ = [
    "AnnealingGrouping",
    "RandomAssignment",
    "KMeansGrouping",
    "PercentilePartitions",
    "LpaGrouping",
    "StaticPolicy",
    "ArbitraryLocalOptimum",
    "STRATEGIES",
    "BruteForceResult",
    "brute_force_tdg",
    "count_equal_partitions",
    "iter_equal_partitions",
    "POLICY_NAMES",
    "make_policy",
]
