"""Fast per-group gain evaluation on descending-sorted value arrays.

Used by the search-based baselines (LPA, brute force) that must score many
candidate groups cheaply.  The formulas assume the *linear* gain function
``f(Δ) = r·Δ``:

* Star:   ``g(x) = r · (t·max(x) − Σx)`` — every member's gap to the
  teacher, summed (the teacher's own gap is zero).
* Clique: member with ``h`` strictly more skilled group-mates gains the
  average ``r·(top_h_sum − h·s)/h``; summed via prefix sums in ``O(t)``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sorted_desc", "star_gain_sorted", "clique_gain_sorted", "group_gain_sorted"]


def sorted_desc(values: np.ndarray) -> np.ndarray:
    """Values sorted in descending order (fresh array)."""
    return np.sort(np.asarray(values, dtype=np.float64))[::-1]


def star_gain_sorted(values: np.ndarray, rate: float) -> float:
    """Star-mode gain of one group given descending-sorted ``values``."""
    return float(rate * (len(values) * values[0] - values.sum()))


def clique_gain_sorted(values: np.ndarray, rate: float) -> float:
    """Clique-mode gain of one group given descending-sorted ``values``.

    Uses the Theorem 3 prefix-sum form of Equation 2: the rank-``i``
    member gains ``r·(c_{i−1} − (i−1)·s_i)/(i−1)``.
    """
    t = len(values)
    if t < 2:
        return 0.0
    prefix = np.cumsum(values)
    ranks = np.arange(1, t, dtype=np.float64)
    increments = rate * (prefix[:-1] - ranks * values[1:]) / ranks
    return float(increments.sum())


def group_gain_sorted(values: np.ndarray, rate: float, mode_name: str) -> float:
    """Dispatch on mode name (``"star"`` / ``"clique"``)."""
    if mode_name == "star":
        return star_gain_sorted(values, rate)
    if mode_name == "clique":
        return clique_gain_sorted(values, rate)
    raise ValueError(f"unknown mode {mode_name!r}")
