"""``K-MEANS`` baseline (Section V-B1).

The paper devises this heuristic as a baseline: pick ``k`` random
participants as group *centers*, then assign every remaining participant
to the nearest (in skill) group that is not yet full.

Skills are one-dimensional, so the nearest *open* center is either the
first open center to the left or to the right of the participant's
position in the sorted center array — found with a binary search plus two
outward scans, ``O(log k)`` amortized per assignment instead of the naive
``O(k)``.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_divisible_groups
from repro.core.grouping import Grouping
from repro.core.simulation import GroupingPolicy

__all__ = ["KMeansGrouping"]


class KMeansGrouping(GroupingPolicy):
    """Capacity-constrained nearest-center grouping with random centers.

    Assignment order is randomized each round (drawn from the simulation
    rng), matching the first-come-first-served flavour of the heuristic:
    once a group is full, later participants spill to the next nearest
    open center.
    """

    name = "kmeans"

    def propose(self, skills: np.ndarray, k: int, rng: np.random.Generator) -> Grouping:
        n = len(skills)
        size = require_divisible_groups(n, k)

        center_members = rng.choice(n, size=k, replace=False)
        center_order = np.argsort(skills[center_members], kind="stable")
        centers = center_members[center_order]  # participant ids, ascending by skill
        center_skills = skills[centers].astype(np.float64)

        groups: list[list[int]] = [[int(c)] for c in centers]
        capacity = np.full(k, size - 1, dtype=np.intp)

        remaining = np.setdiff1d(np.arange(n), centers)
        remaining = rng.permutation(remaining)
        positions = np.searchsorted(center_skills, skills[remaining])
        for member, pos in zip(remaining, positions):
            target = _nearest_open_center(float(skills[member]), center_skills, capacity, int(pos))
            groups[target].append(int(member))
            capacity[target] -= 1
        return Grouping(groups)


def _nearest_open_center(
    skill: float, center_skills: np.ndarray, capacity: np.ndarray, pos: int
) -> int:
    """Index of the closest center with spare capacity.

    ``pos`` is the insertion point of ``skill`` in the ascending
    ``center_skills`` array.  Because the array is sorted, the nearest open
    center is the first open one scanning left from ``pos − 1`` or the
    first open one scanning right from ``pos`` — whichever is closer
    (ties go left, i.e. to the lower-skilled center).
    """
    k = len(center_skills)
    left = pos - 1
    while left >= 0 and capacity[left] <= 0:
        left -= 1
    right = pos
    while right < k and capacity[right] <= 0:
        right += 1
    if left < 0 and right >= k:
        raise RuntimeError("no center with spare capacity (capacity bookkeeping bug)")
    if left < 0:
        return right
    if right >= k:
        return left
    left_dist = abs(skill - center_skills[left])
    right_dist = abs(skill - center_skills[right])
    return left if left_dist <= right_dist else right
