"""Static (one-shot) grouping baseline.

Prior work ([1], [2] in the paper) treats groups as *static*: a single
grouping is formed once and every individual stays in that group for all
``α`` rounds.  :class:`StaticPolicy` wraps any grouping policy, delegates
to it in round 1, and replays that same grouping for every later round —
the ablation that isolates the value of *dynamic* re-grouping
(DESIGN.md experiment A3).
"""

from __future__ import annotations

import numpy as np

from repro.core.grouping import Grouping
from repro.core.simulation import GroupingPolicy

__all__ = ["StaticPolicy"]


class StaticPolicy(GroupingPolicy):
    """Freeze the wrapped policy's first grouping for all rounds.

    Args:
        base: the policy that forms the one-shot grouping in round 1.

    The policy is stateful across rounds of one simulation; the simulation
    engine calls :meth:`reset` at the start of each run.
    """

    def __init__(self, base: GroupingPolicy) -> None:
        self._base = base
        self._frozen: Grouping | None = None
        self.name = f"static-{base.name}"

    @property
    def base(self) -> GroupingPolicy:
        """The wrapped one-shot policy."""
        return self._base

    def reset(self) -> None:
        self._frozen = None
        self._base.reset()

    def propose(self, skills: np.ndarray, k: int, rng: np.random.Generator) -> Grouping:
        if self._frozen is None:
            self._frozen = self._base.propose(skills, k, rng)
        return self._frozen

    def __repr__(self) -> str:
        return f"StaticPolicy({self._base!r})"
