"""repro — reproduction of "Peer Learning Through Targeted Dynamic Groups
Formation" (Wei, Koutis, Basu Roy; ICDE 2021).

The package implements the Targeted Dynamic Grouping (TDG) problem, the
DyGroups greedy framework with its Star and Clique instantiations, every
baseline from the paper's evaluation, a simulated substitute for the
human-subject experiments, the experiment harness regenerating all
figures, numeric theorem verification, and the Section VII extensions.

Quickstart:

    >>> import numpy as np
    >>> from repro import dygroups
    >>> skills = np.array([0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9])
    >>> result = dygroups(skills, k=3, alpha=3, rate=0.5, mode="star")
    >>> round(result.total_gain, 2)
    2.55

See README.md for an architecture overview and DESIGN.md for the full
system inventory and experiment index.
"""

from repro.core import (
    Clique,
    DyGroupsClique,
    DyGroupsStar,
    GainFunction,
    Group,
    Grouping,
    GroupingPolicy,
    InteractionMode,
    LinearGain,
    SimulationResult,
    Star,
    b_objective,
    dygroups,
    dygroups_clique_local,
    dygroups_policy,
    dygroups_star_local,
    learning_gain,
    simulate,
    total_learning_gain,
)
from repro.baselines import (
    ArbitraryLocalOptimum,
    KMeansGrouping,
    LpaGrouping,
    PercentilePartitions,
    RandomAssignment,
    StaticPolicy,
    brute_force_tdg,
    make_policy,
)
from repro.data import lognormal_skills, toy_example_skills, uniform_skills, zipf_skills
from repro.experiments import ExperimentSpec, run_spec, sweep

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "dygroups",
    "dygroups_policy",
    "dygroups_star_local",
    "dygroups_clique_local",
    "DyGroupsStar",
    "DyGroupsClique",
    "simulate",
    "SimulationResult",
    "GroupingPolicy",
    "Group",
    "Grouping",
    "GainFunction",
    "LinearGain",
    "InteractionMode",
    "Star",
    "Clique",
    "learning_gain",
    "total_learning_gain",
    "b_objective",
    # baselines
    "RandomAssignment",
    "KMeansGrouping",
    "PercentilePartitions",
    "LpaGrouping",
    "StaticPolicy",
    "ArbitraryLocalOptimum",
    "brute_force_tdg",
    "make_policy",
    # data
    "toy_example_skills",
    "lognormal_skills",
    "zipf_skills",
    "uniform_skills",
    # experiments
    "ExperimentSpec",
    "run_spec",
    "sweep",
]
