"""The paper's empirical claims, as checkable predicates.

Section V distills its findings into named observations; this module
encodes each one as a function from measured data to a
:class:`ClaimCheck` — a verdict plus the evidence behind it.  The
benchmark harness asserts these predicates, EXPERIMENTS.md cites them,
and downstream users can re-evaluate any claim on their own runs.

* **Observation I** — aggregate skill improves with peer interaction;
* **Observation II** — DyGroups outperforms the baselines;
* **Observation III** — DyGroups retains more workers;
* **Observation IV** — cumulative learning gain is near-linear in the
  first rounds;
* **Section V-B2 shapes** — gain grows with n, α and r, falls with k;
* **Section V-B5** — DyGroups allows higher inequality than random.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.metrics.fit import fit_line

__all__ = [
    "ClaimCheck",
    "observation_1_skills_improve",
    "observation_2_dygroups_wins",
    "observation_3_retention",
    "observation_4_linear_gain",
    "monotone_trend",
    "inequality_dominance",
]


@dataclass(frozen=True, slots=True)
class ClaimCheck:
    """Outcome of evaluating one claim.

    Attributes:
        claim: short name of the claim.
        holds: the verdict.
        evidence: one-line human-readable justification.
    """

    claim: str
    holds: bool
    evidence: str

    def __bool__(self) -> bool:
        return self.holds

    def __str__(self) -> str:
        return f"[{'PASS' if self.holds else 'FAIL'}] {self.claim}: {self.evidence}"


def observation_1_skills_improve(score_series: Sequence[float]) -> ClaimCheck:
    """Observation I on one population's per-round mean scores."""
    if len(score_series) < 2:
        raise ValueError("need at least a pre- and one post-assessment")
    first, last = float(score_series[0]), float(score_series[-1])
    return ClaimCheck(
        claim="Observation I (skills improve)",
        holds=last > first,
        evidence=f"mean score {first:.4f} -> {last:.4f}",
    )


def observation_2_dygroups_wins(
    gains_by_policy: dict[str, float],
    *,
    dygroups_key: str = "dygroups",
    tie_tolerance: float = 0.05,
) -> ClaimCheck:
    """Observation II on total gains per policy.

    Holds when DyGroups is within ``tie_tolerance`` of the best policy
    (strict wins obviously qualify); the tolerance acknowledges the
    statistical tie with other round-optimal groupers under observation
    noise (see docs/amt.md).
    """
    if dygroups_key not in gains_by_policy:
        raise ValueError(f"{dygroups_key!r} missing from gains: {sorted(gains_by_policy)}")
    best_name = max(gains_by_policy, key=gains_by_policy.__getitem__)
    best = gains_by_policy[best_name]
    ours = gains_by_policy[dygroups_key]
    holds = ours >= (1.0 - tie_tolerance) * best
    return ClaimCheck(
        claim="Observation II (DyGroups outperforms)",
        holds=holds,
        evidence=f"dygroups {ours:.6g} vs best {best_name} {best:.6g}",
    )


def observation_3_retention(
    retention_by_policy: dict[str, float], *, dygroups_key: str = "dygroups"
) -> ClaimCheck:
    """Observation III on final retention fractions per policy."""
    if dygroups_key not in retention_by_policy:
        raise ValueError(f"{dygroups_key!r} missing from retention data")
    ours = retention_by_policy[dygroups_key]
    others = [v for k, v in retention_by_policy.items() if k != dygroups_key]
    if not others:
        raise ValueError("need at least one baseline to compare retention against")
    holds = ours >= max(others) - 1e-9
    return ClaimCheck(
        claim="Observation III (DyGroups retains more workers)",
        holds=holds,
        evidence=f"dygroups {ours:.3f} vs best baseline {max(others):.3f}",
    )


def observation_4_linear_gain(
    cumulative_gains: Sequence[float], *, min_r_squared: float = 0.95
) -> ClaimCheck:
    """Observation IV: the cumulative gain fits a line with high R²."""
    values = np.asarray(cumulative_gains, dtype=np.float64)
    if values.size < 3:
        raise ValueError("need at least 3 rounds to judge linearity")
    rounds = np.arange(1, values.size + 1, dtype=np.float64)
    fit = fit_line(rounds, values)
    return ClaimCheck(
        claim="Observation IV (near-linear cumulative gain)",
        holds=fit.r_squared >= min_r_squared and fit.slope > 0,
        evidence=f"fit {fit}",
    )


def monotone_trend(
    x: Sequence[float],
    y: Sequence[float],
    *,
    direction: str,
    claim: str,
    tolerance: float = 1e-9,
) -> ClaimCheck:
    """A Section V-B2-style monotonicity claim over a sweep.

    Args:
        direction: ``"increasing"`` or ``"decreasing"``.
        claim: claim name for the report.
    """
    if direction not in ("increasing", "decreasing"):
        raise ValueError(f"direction must be 'increasing' or 'decreasing', got {direction!r}")
    if len(x) != len(y) or len(x) < 2:
        raise ValueError("need two equal-length sequences with >= 2 points")
    deltas = np.diff(np.asarray(y, dtype=np.float64))
    holds = bool(
        np.all(deltas >= -tolerance) if direction == "increasing" else np.all(deltas <= tolerance)
    )
    return ClaimCheck(
        claim=claim,
        holds=holds,
        evidence=f"y({x[0]:g})={y[0]:.6g} … y({x[-1]:g})={y[-1]:.6g} ({direction})",
    )


def inequality_dominance(
    dygroups_values: Sequence[float], random_values: Sequence[float]
) -> ClaimCheck:
    """Section V-B5: DyGroups' inequality ≥ random's at every checkpoint."""
    a = np.asarray(dygroups_values, dtype=np.float64)
    b = np.asarray(random_values, dtype=np.float64)
    if a.shape != b.shape or a.size == 0:
        raise ValueError("need equal-length non-empty inequality series")
    holds = bool(np.all(a >= b - 1e-12))
    ratio = float((a / b).mean())
    return ClaimCheck(
        claim="Section V-B5 (DyGroups allows higher inequality)",
        holds=holds,
        evidence=f"mean inequality ratio {ratio:.4f}",
    )
