"""Graph-constrained targeted dynamic grouping.

TDG assumes any set of members can form a group.  On a real platform the
feasible groups are constrained by the social graph: a group should
induce a *connected* subgraph, so every member can actually interact
through within-group ties.  This module studies that variant:

* :class:`ConnectedDyGroups` — a greedy grouper in the DyGroups spirit:
  the strongest unassigned member anchors each group, which then grows by
  repeatedly absorbing the highest-skilled unassigned *neighbor* of the
  group (a skill-greedy BFS).  When the neighborhood is exhausted before
  the group is full, the group absorbs the nearest unassigned members
  regardless of edges — each such member is counted as a *violation*, the
  price of the topology.
* :class:`ConnectedRandom` — the same growth procedure with uniformly
  random choices (the Random-Assignment analogue under the constraint).

On a complete graph both reduce exactly to their unconstrained
counterparts (DyGroups-Star-Local / Random-Assignment), which the test
suite verifies — the constrained variant strictly generalizes the paper.

The learning dynamics are unchanged (skills update per interaction mode
within each group), so results compare directly against unconstrained
policies run on the same skills.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro._validation import as_skill_array, require_divisible_groups
from repro.core.grouping import Grouping
from repro.core.simulation import GroupingPolicy
from repro.core.skills import descending_order

__all__ = ["ConnectedDyGroups", "ConnectedRandom", "grouping_violations"]


def _check_graph(graph: nx.Graph, n: int) -> None:
    if set(graph.nodes) != set(range(n)):
        raise ValueError(f"graph must have exactly the nodes 0..{n - 1}")


def grouping_violations(grouping: Grouping, graph: nx.Graph) -> int:
    """Number of members not connected to the rest of their group.

    A member violates the topology if it has no edge into its group's
    other members reachable through the group (i.e. it sits outside its
    group's largest induced connected component containing the anchor).
    Counted as the total size of all non-principal components per group.
    """
    _check_graph(graph, grouping.n)
    violations = 0
    for group in grouping:
        members = list(group)
        induced = graph.subgraph(members)
        components = sorted(nx.connected_components(induced), key=len, reverse=True)
        violations += sum(len(c) for c in components[1:])
    return violations


class _ConnectedGrower(GroupingPolicy):
    """Shared skill- or random-greedy connected group growth."""

    def __init__(self, graph: nx.Graph) -> None:
        if graph.number_of_nodes() == 0:
            raise ValueError("graph must be non-empty")
        self._graph = graph

    @property
    def graph(self) -> nx.Graph:
        """The underlying social graph."""
        return self._graph

    def _pick_anchor(self, candidates: list[int], skills: np.ndarray, rng: np.random.Generator) -> int:
        raise NotImplementedError

    def _pick_member(self, frontier: set[int], skills: np.ndarray, rng: np.random.Generator) -> int:
        raise NotImplementedError

    def propose(self, skills: np.ndarray, k: int, rng: np.random.Generator) -> Grouping:
        array = as_skill_array(skills)
        n = len(array)
        size = require_divisible_groups(n, k)
        _check_graph(self._graph, n)

        unassigned: set[int] = set(range(n))
        # Fallback order for topology-violating fills: descending skill.
        fallback = [int(i) for i in descending_order(array)]
        # All anchors (the groups' teachers) are reserved up front, so a
        # strong member cannot be swallowed as a learner by an earlier
        # group — mirroring Theorem 1's top-k-teacher structure.
        anchors: list[int] = []
        for _ in range(k):
            candidates = [m for m in fallback if m in unassigned]
            anchor = self._pick_anchor(candidates, array, rng)
            anchors.append(anchor)
            unassigned.discard(anchor)

        groups: list[list[int]] = []
        for anchor in anchors:
            group = [anchor]
            frontier = {v for v in self._graph.neighbors(anchor) if v in unassigned}
            while len(group) < size:
                if frontier:
                    member = self._pick_member(frontier, array, rng)
                    frontier.discard(member)
                else:
                    # Topology exhausted: absorb the best unassigned
                    # member anyway (counted by grouping_violations).
                    member = next(m for m in fallback if m in unassigned)
                group.append(member)
                unassigned.discard(member)
                frontier |= {v for v in self._graph.neighbors(member) if v in unassigned}
                frontier &= unassigned
            groups.append(group)
        return Grouping(groups)


class ConnectedDyGroups(_ConnectedGrower):
    """Skill-greedy connected grouping (the DyGroups analogue on a graph).

    Args:
        graph: the social graph on nodes ``0 … n−1``.
    """

    name = "connected-dygroups"

    def _pick_anchor(self, candidates: list[int], skills: np.ndarray, rng: np.random.Generator) -> int:
        return candidates[0]  # highest-skilled unassigned member

    def _pick_member(self, frontier: set[int], skills: np.ndarray, rng: np.random.Generator) -> int:
        return max(frontier, key=lambda m: (float(skills[m]), -m))


class ConnectedRandom(_ConnectedGrower):
    """Random connected grouping (Random-Assignment under the constraint)."""

    name = "connected-random"

    def _pick_anchor(self, candidates: list[int], skills: np.ndarray, rng: np.random.Generator) -> int:
        return int(rng.choice(candidates))

    def _pick_member(self, frontier: set[int], skills: np.ndarray, rng: np.random.Generator) -> int:
        ordered = sorted(frontier)
        return int(ordered[int(rng.integers(len(ordered)))])
