"""Social-network topologies for the graph-constrained TDG variant.

The paper positions TDG against diffusion problems: "all these works
assume the presence of a graph topology or network.  Conversely, TDG
assumes a fully connected underlying network" (Section VI).  The
:mod:`repro.network` package asks the converse question — what happens to
targeted dynamic grouping when a topology *is* imposed — and needs
realistic graphs to do it.

All generators return a connected :class:`networkx.Graph` on nodes
``0 … n−1`` (participant indices) and are fully seeded.
"""

from __future__ import annotations

import networkx as nx

from repro._validation import require_positive_int

__all__ = ["complete_topology", "small_world", "scale_free", "TOPOLOGIES", "get_topology"]


def _ensure_connected(graph: nx.Graph) -> nx.Graph:
    """Connect a possibly fragmented graph by chaining its components."""
    components = [sorted(c) for c in nx.connected_components(graph)]
    for previous, current in zip(components, components[1:]):
        graph.add_edge(previous[0], current[0])
    return graph


def complete_topology(n: int, *, seed: int | None = None) -> nx.Graph:
    """The paper's implicit setting: everyone can group with everyone."""
    n = require_positive_int(n, name="n")
    return nx.complete_graph(n)


def small_world(n: int, *, k: int = 6, p: float = 0.1, seed: int | None = None) -> nx.Graph:
    """Watts–Strogatz small-world graph (offline communities, classrooms).

    Args:
        n: nodes.
        k: each node joins to its ``k`` nearest ring neighbours.
        p: rewiring probability.
    """
    n = require_positive_int(n, name="n")
    if k >= n:
        raise ValueError(f"ring degree k={k} must be below n={n}")
    graph = nx.watts_strogatz_graph(n, k, p, seed=seed)
    return _ensure_connected(graph)


def scale_free(n: int, *, m: int = 3, seed: int | None = None) -> nx.Graph:
    """Barabási–Albert scale-free graph (online social platforms)."""
    n = require_positive_int(n, name="n")
    if m >= n:
        raise ValueError(f"attachment m={m} must be below n={n}")
    return nx.barabasi_albert_graph(n, m, seed=seed)


#: Named topologies for benches and tests.
TOPOLOGIES = {
    "complete": complete_topology,
    "small-world": small_world,
    "scale-free": scale_free,
}


def get_topology(name: str):
    """Look up a named topology generator.

    Raises:
        ValueError: for an unknown name.
    """
    try:
        return TOPOLOGIES[name.lower()]
    except KeyError:
        raise ValueError(f"unknown topology {name!r}; expected one of {sorted(TOPOLOGIES)}") from None
