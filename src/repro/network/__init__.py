"""Graph-constrained TDG: grouping restricted by a social-network topology.

The paper's TDG model assumes a fully connected underlying network
(Section VI); this package studies the constrained converse — groups must
induce connected subgraphs of a given social graph — with a skill-greedy
grouper that reduces exactly to DyGroups-Star on the complete graph.
"""

from repro.network.constrained import ConnectedDyGroups, ConnectedRandom, grouping_violations
from repro.network.topology import (
    TOPOLOGIES,
    complete_topology,
    get_topology,
    scale_free,
    small_world,
)

__all__ = [
    "ConnectedDyGroups",
    "ConnectedRandom",
    "grouping_violations",
    "TOPOLOGIES",
    "complete_topology",
    "get_topology",
    "scale_free",
    "small_world",
]
