"""The unified, capability-aware policy registry.

One table maps every runnable grouping algorithm — core DyGroups, the
paper's baselines, and the Section VII extensions — to a typed
description the whole harness shares:

* a canonical :class:`PolicySpec` (``name`` + typed params, rendered as
  ``"name:key=value;key=value"``) replaces ad-hoc kwarg threading in
  :func:`repro.baselines.registry.make_policy`, the CLI,
  :class:`~repro.experiments.spec.ExperimentSpec`, and the serving
  layer;
* declared **capabilities** (``vectorizable``, ``stateful``,
  ``objective_aware``, ``extension``) let drivers route without
  isinstance checks — :func:`repro.engine.select.select_engine` decides
  scalar vs vectorized, the conformance suite enumerates what must be
  bit-identical, and ``dygroups list`` prints the matrix;
* per-name **vectorizer** hooks extend
  :func:`repro.core.vectorized.vectorize_policy` to extension policies
  without the core dispatch importing the extensions package.

Typical entry points: :func:`build_policy` (spec string or
:class:`PolicySpec` → fresh policy instance), :func:`get_policy`
(name → :class:`RegisteredPolicy` record), :data:`POLICY_NAMES`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

from repro.baselines.annealing import AnnealingGrouping
from repro.baselines.kmeans import KMeansGrouping
from repro.baselines.local_optimum import ArbitraryLocalOptimum
from repro.baselines.lpa import LpaGrouping
from repro.baselines.percentile import PercentilePartitions
from repro.baselines.random_assignment import RandomAssignment
from repro.baselines.static import StaticPolicy
from repro.core.dygroups import DyGroupsClique, DyGroupsStar, dygroups_policy
from repro.core.simulation import GroupingPolicy
from repro.extensions.affinity import AffinityAwarePolicy
from repro.extensions.fairness import FairnessAwarePolicy, fair_star_rank_listing

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.vectorized import VectorizedPolicy

__all__ = [
    "CAPABILITIES",
    "POLICY_NAMES",
    "ParamSpec",
    "PolicySpec",
    "RegisteredPolicy",
    "build_policy",
    "capability_matrix",
    "get_policy",
    "policy_names",
    "registered_policy_types",
    "unregistered_policy_exemptions",
    "vectorizer_for",
]

#: The capability flags a policy can declare, in display order.
CAPABILITIES: tuple[str, ...] = (
    "vectorizable",
    "shardable",
    "stateful",
    "objective_aware",
    "extension",
)


@dataclass(frozen=True)
class ParamSpec:
    """One typed, per-policy parameter.

    Attributes:
        name: the parameter key as it appears in a spec string.
        kind: ``"int"`` / ``"float"`` / ``"str"``.
        default: the value used when the spec omits the key (``None``
            defers to the policy constructor's own default).
        doc: one-line description for ``dygroups list`` and the docs.
    """

    name: str
    kind: str
    default: "int | float | str | None" = None
    doc: str = ""

    def coerce(self, value: "int | float | str", *, policy: str) -> "int | float | str":
        """Validate/convert ``value`` (python value or spec-string text).

        Raises:
            ValueError: naming the offending policy and key on a type
                mismatch.
        """
        try:
            if self.kind == "int":
                if isinstance(value, bool):
                    raise ValueError(value)
                if isinstance(value, int):
                    return value
                if isinstance(value, str):
                    return int(value)
                raise ValueError(value)
            if self.kind == "float":
                if isinstance(value, bool):
                    raise ValueError(value)
                if isinstance(value, (int, float)):
                    return float(value)
                if isinstance(value, str):
                    return float(value)
                raise ValueError(value)
            if self.kind == "str":
                if isinstance(value, str):
                    return value
                raise ValueError(value)
        except ValueError:
            raise ValueError(
                f"policy {policy!r} parameter {self.name!r} expects {self.kind}, "
                f"got {value!r}"
            ) from None
        raise AssertionError(f"unknown param kind {self.kind!r}")  # pragma: no cover


@dataclass(frozen=True)
class RegisteredPolicy:
    """One registry row: how to build a policy and what it can do.

    Attributes:
        name: canonical algorithm name.
        summary: one-line description.
        builds: the concrete :class:`GroupingPolicy` type(s) instances of
            this name may be (drives the completeness check).
        factory: ``factory(mode, rate, params) -> GroupingPolicy`` with
            ``params`` already validated against :attr:`params`.
        params: the declared typed parameters.
        vectorizable: a batched form exists — serve / ``simulate_many``
            trajectories are pinned bit-identical to scalar ``simulate``.
        shardable: the batched form additionally runs under a
            :class:`~repro.core.shard.ShardPlan` (per-shard partial
            sorts, bounded memory) — true for the rank-listing family
            whose proposal is a pure function of the descending order,
            pinned bit-identical to the other engines.
        stateful: carries cross-round state that :meth:`GroupingPolicy.reset`
            must clear.
        objective_aware: scores candidate groupings internally and
            declares a ``required_mode``.
        extension: a Section VII extension rather than a paper algorithm.
        vectorizer: optional hook returning the policy's
            :class:`~repro.core.vectorized.VectorizedPolicy` (used by
            :func:`repro.core.vectorized.vectorize_policy` for policies
            the core dispatch does not know).
    """

    name: str
    summary: str
    builds: tuple[type, ...]
    factory: Callable[[str, float, dict], GroupingPolicy]
    params: tuple[ParamSpec, ...] = ()
    vectorizable: bool = False
    shardable: bool = False
    stateful: bool = False
    objective_aware: bool = False
    extension: bool = False
    vectorizer: "Callable[[GroupingPolicy], VectorizedPolicy] | None" = field(
        default=None, repr=False
    )

    @property
    def capabilities(self) -> tuple[str, ...]:
        """The declared capability flags, in :data:`CAPABILITIES` order."""
        return tuple(flag for flag in CAPABILITIES if getattr(self, flag))

    def param(self, key: str) -> ParamSpec:
        """The declared parameter named ``key``.

        Raises:
            ValueError: naming the offending key for an unknown one.
        """
        for spec in self.params:
            if spec.name == key:
                return spec
        if not self.params:
            raise ValueError(f"policy {self.name!r} takes no parameters, got {key!r}")
        known = tuple(spec.name for spec in self.params)
        raise ValueError(f"policy {self.name!r} has no parameter {key!r}; expected one of {known}")

    def validate_params(self, params: "Mapping[str, int | float | str]") -> dict:
        """Coerce/validate a params mapping against the declared schema.

        Raises:
            ValueError: naming the offending key for an unknown key or a
                type mismatch.
        """
        return {key: self.param(key).coerce(value, policy=self.name) for key, value in params.items()}


@dataclass(frozen=True)
class PolicySpec:
    """A canonical, typed reference to a registered policy.

    ``params`` is a sorted tuple of ``(key, value)`` pairs, so specs are
    hashable and equality matches canonical-string equality.  Construct
    through :meth:`make` or :meth:`parse` (both validate against the
    registry); :meth:`canonical` renders the round-trippable string form
    ``"name"`` or ``"name:key=value;key=value"``.
    """

    name: str
    params: "tuple[tuple[str, int | float | str], ...]" = ()

    @classmethod
    def make(cls, name: str, /, **params: "int | float | str") -> "PolicySpec":
        """A validated spec for ``name`` with explicit params.

        Raises:
            ValueError: for an unknown name, unknown key, or mistyped
                value (the error names the offending key).
        """
        info = get_policy(name)
        validated = info.validate_params(params)
        return cls(name=info.name, params=tuple(sorted(validated.items())))

    @classmethod
    def parse(cls, text: "str | PolicySpec") -> "PolicySpec":
        """Parse ``"name"`` / ``"name:key=value;key=value"`` (validated).

        A :class:`PolicySpec` passes through unchanged.

        Raises:
            ValueError: for a malformed string, unknown name, unknown
                key, or mistyped value.
        """
        if isinstance(text, PolicySpec):
            return text
        name, _, raw_params = text.strip().partition(":")
        params: dict[str, str] = {}
        if raw_params:
            for pair in raw_params.split(";"):
                key, sep, value = pair.partition("=")
                key = key.strip()
                if not sep or not key or not value.strip():
                    raise ValueError(
                        f"malformed policy spec {text!r}: expected "
                        "'name' or 'name:key=value;key=value'"
                    )
                params[key] = value.strip()
        return cls.make(name.strip(), **params)

    def param_dict(self) -> "dict[str, int | float | str]":
        """The params as a plain dict."""
        return dict(self.params)

    def with_defaults(self, **params: "int | float | str") -> "PolicySpec":
        """A copy with ``params`` filled in where absent *and* declared.

        Keys the policy does not declare are silently ignored — this is
        the legacy-knob bridge (e.g. ``ExperimentSpec.lpa_max_evals``
        applies to ``lpa``/``annealing`` and to nothing else).
        """
        info = get_policy(self.name)
        declared = {spec.name for spec in info.params}
        merged = {k: v for k, v in params.items() if k in declared and v is not None}
        merged.update(self.param_dict())
        return PolicySpec.make(self.name, **merged)

    def canonical(self) -> str:
        """The round-trippable string form."""
        if not self.params:
            return self.name
        rendered = ";".join(f"{key}={value}" for key, value in self.params)
        return f"{self.name}:{rendered}"

    def __str__(self) -> str:
        return self.canonical()


# -- the registry table -------------------------------------------------------

_REGISTRY: "dict[str, RegisteredPolicy]" = {}


def _register(entry: RegisteredPolicy) -> None:
    if entry.name in _REGISTRY:  # pragma: no cover - registration-time guard
        raise ValueError(f"duplicate policy registration {entry.name!r}")
    _REGISTRY[entry.name] = entry


def _fair_star_vectorizer(policy: GroupingPolicy) -> "VectorizedPolicy":
    # Local import: core.vectorized is a heavier module than this table.
    from repro.core.vectorized import _RankListingPolicy

    return _RankListingPolicy(policy.name, fair_star_rank_listing)


def _register_all() -> None:
    _register(RegisteredPolicy(
        name="dygroups",
        summary="DYGROUPS-MODE-LOCAL: the mode-matched paper algorithm",
        builds=(DyGroupsStar, DyGroupsClique),
        factory=lambda mode, rate, params: dygroups_policy(mode),
        vectorizable=True,
        shardable=True,
    ))
    _register(RegisteredPolicy(
        name="dygroups-star",
        summary="Algorithm 2: variance-maximizing round-optimal star grouping",
        builds=(DyGroupsStar,),
        factory=lambda mode, rate, params: DyGroupsStar(),
        vectorizable=True,
        shardable=True,
    ))
    _register(RegisteredPolicy(
        name="dygroups-clique",
        summary="Algorithm 3: round-robin-by-rank clique grouping",
        builds=(DyGroupsClique,),
        factory=lambda mode, rate, params: DyGroupsClique(),
        vectorizable=True,
        shardable=True,
    ))
    _register(RegisteredPolicy(
        name="random",
        summary="RANDOM-ASSIGNMENT: uniform permutation each round",
        builds=(RandomAssignment,),
        factory=lambda mode, rate, params: RandomAssignment(),
        vectorizable=True,
    ))
    _register(RegisteredPolicy(
        name="kmeans",
        summary="balanced 1-D k-means clustering of skills",
        builds=(KMeansGrouping,),
        factory=lambda mode, rate, params: KMeansGrouping(),
    ))
    _register(RegisteredPolicy(
        name="percentile",
        summary="PERCENTILE-PARTITIONS: top-(1-p) seeds dealt round-robin",
        builds=(PercentilePartitions,),
        factory=lambda mode, rate, params: PercentilePartitions(params.get("p", 0.75)),
        params=(ParamSpec("p", "float", 0.75, "skill-percentile split point"),),
        vectorizable=True,
        shardable=True,
    ))
    _register(RegisteredPolicy(
        name="lpa",
        summary="Largest-Potential-Assignment local search (swap hill-climb)",
        builds=(LpaGrouping,),
        factory=lambda mode, rate, params: LpaGrouping(
            mode, rate, max_evals=params.get("max_evals"), patience=params.get("patience")
        ),
        params=(
            ParamSpec("max_evals", "int", None, "swap-evaluation budget"),
            ParamSpec("patience", "int", None, "fruitless-swap stop patience"),
        ),
        objective_aware=True,
    ))
    _register(RegisteredPolicy(
        name="annealing",
        summary="simulated-annealing search over groupings",
        builds=(AnnealingGrouping,),
        factory=lambda mode, rate, params: AnnealingGrouping(
            mode,
            rate,
            steps=params.get("steps"),
            initial_temperature=params.get("initial_temperature", 0.05),
            cooling=params.get("cooling", 0.999),
        ),
        params=(
            ParamSpec("steps", "int", None, "annealing step budget"),
            ParamSpec("initial_temperature", "float", 0.05, "starting temperature scale"),
            ParamSpec("cooling", "float", 0.999, "multiplicative cooling factor"),
        ),
        objective_aware=True,
    ))
    _register(RegisteredPolicy(
        name="static-dygroups",
        summary="freeze DyGroups' first grouping for all rounds",
        builds=(StaticPolicy,),
        factory=lambda mode, rate, params: StaticPolicy(dygroups_policy(mode)),
        vectorizable=True,
        shardable=True,
        stateful=True,
    ))
    _register(RegisteredPolicy(
        name="static-random",
        summary="freeze one random grouping for all rounds",
        builds=(StaticPolicy,),
        factory=lambda mode, rate, params: StaticPolicy(RandomAssignment()),
        vectorizable=True,
        stateful=True,
    ))
    for strategy in ("random", "reversed", "interleaved"):
        _register(RegisteredPolicy(
            name=f"local-optimum-{strategy}",
            summary=f"star-round-optimal grouping, {strategy} non-teacher split",
            builds=(ArbitraryLocalOptimum,),
            factory=lambda mode, rate, params, s=strategy: ArbitraryLocalOptimum(s),
        ))
    _register(RegisteredPolicy(
        name="fair-star",
        summary="round-optimal star grouping, best teachers with weakest learners",
        builds=(FairnessAwarePolicy,),
        factory=lambda mode, rate, params: FairnessAwarePolicy(),
        vectorizable=True,
        shardable=True,
        extension=True,
        vectorizer=_fair_star_vectorizer,
    ))
    _register(RegisteredPolicy(
        name="affinity-aware",
        summary="bi-criteria swap search over learning gain and evolving affinity",
        builds=(AffinityAwarePolicy,),
        factory=lambda mode, rate, params: AffinityAwarePolicy(
            mode=mode,
            rate=rate,
            weight=params.get("weight", 0.3),
            sweeps=params.get("sweeps", 2),
            initial=params.get("initial", 0.1),
            growth=params.get("growth", 0.3),
            decay=params.get("decay", 0.95),
        ),
        params=(
            ParamSpec("weight", "float", 0.3, "affinity weight λ in [0, 1]"),
            ParamSpec("sweeps", "int", 2, "swap-improvement passes per round"),
            ParamSpec("initial", "float", 0.1, "starting pairwise affinity"),
            ParamSpec("growth", "float", 0.3, "co-grouped relaxation factor"),
            ParamSpec("decay", "float", 0.95, "separation decay factor"),
        ),
        stateful=True,
        objective_aware=True,
        extension=True,
    ))


_register_all()

#: Canonical names of every registered policy (baselines first, then
#: extensions), in registration order.
POLICY_NAMES: tuple[str, ...] = tuple(_REGISTRY)

#: Concrete :class:`GroupingPolicy` subclasses that are deliberately NOT
#: registered, with the reason — consumed by the registry completeness
#: test.  The graph-constrained policies require a social graph at
#: construction, which a name+params spec cannot supply.
UNREGISTERED_EXEMPT: "dict[str, str]" = {
    "_ConnectedGrower": "abstract seed-and-grow base; requires a social graph",
    "ConnectedDyGroups": "requires a social graph instance at construction",
    "ConnectedRandom": "requires a social graph instance at construction",
}


def policy_names(*, include_extensions: bool = True) -> tuple[str, ...]:
    """Registered names, optionally without the ``extension`` policies."""
    return tuple(
        name for name, info in _REGISTRY.items() if include_extensions or not info.extension
    )


def get_policy(name: str) -> RegisteredPolicy:
    """The registry record for ``name``.

    Raises:
        ValueError: for an unknown name (listing the known ones).
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; expected one of {POLICY_NAMES}"
        ) from None


def build_policy(
    spec: "str | PolicySpec",
    *,
    mode: str = "star",
    rate: float = 0.5,
) -> GroupingPolicy:
    """Instantiate a fresh policy from a spec (string or :class:`PolicySpec`).

    ``mode`` and ``rate`` are *context*, not params: they describe the
    simulation the policy will run in, and only mode/rate-aware policies
    (``dygroups``, ``lpa``, ``annealing``, ``affinity-aware``, the
    static wrappers) consume them.

    Raises:
        ValueError: for an unknown name, unknown param key, or mistyped
            param value — the error names the offending key.
    """
    resolved = PolicySpec.parse(spec)
    info = _REGISTRY[resolved.name]
    return info.factory(mode, rate, resolved.param_dict())


def registered_policy_types() -> frozenset:
    """Every concrete policy type reachable through the registry."""
    return frozenset(t for info in _REGISTRY.values() for t in info.builds)


def unregistered_policy_exemptions() -> "dict[str, str]":
    """Class-name → reason map of deliberately unregistered policies."""
    return dict(UNREGISTERED_EXEMPT)


def vectorizer_for(policy: GroupingPolicy) -> "VectorizedPolicy | None":
    """A registry-declared vectorizer for ``policy``'s exact type, if any.

    The extension hook behind
    :func:`repro.core.vectorized.vectorize_policy`: core types dispatch
    there directly; registered policies with a ``vectorizer`` hook (the
    extensions) resolve here.
    """
    for info in _REGISTRY.values():
        if info.vectorizer is not None and type(policy) in info.builds:
            return info.vectorizer(policy)
    return None


def capability_matrix() -> "list[tuple[str, tuple[str, ...], tuple[str, ...]]]":
    """``(name, capabilities, param names)`` rows for docs and ``dygroups list``."""
    return [
        (info.name, info.capabilities, tuple(spec.name for spec in info.params))
        for info in _REGISTRY.values()
    ]
