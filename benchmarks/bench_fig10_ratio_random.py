"""Figure 10 — learning gain of DyGroups relative to Random-Assignment.

Paper: up to ~30% higher gain over a small number of rounds; the ratio
shrinks toward 1 as α grows (both converge to the max-skill ceiling) and
DyGroups-Star is comparable to DyGroups-Clique throughout.
(a) vary α ∈ {2..64} at fixed n; (b) vary n at α = 10.
"""

from __future__ import annotations

from repro.experiments.figures import fig10a, fig10b
from repro.experiments.render import render_table

from benchmarks._util import BENCH_RUNS, FULL, emit


def bench_fig10a_ratio_vs_alpha(benchmark):
    series_set = benchmark.pedantic(
        fig10a, kwargs={"full": FULL, "runs": BENCH_RUNS}, iterations=1, rounds=1
    )
    emit("fig10a_ratio_vs_alpha", render_table(series_set))
    for series in series_set.series:
        # DyGroups wins clearly at small alpha; the advantage shrinks as
        # both methods hit the max-skill ceiling.
        assert series.y[0] > 1.0
        assert series.y[-1] <= series.y[0] + 1e-9
    # Star: the greedy is conjectured globally optimal, and indeed never
    # loses to random at any horizon.
    star = series_set.get("dygroups-star/random").y
    assert all(v >= 0.999 for v in star)
    # Clique: the greedy is provably multi-round suboptimal (see
    # tests/baselines/test_brute_force.py), so mid-horizon ratios can dip
    # a few percent below 1 before saturation pulls both to the ceiling.
    clique = series_set.get("dygroups-clique/random").y
    assert all(v >= 0.94 for v in clique)
    assert clique[-1] >= 0.97


def bench_fig10b_ratio_vs_n(benchmark):
    series_set = benchmark.pedantic(
        fig10b, kwargs={"full": FULL, "runs": BENCH_RUNS}, iterations=1, rounds=1
    )
    emit("fig10b_ratio_vs_n", render_table(series_set))
    star = series_set.get("dygroups-star/random").y
    clique = series_set.get("dygroups-clique/random").y
    for v_star, v_clique in zip(star, clique):
        assert v_star >= 0.99 and v_clique >= 0.99
        # Star is a good proxy for clique (Section V-B4).
        assert abs(v_star - v_clique) / max(v_star, v_clique) < 0.35
