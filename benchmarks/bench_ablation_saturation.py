"""Ablation A6 — the r = 1 special case (footnote 5 / Section V-B2 remark).

The paper: "In the special case of r = 1 … it takes log_{n/k}(n) rounds
to make everyone reach the highest skill value for DYGROUPS and LPA."
This bench measures rounds-to-saturation for DyGroups and Random across
instance sizes and compares them with the closed-form bound.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.registry import make_policy
from repro.core.dygroups import DyGroupsStar
from repro.data.distributions import uniform_skills
from repro.extensions.saturation import rounds_to_saturation_bound, simulate_full_rate

from benchmarks._util import FULL, emit

INSTANCES = ((64, 8), (100, 10), (1_000, 10), (4_096, 8)) + (((100_000, 10),) if FULL else ())


def _run() -> list[tuple[int, int, int, int, float]]:
    rows = []
    for n, k in INSTANCES:
        skills = uniform_skills(n, seed=0)
        bound = rounds_to_saturation_bound(n, k)
        dy = simulate_full_rate(DyGroupsStar(), skills, k=k, seed=0).rounds_to_saturation
        rnd = float(
            np.mean(
                [
                    simulate_full_rate(
                        make_policy("random"), skills, k=k, seed=s
                    ).rounds_to_saturation
                    for s in range(5)
                ]
            )
        )
        rows.append((n, k, bound, dy, rnd))
    return rows


def bench_ablation_saturation(benchmark):
    rows = benchmark.pedantic(_run, iterations=1, rounds=1)
    lines = [
        "Ablation A6: rounds to full saturation at r=1 (star mode)",
        f"{'n':>8}{'k':>6}{'log_(n/k)(n) bound':>20}{'dygroups':>10}{'random (mean)':>15}",
    ]
    for n, k, bound, dy, rnd in rows:
        lines.append(f"{n:>8}{k:>6}{bound:>20}{dy:>10}{rnd:>15.1f}")
    emit("ablation_saturation", "\n".join(lines))

    for n, k, bound, dy, rnd in rows:
        # DyGroups meets the paper's bound; random needs at least as long.
        assert dy <= bound
        assert rnd >= dy - 1e-9
