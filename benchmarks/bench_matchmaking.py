"""Matchmaking admission throughput — concurrent joiners vs time-to-match.

Not a paper figure: this bench characterizes the :mod:`repro.matchmaking`
streaming-admission layer.  For 1, 8, and 64 concurrent joiner threads
pushing a fixed arrival pool through ``POST /v1/join`` (in-process
client, so the numbers measure the condenser, not sockets), it reports
join-call latency, time-to-match p50/p95 (from the matchmaker's own
``matchmaking.time_to_match_seconds`` histogram), and matched cohorts
per second, archived as ``BENCH_matchmaking.json``.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.serve.client import InProcessClient
from repro.serve.config import ServeConfig
from repro.serve.service import GroupingService

from benchmarks._util import FULL, emit, metrics_snapshot

#: Concurrent joiner threads per workload level.
LEVELS = (1, 8, 64)

#: Cohorts condensed per level (spec below fills at N_SPEC joins each).
WAVES = 40 if FULL else 8

#: Condensable cohort shape: 2 groups of 4, fill-triggered.
N_SPEC, K_SPEC = 8, 2


def _match_histogram() -> tuple[int, list[float]]:
    """(count, retained values) of the global time-to-match histogram."""
    payload = (
        metrics_snapshot()
        .get("histograms", {})
        .get("matchmaking.time_to_match_seconds", {})
    )
    return payload.get("count", 0), payload.get("values", [])


def _run_level(joiners: int) -> dict[str, float]:
    """Push WAVES*N_SPEC arrivals through `joiners` threads; return stats."""
    total_joins = WAVES * N_SPEC
    skills = np.random.default_rng(7).uniform(1.0, 10.0, size=total_joins)
    join_latencies: list[float] = []
    lock = threading.Lock()
    count_before, _ = _match_histogram()

    service = GroupingService(
        ServeConfig(
            workers=0,
            max_cohorts=max(256, WAVES + 1),
            matchmaking={
                "specs": [
                    {"n": N_SPEC, "k": K_SPEC, "deadline_seconds": 600.0}
                ]
            },
        )
    )
    try:
        client = InProcessClient(service)

        def loop(worker: int) -> None:
            local: list[float] = []
            for index in range(worker, total_joins, joiners):
                begin = time.perf_counter()
                client.join(float(skills[index]))
                local.append(time.perf_counter() - begin)
            with lock:
                join_latencies.extend(local)

        threads = [
            threading.Thread(target=loop, args=(w,)) for w in range(joiners)
        ]
        wall_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_start
        snapshot = client.matchmaking()
    finally:
        service.close()

    count_after, retained = _match_histogram()
    matched_new = count_after - count_before
    # This level's time-to-match series is the tail the run appended.
    series = np.asarray(retained[len(retained) - matched_new :] or [0.0])
    ordered = sorted(join_latencies)
    return {
        "joiners": joiners,
        "joins": total_joins,
        "cohorts": snapshot["condensed"],
        "wall_seconds": wall,
        "joins_per_second": total_joins / wall,
        "matched_cohorts_per_second": snapshot["condensed"] / wall,
        "join_p50_ms": 1e3 * ordered[len(ordered) // 2],
        "join_p95_ms": 1e3 * ordered[int(len(ordered) * 0.95)],
        "time_to_match_p50_ms": 1e3 * float(np.percentile(series, 50)),
        "time_to_match_p95_ms": 1e3 * float(np.percentile(series, 95)),
        "matched": matched_new,
    }


def bench_matchmaking(benchmark):
    baseline = benchmark.pedantic(_run_level, args=(1,), iterations=1, rounds=1)
    results = [baseline] + [_run_level(joiners) for joiners in LEVELS[1:]]

    lines = [
        f"streaming admission: {WAVES} waves of n={N_SPEC}, k={K_SPEC} "
        "(fill-triggered condensation, in-process client)",
        "",
        f"{'joiners':>8} {'joins/s':>10} {'cohorts/s':>10} "
        f"{'match p50 ms':>13} {'match p95 ms':>13} {'join p95 ms':>12}",
    ]
    for stats in results:
        lines.append(
            f"{stats['joiners']:>8} {stats['joins_per_second']:>10.1f} "
            f"{stats['matched_cohorts_per_second']:>10.2f} "
            f"{stats['time_to_match_p50_ms']:>13.2f} "
            f"{stats['time_to_match_p95_ms']:>13.2f} "
            f"{stats['join_p95_ms']:>12.2f}"
        )
    emit(
        "matchmaking",
        "\n".join(lines),
        config={
            "waves": WAVES,
            "n": N_SPEC,
            "k": K_SPEC,
            "levels": list(LEVELS),
            "results": results,
        },
    )

    # Every arrival must have been condensed into a cohort — the pool is
    # an exact multiple of the spec size and deadlines never fire.
    for stats in results:
        assert stats["matched"] == stats["joins"], stats
        assert stats["cohorts"] == WAVES, stats
