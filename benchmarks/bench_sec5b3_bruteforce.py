"""Section V-B3 — brute force vs DyGroups-Star for k = 2.

Paper: 1000 random trials with n ∈ {4, 6, 8}, α ∈ [1, 4], uniform skills;
DyGroups-Star agrees with the exponential-time optimum in all of them
(Theorem 5).  Bench mode runs 200 trials; REPRO_BENCH_FULL=1 runs the
paper's 1000.
"""

from __future__ import annotations

from repro.theory.theorem5 import check_theorem5_trials

from benchmarks._util import FULL, emit

TRIALS = 1000 if FULL else 200


def bench_sec5b3_bruteforce_agreement(benchmark):
    report = benchmark.pedantic(
        check_theorem5_trials, args=(TRIALS,), kwargs={"seed": 42}, iterations=1, rounds=1
    )
    text = (
        "Section V-B3: brute force vs DyGroups-Star (k=2)\n"
        f"trials:     {report.trials}\n"
        f"agreements: {report.agreements}\n"
        f"worst gap:  {report.worst_gap:.3e}\n"
        f"result:     {'ALL AGREE (Theorem 5 validated)' if report.holds else 'DISAGREEMENT FOUND'}"
    )
    emit("sec5b3_bruteforce", text)
    assert report.holds
