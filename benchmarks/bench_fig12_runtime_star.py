"""Figure 12 — running time, star mode (log-normal skills).

Paper: both DyGroups variants are dominated by the O(n log n) sort,
scale near-linearly in n, and are essentially flat in k; LPA is orders
of magnitude slower.  Absolute times are not comparable (the paper's
numbers are C++ microseconds; ours are pure-Python seconds) — the shapes
are the deliverable.

In addition to the printed per-algorithm sweep table, pytest-benchmark
times a single DyGroups-Star run at the default size for the stats table.
"""

from __future__ import annotations

from repro.core.dygroups import dygroups
from repro.data.distributions import lognormal_skills
from repro.experiments.figures import fig12
from repro.experiments.render import render_table

from benchmarks._util import BENCH_RUNS, FULL, emit


def bench_fig12_runtime_star_sweeps(benchmark):
    by_n, by_k = benchmark.pedantic(
        fig12, kwargs={"full": FULL, "runs": BENCH_RUNS}, iterations=1, rounds=1
    )
    emit("fig12_runtime_star", render_table(by_n, digits=3) + "\n\n" + render_table(by_k, digits=3))

    # Shape: DyGroups runtime grows sublinearly with a 10x n increase is
    # far below 100x (near-linear), and stays within a small factor as k
    # grows (flat in k up to per-group Python overhead).
    dygroups_n = by_n.get("dygroups").y
    assert dygroups_n[-1] / max(dygroups_n[0], 1e-9) < (by_n.x[-1] / by_n.x[0]) ** 1.5
    dygroups_k = by_k.get("dygroups").y
    assert max(dygroups_k) / max(min(dygroups_k), 1e-9) < 50
    # LPA is the slowest algorithm at the largest n (matching the paper).
    last_point = {label: by_n.get(label).y[-1] for label in by_n.labels()}
    assert last_point["lpa"] == max(last_point.values())


def bench_fig12_dygroups_star_single_run(benchmark):
    skills = lognormal_skills(10_000, seed=0)
    benchmark(
        dygroups, skills, k=5, alpha=5, rate=0.5, mode="star", record_groupings=False
    )
