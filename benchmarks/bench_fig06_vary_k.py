"""Figure 6 — aggregate learning gain, varying k (number of groups).

Paper: (a) star/log-normal, (b) clique/Zipf; DyGroups wins and the gain
*decreases* as k grows — with more groups, fewer groups contain expert
peers.
"""

from __future__ import annotations

from repro.experiments.figures import fig06a, fig06b
from repro.experiments.render import render_table

from benchmarks._util import BENCH_RUNS, FULL, emit


def _check_shape(series_set) -> None:
    dygroups = series_set.get("dygroups").y
    random_y = series_set.get("random").y
    assert all(d >= r - 1e-9 for d, r in zip(dygroups, random_y))
    # LG decreases with k (first vs last grid point).
    assert dygroups[0] > dygroups[-1]


def bench_fig06a_vary_k_star_lognormal(benchmark):
    series_set = benchmark.pedantic(
        fig06a, kwargs={"full": FULL, "runs": BENCH_RUNS}, iterations=1, rounds=1
    )
    emit("fig06a_vary_k_star_lognormal", render_table(series_set))
    _check_shape(series_set)


def bench_fig06b_vary_k_clique_zipf(benchmark):
    series_set = benchmark.pedantic(
        fig06b, kwargs={"full": FULL, "runs": BENCH_RUNS}, iterations=1, rounds=1
    )
    emit("fig06b_vary_k_clique_zipf", render_table(series_set))
    _check_shape(series_set)
