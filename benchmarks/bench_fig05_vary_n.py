"""Figure 5 — aggregate learning gain, varying n.

Paper: (a) clique mode with log-normal skills, (b) star mode with Zipf
skills; DyGroups convincingly outperforms all baselines and the gain
grows with n.  Bench grids are one decade below the paper's largest
points (set REPRO_BENCH_FULL=1 for the paper grids).
"""

from __future__ import annotations

from repro.experiments.figures import fig05a, fig05b
from repro.experiments.render import render_table

from benchmarks._util import BENCH_RUNS, FULL, emit


def _check_shape(series_set) -> None:
    dygroups = series_set.get("dygroups").y
    random_y = series_set.get("random").y
    # DyGroups >= Random at every grid point; gain grows with n.
    assert all(d >= r - 1e-9 for d, r in zip(dygroups, random_y))
    assert dygroups[0] < dygroups[-1]


def bench_fig05a_vary_n_clique_lognormal(benchmark):
    series_set = benchmark.pedantic(
        fig05a, kwargs={"full": FULL, "runs": BENCH_RUNS}, iterations=1, rounds=1
    )
    emit("fig05a_vary_n_clique_lognormal", render_table(series_set))
    _check_shape(series_set)


def bench_fig05b_vary_n_star_zipf(benchmark):
    series_set = benchmark.pedantic(
        fig05b, kwargs={"full": FULL, "runs": BENCH_RUNS}, iterations=1, rounds=1
    )
    emit("fig05b_vary_n_star_zipf", render_table(series_set))
    _check_shape(series_set)
