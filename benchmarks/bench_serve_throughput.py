"""Serving-layer throughput — closed-loop load against the in-process server.

Not a paper figure: this bench characterizes the :mod:`repro.serve`
subsystem added for production-style deployment.  A closed-loop load
generator (client threads, each running ``create → advance×R →
inspect`` loops against one :class:`~repro.serve.service.GroupingService`
through the in-process client) reports requests/second, p50/p95 request
latency, and the grouping-memo hit rate, archived as
``BENCH_serve_throughput.json``.  The in-process client is deliberate:
the numbers measure the service (sessions + cache + scheduler), not
socket syscalls.

Workloads:

* ``replay`` — every client replays the same cohort configuration, the
  memo's best case (exact-tier hits dominate after warmup);
* ``adaptive`` — distinct skills per cohort (all cache misses) through
  the **adaptive** scheduler: a round step is stacked into a batched
  ``propose_batch → apply_update_many`` wave only when a same-shape
  cohort is in flight at the same moment; a lone step falls through to
  the inline kernel (``serve.scheduler.step_inline_fallthrough``);
* ``legacy`` — the same load with ``adaptive_batch=False``:
  unconditional queue-and-batch, the semantics that archived the 0.60×
  regression row under ``config.batched_round_step``;
* ``inline`` — the same load with ``workers=0``, every round stepped
  through the scalar kernel on the caller thread (the before side);
* ``inline_heavy`` / ``adaptive_heavy`` — the same pair under heavy
  fan-in (``HEAVY_CLIENTS`` threads), where same-shape overlap is
  common and waves actually stack.

On a multi-core host the heavy tier is where batching pulls ahead (the
wave kernel releases the GIL into one vectorized update while client
threads keep queueing).  On a single core the scheduler's parallelism
gate keeps waves OFF entirely — the wave's serial handoff costs double
the per-round price there, so every step falls through to the inline
kernel — and the honest target is *parity with inline*, which is
exactly the win over the archived 0.60× unconditional-batching
regression (``legacy`` still queues unconditionally, gate or no gate).

The adaptive-vs-inline pairs are the before/after of round-step
batching, archived under ``config.batched_round_step`` (4-client tier)
and ``config.adaptive_batching`` (both tiers + the legacy row).
"""

from __future__ import annotations

import os
import threading
import time
from math import fsum

import numpy as np

from repro.serve.client import InProcessClient
from repro.serve.config import ServeConfig
from repro.serve.service import GroupingService

from benchmarks._util import FULL, emit, metrics_snapshot

#: Closed-loop client threads.
CLIENTS = 8 if FULL else 4

#: Client threads for the heavy fan-in tier.
HEAVY_CLIENTS = 64

#: Cohort create→advance→inspect loops per client.
LOOPS = 60 if FULL else 12

#: Loops per client in the heavy tier (64× the threads, so fewer loops).
HEAVY_LOOPS = 6 if FULL else 2

#: Rounds advanced per cohort loop.
ROUNDS = 6

#: Cohort size / groups for the load shape.
N, K = 120, 10


def _scheduler_counters() -> tuple[int, float, int, int]:
    """(batches, summed batch size, recorded batches, inline fall-throughs)."""
    snapshot = metrics_snapshot()
    counters = snapshot.get("counters", {})
    batches = counters.get("serve.scheduler.step_batches", {}).get("value", 0)
    fallthrough = (
        counters.get("serve.scheduler.step_inline_fallthrough", {}).get("value", 0)
    )
    sizes = snapshot.get("histograms", {}).get("serve.scheduler.step_batch_size", {})
    return batches, sizes.get("total", 0.0), sizes.get("count", 0), fallthrough


def _run_workload(
    unique_skills: bool,
    *,
    workers: int = 4,
    adaptive: bool = True,
    clients: int = CLIENTS,
    loops: int = LOOPS,
) -> dict[str, float]:
    """Drive the closed loop and return throughput/latency/hit-rate stats."""
    base = np.random.default_rng(42).uniform(1.0, 10.0, size=N)
    latencies: list[float] = []
    lock = threading.Lock()
    batches_before, size_total_before, size_count_before, fall_before = (
        _scheduler_counters()
    )

    config = ServeConfig(workers=workers, cache_size=512, adaptive_batch=adaptive)
    with GroupingService(config) as service:
        client = InProcessClient(service)

        def loop(worker: int) -> None:
            rng = np.random.default_rng(worker)
            local: list[float] = []
            for i in range(loops):
                skills = (
                    rng.uniform(1.0, 10.0, size=N) if unique_skills else base
                ).tolist()
                begin = time.perf_counter()
                cohort = client.create_cohort(skills, K, mode="star", seed=7)["cohort"]
                client.advance_rounds(cohort, ROUNDS)
                client.get_cohort(cohort)
                client.delete_cohort(cohort)
                local.append(time.perf_counter() - begin)
            with lock:
                latencies.extend(local)

        threads = [threading.Thread(target=loop, args=(w,)) for w in range(clients)]
        wall_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_start
        cache_stats = service.cache.stats()

    ordered = sorted(latencies)
    requests = len(latencies) * 4  # create + advance + inspect + delete
    probes = cache_stats["hits"] + cache_stats["misses"]
    batches_after, size_total_after, size_count_after, fall_after = (
        _scheduler_counters()
    )
    step_batches = batches_after - batches_before
    recorded = size_count_after - size_count_before
    return {
        "clients": clients,
        "loops": loops,
        "requests": requests,
        "wall_seconds": wall,
        "req_per_second": requests / wall,
        "loop_p50_ms": 1e3 * ordered[len(ordered) // 2],
        "loop_p95_ms": 1e3 * ordered[int(len(ordered) * 0.95)],
        "loop_mean_ms": 1e3 * fsum(ordered) / len(ordered),
        "cache_hit_rate": cache_stats["hits"] / probes if probes else 0.0,
        "step_batches": step_batches,
        "step_batch_mean": (
            (size_total_after - size_total_before) / recorded if recorded else 0.0
        ),
        "inline_fallthrough": fall_after - fall_before,
    }


def bench_serve_throughput(benchmark):
    replay = benchmark.pedantic(
        _run_workload, args=(False,), iterations=1, rounds=1
    )
    adaptive = _run_workload(True)
    legacy = _run_workload(True, adaptive=False)
    inline = _run_workload(True, workers=0)
    inline_heavy = _run_workload(True, workers=0, clients=HEAVY_CLIENTS, loops=HEAVY_LOOPS)
    adaptive_heavy = _run_workload(True, clients=HEAVY_CLIENTS, loops=HEAVY_LOOPS)

    rows = (
        ("replay", replay),
        ("adaptive", adaptive),
        ("legacy", legacy),
        ("inline", inline),
        ("inline_heavy", inline_heavy),
        ("adaptive_heavy", adaptive_heavy),
    )
    lines = [
        f"closed-loop load: n={N}, k={K}, {ROUNDS} rounds/cohort; "
        f"standard tier {CLIENTS} clients x {LOOPS} loops, "
        f"heavy tier {HEAVY_CLIENTS} clients x {HEAVY_LOOPS} loops",
        "",
        f"{'workload':<15} {'clients':>7} {'req/s':>10} {'p50 ms':>10} {'p95 ms':>10} "
        f"{'hit rate':>9} {'batches':>8} {'inline':>7}",
    ]
    for name, stats in rows:
        lines.append(
            f"{name:<15} {stats['clients']:>7d} {stats['req_per_second']:>10.1f} "
            f"{stats['loop_p50_ms']:>10.2f} {stats['loop_p95_ms']:>10.2f} "
            f"{stats['cache_hit_rate']:>9.2%} {stats['step_batches']:>8d} "
            f"{stats['inline_fallthrough']:>7d}"
        )
    speedup = adaptive["req_per_second"] / inline["req_per_second"]
    heavy_speedup = adaptive_heavy["req_per_second"] / inline_heavy["req_per_second"]
    lines += [
        "",
        f"adaptive round steps vs inline: {speedup:.2f}x req/s at {CLIENTS} clients "
        f"({adaptive['step_batches']} waves, "
        f"{adaptive['inline_fallthrough']} inline fall-throughs), "
        f"{heavy_speedup:.2f}x at {HEAVY_CLIENTS} clients "
        f"({adaptive_heavy['step_batches']} waves, "
        f"mean {adaptive_heavy['step_batch_mean']:.2f} cohorts/wave)",
        f"legacy unconditional batching: "
        f"{legacy['req_per_second'] / inline['req_per_second']:.2f}x req/s "
        f"({legacy['step_batches']} waves)",
    ]
    emit(
        "serve_throughput",
        "\n".join(lines),
        config={
            "clients": CLIENTS,
            "heavy_clients": HEAVY_CLIENTS,
            "loops": LOOPS,
            "heavy_loops": HEAVY_LOOPS,
            "rounds": ROUNDS,
            "n": N,
            "k": K,
            "replay": replay,
            "adaptive": adaptive,
            "legacy": legacy,
            "inline": inline,
            "inline_heavy": inline_heavy,
            "adaptive_heavy": adaptive_heavy,
            # Before/after of scheduler round-step batching on the same
            # cache-miss load: "before" steps every cohort through the
            # scalar kernel inline, "after" stacks same-shape cohorts
            # into propose_batch → apply_update_many waves when — and
            # only when — a same-shape backlog exists at drain time.
            "batched_round_step": {
                "before_req_per_second": inline["req_per_second"],
                "after_req_per_second": adaptive["req_per_second"],
                "speedup": speedup,
                "step_batches": adaptive["step_batches"],
                "step_batch_mean": adaptive["step_batch_mean"],
                "inline_fallthrough": adaptive["inline_fallthrough"],
            },
            "adaptive_batching": {
                "standard_speedup": speedup,
                "heavy_speedup": heavy_speedup,
                "legacy_speedup": (
                    legacy["req_per_second"] / inline["req_per_second"]
                ),
                "heavy_step_batches": adaptive_heavy["step_batches"],
                "heavy_step_batch_mean": adaptive_heavy["step_batch_mean"],
            },
        },
    )

    # The replay workload must actually exercise the memo: after the first
    # trajectory is cached, every later cohort replays it bit for bit.
    assert replay["cache_hit_rate"] > 0.5, "replay workload should be cache-dominated"
    # The unique workload computes every proposal fresh.
    assert adaptive["cache_hit_rate"] < 0.1
    assert replay["requests"] == CLIENTS * LOOPS * 4
    # Unconditional (legacy) batching must still engage under workers,
    # and the workerless baseline must bypass the scheduler entirely.
    assert legacy["step_batches"] > 0, "legacy scheduler should batch round steps"
    assert legacy["inline_fallthrough"] == 0
    assert inline["step_batches"] == 0 and inline["inline_fallthrough"] == 0
    # The adaptive scheduler must answer lone steps inline; waves are
    # gated on real parallelism (min(workers, cpu_count) > 1), so the
    # heavy tier stacks waves exactly when the host can amortize them.
    assert adaptive["inline_fallthrough"] > 0
    if min(4, os.cpu_count() or 1) > 1:
        assert adaptive_heavy["step_batches"] > 0, (
            "heavy fan-in should produce batched waves on a multi-core host"
        )
    else:
        assert adaptive_heavy["step_batches"] == 0, (
            "the parallelism gate should keep waves off on a single core"
        )
    if os.environ.get("REPRO_BENCH_SMOKE", "0") != "1":
        # The performance contract: adaptive batching must win back the
        # archived 0.60x regression.  Parity with inline at both tiers —
        # the 0.8 floor absorbs closed-loop load-generator noise on a
        # shared single-core container (run-to-run spread is +/-25%) —
        # and a clear win over the unconditional legacy scheduler that
        # archived the regression row.
        assert speedup >= 0.8, f"adaptive vs inline at {CLIENTS} clients: {speedup:.2f}x"
        assert heavy_speedup >= 0.8, (
            f"adaptive vs inline at {HEAVY_CLIENTS} clients: {heavy_speedup:.2f}x"
        )
        assert adaptive["req_per_second"] > legacy["req_per_second"], (
            "adaptive batching should beat unconditional legacy batching"
        )
