"""Serving-layer throughput — closed-loop load against the in-process server.

Not a paper figure: this bench characterizes the :mod:`repro.serve`
subsystem added for production-style deployment.  A closed-loop load
generator (``CLIENTS`` threads, each running ``create → advance×R →
inspect`` loops against one :class:`~repro.serve.service.GroupingService`
through the in-process client) reports requests/second, p50/p95 request
latency, and the grouping-memo hit rate, archived as
``BENCH_serve_throughput.json``.  The in-process client is deliberate:
the numbers measure the service (sessions + cache + scheduler), not
socket syscalls.

Three workloads:

* ``replay`` — every client replays the same cohort configuration, the
  memo's best case (exact-tier hits dominate after warmup);
* ``unique`` — every cohort gets distinct skills, the worst case (all
  misses; measures the scheduler + session overhead ceiling).  With
  workers, advance requests ride the scheduler's *batched round steps*:
  concurrent same-shape cohorts are stepped as one stacked
  ``propose_batch → apply_update_many`` wave;
* ``inline`` — the ``unique`` load with ``workers=0``, so every round
  steps through the scalar kernel one cohort at a time.  The
  ``unique`` vs ``inline`` pair is the before/after of round-step
  batching, archived under ``config.batched_round_step``.
"""

from __future__ import annotations

import threading
import time
from math import fsum

import numpy as np

from repro.serve.client import InProcessClient
from repro.serve.config import ServeConfig
from repro.serve.service import GroupingService

from benchmarks._util import FULL, emit, metrics_snapshot

#: Closed-loop client threads.
CLIENTS = 8 if FULL else 4

#: Cohort create→advance→inspect loops per client.
LOOPS = 60 if FULL else 12

#: Rounds advanced per cohort loop.
ROUNDS = 6

#: Cohort size / groups for the load shape.
N, K = 120, 10


def _step_batch_counters() -> tuple[int, float, int]:
    """(batches, summed batch size, recorded batches) from the metrics registry."""
    snapshot = metrics_snapshot()
    batches = (
        snapshot.get("counters", {})
        .get("serve.scheduler.step_batches", {})
        .get("value", 0)
    )
    sizes = snapshot.get("histograms", {}).get("serve.scheduler.step_batch_size", {})
    return batches, sizes.get("total", 0.0), sizes.get("count", 0)


def _run_workload(unique_skills: bool, *, workers: int = 4) -> dict[str, float]:
    """Drive the closed loop and return throughput/latency/hit-rate stats."""
    base = np.random.default_rng(42).uniform(1.0, 10.0, size=N)
    latencies: list[float] = []
    lock = threading.Lock()
    batches_before, size_total_before, size_count_before = _step_batch_counters()

    with GroupingService(ServeConfig(workers=workers, cache_size=512)) as service:
        client = InProcessClient(service)

        def loop(worker: int) -> None:
            rng = np.random.default_rng(worker)
            local: list[float] = []
            for i in range(LOOPS):
                skills = (
                    rng.uniform(1.0, 10.0, size=N) if unique_skills else base
                ).tolist()
                begin = time.perf_counter()
                cohort = client.create_cohort(skills, K, mode="star", seed=7)["cohort"]
                client.advance_rounds(cohort, ROUNDS)
                client.get_cohort(cohort)
                client.delete_cohort(cohort)
                local.append(time.perf_counter() - begin)
            with lock:
                latencies.extend(local)

        threads = [threading.Thread(target=loop, args=(w,)) for w in range(CLIENTS)]
        wall_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_start
        cache_stats = service.cache.stats()

    ordered = sorted(latencies)
    requests = len(latencies) * 4  # create + advance + inspect + delete
    probes = cache_stats["hits"] + cache_stats["misses"]
    batches_after, size_total_after, size_count_after = _step_batch_counters()
    step_batches = batches_after - batches_before
    recorded = size_count_after - size_count_before
    return {
        "requests": requests,
        "wall_seconds": wall,
        "req_per_second": requests / wall,
        "loop_p50_ms": 1e3 * ordered[len(ordered) // 2],
        "loop_p95_ms": 1e3 * ordered[int(len(ordered) * 0.95)],
        "loop_mean_ms": 1e3 * fsum(ordered) / len(ordered),
        "cache_hit_rate": cache_stats["hits"] / probes if probes else 0.0,
        "step_batches": step_batches,
        "step_batch_mean": (
            (size_total_after - size_total_before) / recorded if recorded else 0.0
        ),
    }


def bench_serve_throughput(benchmark):
    replay = benchmark.pedantic(
        _run_workload, args=(False,), iterations=1, rounds=1
    )
    unique = _run_workload(True)
    inline = _run_workload(True, workers=0)

    lines = [
        f"closed-loop load: {CLIENTS} clients x {LOOPS} loops "
        f"(n={N}, k={K}, {ROUNDS} rounds/cohort)",
        "",
        f"{'workload':<10} {'req/s':>10} {'p50 ms':>10} {'p95 ms':>10} "
        f"{'hit rate':>10} {'steps/batch':>12}",
    ]
    for name, stats in (("replay", replay), ("unique", unique), ("inline", inline)):
        lines.append(
            f"{name:<10} {stats['req_per_second']:>10.1f} {stats['loop_p50_ms']:>10.2f} "
            f"{stats['loop_p95_ms']:>10.2f} {stats['cache_hit_rate']:>10.2%} "
            f"{stats['step_batch_mean']:>12.2f}"
        )
    speedup = unique["req_per_second"] / inline["req_per_second"]
    lines += [
        "",
        f"batched round steps (unique vs inline): {speedup:.2f}x req/s "
        f"({unique['step_batches']} step batches, "
        f"mean {unique['step_batch_mean']:.2f} cohorts/wave)",
    ]
    emit(
        "serve_throughput",
        "\n".join(lines),
        config={
            "clients": CLIENTS,
            "loops": LOOPS,
            "rounds": ROUNDS,
            "n": N,
            "k": K,
            "replay": replay,
            "unique": unique,
            "inline": inline,
            # Before/after of scheduler round-step batching on the same
            # cache-miss load: "before" steps every cohort through the
            # scalar kernel inline, "after" stacks concurrent same-shape
            # cohorts into propose_batch → apply_update_many waves.
            "batched_round_step": {
                "before_req_per_second": inline["req_per_second"],
                "after_req_per_second": unique["req_per_second"],
                "speedup": speedup,
                "step_batches": unique["step_batches"],
                "step_batch_mean": unique["step_batch_mean"],
            },
        },
    )

    # The replay workload must actually exercise the memo: after the first
    # trajectory is cached, every later cohort replays it bit for bit.
    assert replay["cache_hit_rate"] > 0.5, "replay workload should be cache-dominated"
    # The unique workload computes every proposal fresh.
    assert unique["cache_hit_rate"] < 0.1
    assert replay["requests"] == CLIENTS * LOOPS * 4
    # Round-step batching must actually engage under workers, and the
    # workerless baseline must bypass it entirely.
    assert unique["step_batches"] > 0, "scheduler should batch round steps"
    assert inline["step_batches"] == 0
