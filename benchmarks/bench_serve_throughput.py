"""Serving-layer throughput — closed-loop load against the in-process server.

Not a paper figure: this bench characterizes the :mod:`repro.serve`
subsystem added for production-style deployment.  A closed-loop load
generator (``CLIENTS`` threads, each running ``create → advance×R →
inspect`` loops against one :class:`~repro.serve.service.GroupingService`
through the in-process client) reports requests/second, p50/p95 request
latency, and the grouping-memo hit rate, archived as
``BENCH_serve_throughput.json``.  The in-process client is deliberate:
the numbers measure the service (sessions + cache + scheduler), not
socket syscalls.

Two workloads:

* ``replay`` — every client replays the same cohort configuration, the
  memo's best case (exact-tier hits dominate after warmup);
* ``unique`` — every cohort gets distinct skills, the worst case (all
  misses; measures the scheduler + session overhead ceiling).
"""

from __future__ import annotations

import threading
import time
from math import fsum

import numpy as np

from repro.serve.client import InProcessClient
from repro.serve.config import ServeConfig
from repro.serve.service import GroupingService

from benchmarks._util import FULL, emit

#: Closed-loop client threads.
CLIENTS = 8 if FULL else 4

#: Cohort create→advance→inspect loops per client.
LOOPS = 60 if FULL else 12

#: Rounds advanced per cohort loop.
ROUNDS = 6

#: Cohort size / groups for the load shape.
N, K = 120, 10


def _run_workload(unique_skills: bool) -> dict[str, float]:
    """Drive the closed loop and return throughput/latency/hit-rate stats."""
    base = np.random.default_rng(42).uniform(1.0, 10.0, size=N)
    latencies: list[float] = []
    lock = threading.Lock()

    with GroupingService(ServeConfig(workers=4, cache_size=512)) as service:
        client = InProcessClient(service)

        def loop(worker: int) -> None:
            rng = np.random.default_rng(worker)
            local: list[float] = []
            for i in range(LOOPS):
                skills = (
                    rng.uniform(1.0, 10.0, size=N) if unique_skills else base
                ).tolist()
                begin = time.perf_counter()
                cohort = client.create_cohort(skills, K, mode="star", seed=7)["cohort"]
                client.advance_rounds(cohort, ROUNDS)
                client.get_cohort(cohort)
                client.delete_cohort(cohort)
                local.append(time.perf_counter() - begin)
            with lock:
                latencies.extend(local)

        threads = [threading.Thread(target=loop, args=(w,)) for w in range(CLIENTS)]
        wall_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_start
        cache_stats = service.cache.stats()

    ordered = sorted(latencies)
    requests = len(latencies) * 4  # create + advance + inspect + delete
    probes = cache_stats["hits"] + cache_stats["misses"]
    return {
        "requests": requests,
        "wall_seconds": wall,
        "req_per_second": requests / wall,
        "loop_p50_ms": 1e3 * ordered[len(ordered) // 2],
        "loop_p95_ms": 1e3 * ordered[int(len(ordered) * 0.95)],
        "loop_mean_ms": 1e3 * fsum(ordered) / len(ordered),
        "cache_hit_rate": cache_stats["hits"] / probes if probes else 0.0,
    }


def bench_serve_throughput(benchmark):
    replay = benchmark.pedantic(
        _run_workload, args=(False,), iterations=1, rounds=1
    )
    unique = _run_workload(True)

    lines = [
        f"closed-loop load: {CLIENTS} clients x {LOOPS} loops "
        f"(n={N}, k={K}, {ROUNDS} rounds/cohort)",
        "",
        f"{'workload':<10} {'req/s':>10} {'p50 ms':>10} {'p95 ms':>10} {'hit rate':>10}",
    ]
    for name, stats in (("replay", replay), ("unique", unique)):
        lines.append(
            f"{name:<10} {stats['req_per_second']:>10.1f} {stats['loop_p50_ms']:>10.2f} "
            f"{stats['loop_p95_ms']:>10.2f} {stats['cache_hit_rate']:>10.2%}"
        )
    emit(
        "serve_throughput",
        "\n".join(lines),
        config={
            "clients": CLIENTS,
            "loops": LOOPS,
            "rounds": ROUNDS,
            "n": N,
            "k": K,
            "replay": replay,
            "unique": unique,
        },
    )

    # The replay workload must actually exercise the memo: after the first
    # trajectory is cached, every later cohort replays it bit for bit.
    assert replay["cache_hit_rate"] > 0.5, "replay workload should be cache-dominated"
    # The unique workload computes every proposal fresh.
    assert unique["cache_hit_rate"] < 0.1
    assert replay["requests"] == CLIENTS * LOOPS * 4
