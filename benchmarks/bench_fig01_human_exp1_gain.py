"""Figure 1 — Experiment-1: learning gain across rounds (simulated AMT).

Paper: populations of 32 following DyGroups vs K-Means, k=4, r=0.5, α=3;
DyGroups' mean assessment rises faster each round (Observations I & II).
This bench averages the simulated experiment over several seeds and
prints the per-round mean-assessment series for both policies.
"""

from __future__ import annotations

import numpy as np

from repro.amt import EXPERIMENT_1_POLICIES, run_experiment_1
from repro.experiments.render import render_table
from repro.metrics.series import Series, SeriesSet

from benchmarks._util import FULL, emit

SEEDS = range(20 if FULL else 8)


def _mean_traces() -> dict[str, np.ndarray]:
    scores: dict[str, list[list[float]]] = {name: [] for name in EXPERIMENT_1_POLICIES}
    for seed in SEEDS:
        result = run_experiment_1(seed=seed)
        for name, trace in result.traces.items():
            scores[name].append(trace.mean_scores)
    return {name: np.mean(np.array(rows), axis=0) for name, rows in scores.items()}


def bench_fig01_human_exp1_gain(benchmark):
    means = benchmark.pedantic(_mean_traces, iterations=1, rounds=1)
    rounds = tuple(float(t) for t in range(len(next(iter(means.values())))))
    series_set = SeriesSet(
        title="Fig 1: Experiment-1 mean assessment per round (0 = pre-qualification)",
        x_label="round",
        y_label="mean assessment score",
        series=tuple(
            Series(label=name, x=rounds, y=tuple(float(v) for v in values))
            for name, values in means.items()
        ),
    )
    emit("fig01_human_exp1_gain", render_table(series_set))

    # Shape assertions: skills improve (Observation I) and DyGroups ends
    # higher than K-Means (Observation II).
    for values in means.values():
        assert values[-1] > values[0]
    assert means["dygroups"][-1] > means["kmeans"][-1]
