"""Figure 8 — aggregate learning gain, varying learning rate r (Zipf skills).

Paper: (a) clique mode, (b) star mode, both with Zipf-distributed skills;
DyGroups outperforms across the whole r range and gain increases with r.
"""

from __future__ import annotations

from repro.experiments.figures import fig08a, fig08b
from repro.experiments.render import render_table

from benchmarks._util import BENCH_RUNS, FULL, emit


def _check_shape(series_set) -> None:
    dygroups = series_set.get("dygroups").y
    random_y = series_set.get("random").y
    assert all(d >= r - 1e-9 for d, r in zip(dygroups, random_y))
    # More learning per interaction -> more total gain.
    assert dygroups[0] < dygroups[-1]


def bench_fig08a_vary_r_clique_zipf(benchmark):
    series_set = benchmark.pedantic(
        fig08a, kwargs={"full": FULL, "runs": BENCH_RUNS}, iterations=1, rounds=1
    )
    emit("fig08a_vary_r_clique_zipf", render_table(series_set))
    _check_shape(series_set)


def bench_fig08b_vary_r_star_zipf(benchmark):
    series_set = benchmark.pedantic(
        fig08b, kwargs={"full": FULL, "runs": BENCH_RUNS}, iterations=1, rounds=1
    )
    emit("fig08b_vary_r_star_zipf", render_table(series_set))
    _check_shape(series_set)
