"""Figure 2 — linear fit to the learning gain across rounds.

Paper (Observation IV): although diminishing returns would predict a
negative second derivative, the cumulative learning gain under DyGroups
grows approximately *linearly* over the first rounds.  This bench fits a
line to the mean cumulative gain of the Experiment-1 DyGroups population
and reports slope and R².
"""

from __future__ import annotations

import numpy as np

from repro.amt import run_experiment_1
from repro.metrics.fit import fit_line

from benchmarks._util import FULL, emit

SEEDS = range(20 if FULL else 8)


def _cumulative_gain() -> np.ndarray:
    rows = []
    for seed in SEEDS:
        trace = run_experiment_1(seed=seed).traces["dygroups"]
        rows.append(np.cumsum(trace.round_gains))
    return np.mean(np.array(rows), axis=0)


def bench_fig02_linear_fit(benchmark):
    cumulative = benchmark.pedantic(_cumulative_gain, iterations=1, rounds=1)
    rounds = np.arange(1, len(cumulative) + 1, dtype=np.float64)
    fit = fit_line(rounds, cumulative)
    lines = [
        "Fig 2: linear fit to cumulative learning gain (DyGroups, Experiment-1)",
        "round  cumulative_gain  fitted",
    ]
    for x, y in zip(rounds, cumulative):
        lines.append(f"{int(x):>5}  {y:>15.4f}  {float(fit.predict(np.array([x]))[0]):>7.4f}")
    lines.append(f"fit: {fit}")
    emit("fig02_linear_fit", "\n".join(lines))

    # Observation IV's shape: the fit is close to linear (high R²).
    assert fit.r_squared > 0.95
    assert fit.slope > 0
