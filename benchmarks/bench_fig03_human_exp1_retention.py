"""Figure 3 — Experiment-1: worker retention (simulated AMT).

Paper (Observation III): DyGroups retains more workers per round than the
baseline under the same monetary reward — the hypothesized driver is the
higher rate of skill improvement.  The retention model encodes exactly
that hypothesis; this bench reports the resulting retention curves.
"""

from __future__ import annotations

import numpy as np

from repro.amt import EXPERIMENT_1_POLICIES, run_experiment_1
from repro.experiments.render import render_table
from repro.metrics.series import Series, SeriesSet

from benchmarks._util import FULL, emit

SEEDS = range(20 if FULL else 8)


def _mean_retention() -> dict[str, np.ndarray]:
    retention: dict[str, list[list[float]]] = {name: [] for name in EXPERIMENT_1_POLICIES}
    for seed in SEEDS:
        result = run_experiment_1(seed=seed)
        for name, trace in result.traces.items():
            retention[name].append(trace.retention)
    return {name: np.mean(np.array(rows), axis=0) for name, rows in retention.items()}


def bench_fig03_human_exp1_retention(benchmark):
    means = benchmark.pedantic(_mean_retention, iterations=1, rounds=1)
    rounds = tuple(float(t) for t in range(len(next(iter(means.values())))))
    series_set = SeriesSet(
        title="Fig 3: Experiment-1 worker retention per round",
        x_label="round",
        y_label="fraction of cohort active",
        series=tuple(
            Series(label=name, x=rounds, y=tuple(float(v) for v in values))
            for name, values in means.items()
        ),
    )
    emit("fig03_human_exp1_retention", render_table(series_set))

    # Shapes: retention decays over rounds; DyGroups retains at least as
    # many workers as K-Means by the end.
    for values in means.values():
        assert all(a >= b for a, b in zip(values, values[1:]))
    assert means["dygroups"][-1] >= means["kmeans"][-1]
