"""Engine speedup — scalar vs vectorized engine, plus the parallel executor.

Not a paper figure: this bench characterizes the stacked-trial engine
(:mod:`repro.core.vectorized`) and the process-parallel executor
(:mod:`repro.experiments.parallel`) on one Figure-5b grid point
(``DYGROUPS-STAR-LOCAL``, Zipf skills, ``n=512, k=4, α=5``, 32 runs)
plus a full-size alpha sweep, archived as ``BENCH_core_speedup.json``:

* ``scalar`` / ``vectorized`` — the same 32-trial simulation stack
  through :func:`~repro.core.vectorized.simulate_many` with the engine
  forced, on pre-drawn skills, so the rows time the engines and nothing
  else.  The bench asserts the two engines' trajectories are
  bit-identical before reporting any throughput.
* ``parallel_cold`` — the full spec execution through a **fresh**
  :class:`~repro.experiments.parallel.WorkerPool` (fork + warmup
  included), the old per-call-executor semantics that archived the
  0.46× regression row.
* ``parallel_warm`` — the same spec through an **already-warm** pool,
  the ``--pool keep`` production path.  The fork/warmup cost is paid
  once per sweep, not per call.
* ``sweep_serial`` / ``sweep_warm`` — a full (grid point × run) alpha
  sweep, serial vs streamed over the warm pool with shared-memory skill
  matrices.  This is the row the single grid point cannot provide: the
  fig05b point finishes in tens of milliseconds, so spawn cost swamps
  it; the sweep is large enough for compute to dominate.
* the **sharded section** — one DyGroups-Star trial at n = 10⁶
  (``REPRO_BENCH_XL=1`` adds 10⁷) through the sharded engine, reporting
  rounds/sec and peak RSS (``resource.getrusage``) next to the
  monolithic vectorized engine on the same population, plus an
  out-of-core row with the order arrays spilled to a temp-mmap.  A
  reduced-n three-way equality check (sharded ≡ vectorized ≡ scalar)
  gates the section, and the big-n sharded trajectory is asserted
  bit-equal to the vectorized one before any throughput is reported.

Every parallel row is asserted bit-identical to its serial baseline
before any throughput is reported.  ``efficiency`` is speedup divided
by ``min(workers, cpu_count)`` — on a single-core host the pool cannot
exceed 1× and the honest target is parity, not ×workers.

Set ``REPRO_BENCH_SMOKE=1`` for a seconds-scale preset (the CI
perf-smoke job) that keeps every equality assertion but skips the
wall-clock floors, which only mean something at full size.
"""

from __future__ import annotations

import os
import resource
import time

import numpy as np

from repro.core.dygroups import DyGroupsStar
from repro.core.shard import SHARD_MEM_ENV
from repro.core.vectorized import simulate_many
from repro.experiments.parallel import WorkerPool, run_spec_parallel, sweep_outcomes_parallel
from repro.experiments.runner import draw_skills, run_spec
from repro.experiments.spec import ExperimentSpec
from repro.experiments.sweep import sweep_outcomes

from benchmarks._util import emit

#: Seconds-scale preset for the CI perf-smoke job (equality checks only).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"

#: Figure-5b grid point; the smoke preset shrinks every axis.
N, K, ALPHA, RUNS = (60, 3, 3, 8) if SMOKE else (512, 4, 5, 32)

#: Alpha grid for the full-size sweep rows.
SWEEP_ALPHAS = (2, 3) if SMOKE else (3, 5, 7, 9)

#: Worker processes for the parallel rows.
WORKERS = 2 if SMOKE else max(2, min(8, os.cpu_count() or 1))

#: Cores the pool can actually occupy (speedup ÷ this = efficiency).
EFFECTIVE_WORKERS = min(WORKERS, os.cpu_count() or 1)

#: Vectorized-over-scalar trials/s floor asserted outside smoke mode.
#: The scalar baseline itself got ~1.6x faster when the groupers moved
#: to the trusted ``Grouping.from_members`` path, so the ratio floor is
#: lower than the 7x archived against the pre-refactor scalar engine —
#: the vectorized engine's absolute trials/s did not regress.  Sized
#: below the 3.9-4.6x run-to-run band this shared container produces.
SPEEDUP_FLOOR = 3.5

#: Warm-pool sweep efficiency floor (speedup ≥ this × effective cores).
#: Measured against the same faster scalar baseline; per-trial IPC is a
#: larger relative cost than it was pre-refactor.
POOL_EFFICIENCY_FLOOR = 0.7

#: Engine timing repetitions (wall-clock minimum is reported).
REPS = 2 if SMOKE else 5

#: Sharded-section population: one DyGroups-Star trial per size, with
#: ``REPRO_BENCH_XL=1`` adding a 10⁷ row to the full-size preset.
SHARD_N = 20_000 if SMOKE else 1_000_000
SHARD_XL = os.environ.get("REPRO_BENCH_XL", "0") == "1" and not SMOKE
SHARD_K = 50 if SMOKE else 1_000
SHARD_ALPHA = 2
SHARD_COUNT = 4

#: Reduced-n gate: the scalar engine joins the equality check here,
#: where a full scalar simulation is still seconds-scale.
SHARD_EQ_N, SHARD_EQ_K = 6_000, 60

#: Sharded-over-vectorized rounds/s relative floor at n = 10⁶.  The
#: sharded path re-partitions the population every round (cut selection
#: + bucket gather) on top of the same per-shard stable sorts, so it
#: trails the monolithic engine when everything fits in memory — its
#: job is bounding memory, not winning throughput.  Sized below the
#: band this shared single-core container produces.
SHARD_RPS_FLOOR = 0.25

SPEC = ExperimentSpec(
    n=N,
    k=K,
    alpha=ALPHA,
    runs=RUNS,
    seed=7,
    mode="star",
    distribution="zipf",
    algorithms=("dygroups",),
)


def _simulate_stack(stack: np.ndarray, seeds: "list[int]", engine: str):
    return simulate_many(
        DyGroupsStar(), stack, k=K, alpha=ALPHA, mode=SPEC.mode, rate=SPEC.rate,
        seeds=seeds, engine=engine,
    )


def _best_seconds(run, reps: int = REPS) -> float:
    """Minimum wall-clock seconds over ``reps`` executions of ``run()``."""
    seconds = []
    for _ in range(reps):
        started = time.perf_counter()
        run()
        seconds.append(time.perf_counter() - started)
    return min(seconds)


def _peak_rss_kb() -> int:
    """Peak RSS of this process in KiB (Linux ``ru_maxrss`` units).

    The kernel counter is a monotone high-water mark, so the sharded
    rows run *before* the monolithic ones at each population size —
    otherwise the larger footprint would mask the smaller.
    """
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _simulate_population(stack: np.ndarray, k: int, engine: str, shards=None):
    return simulate_many(
        DyGroupsStar(), stack, k=k, alpha=SHARD_ALPHA, mode=SPEC.mode,
        rate=SPEC.rate, seeds=[SPEC.seed], engine=engine, shards=shards,
    )


def _assert_outcomes_equal(serial, parallel) -> None:
    for name in SPEC.algorithms:
        base, algo = serial.outcomes[name], parallel.outcomes[name]
        assert algo.mean_total_gain == base.mean_total_gain
        assert algo.std_total_gain == base.std_total_gain
        assert algo.mean_round_gains == base.mean_round_gains


def bench_core_speedup(benchmark):
    stack = np.stack([draw_skills(SPEC, i) for i in range(RUNS)])
    seeds = [SPEC.seed + i for i in range(RUNS)]

    scalar_batch = _simulate_stack(stack, seeds, "scalar")
    vectorized_batch = _simulate_stack(stack, seeds, "vectorized")
    # Throughput is meaningless unless the engines are observationally
    # identical: same seeds, same float ops, bit-equal trajectories.
    assert np.array_equal(scalar_batch.final_skills, vectorized_batch.final_skills)
    assert np.array_equal(scalar_batch.round_gains, vectorized_batch.round_gains)

    scalar_s = benchmark.pedantic(
        _best_seconds, args=(lambda: _simulate_stack(stack, seeds, "scalar"),),
        iterations=1, rounds=1,
    )
    vectorized_s = _best_seconds(lambda: _simulate_stack(stack, seeds, "vectorized"))

    started = time.perf_counter()
    serial_outcome = run_spec(SPEC)
    serial_s = time.perf_counter() - started

    # Cold: fork + warmup + chunked execution, all on the clock — the
    # per-call policy this repo used when it archived the 0.46× row.
    started = time.perf_counter()
    with WorkerPool(WORKERS) as cold_pool:
        cold_outcome = run_spec_parallel(SPEC, workers=WORKERS, pool=cold_pool)
    cold_s = time.perf_counter() - started
    _assert_outcomes_equal(serial_outcome, cold_outcome)

    # Warm: the pool is forked and exercised before the clock starts, so
    # the row times only the streamed chunk execution.
    with WorkerPool(WORKERS) as pool:
        warm_outcome = run_spec_parallel(SPEC, workers=WORKERS, pool=pool)
        _assert_outcomes_equal(serial_outcome, warm_outcome)
        started = time.perf_counter()
        warm_outcome = run_spec_parallel(SPEC, workers=WORKERS, pool=pool)
        warm_s = time.perf_counter() - started
        _assert_outcomes_equal(serial_outcome, warm_outcome)

        # Full-size sweep: the grid × runs cross product streamed over
        # the same warm pool, shared-memory skill matrices and all.
        sweep_spec = SPEC.with_(workers=1)
        started = time.perf_counter()
        serial_sweep = sweep_outcomes(sweep_spec, "alpha", SWEEP_ALPHAS)
        sweep_serial_s = time.perf_counter() - started
        started = time.perf_counter()
        warm_sweep = sweep_outcomes_parallel(
            SPEC, "alpha", SWEEP_ALPHAS, workers=WORKERS, pool=pool
        )
        sweep_warm_s = time.perf_counter() - started
        for serial_point, warm_point in zip(serial_sweep, warm_sweep):
            _assert_outcomes_equal(serial_point, warm_point)

    # ------------------------------------------------------------------
    # Sharded section: million-participant rounds with bounded memory.
    # ------------------------------------------------------------------
    # Reduced-n gate first: all three engines on one population, where a
    # full scalar simulation is still cheap enough to join the check.
    eq_spec = SPEC.with_(
        n=SHARD_EQ_N, k=SHARD_EQ_K, alpha=SHARD_ALPHA, runs=1,
        distribution="lognormal",
    )
    eq_stack = np.stack([draw_skills(eq_spec, 0)])
    eq_scalar = _simulate_population(eq_stack, SHARD_EQ_K, "scalar")
    eq_vectorized = _simulate_population(eq_stack, SHARD_EQ_K, "vectorized")
    eq_sharded = _simulate_population(
        eq_stack, SHARD_EQ_K, "sharded", shards=SHARD_COUNT
    )
    assert eq_sharded.engine == "sharded"
    for eq_batch in (eq_vectorized, eq_sharded):
        assert np.array_equal(eq_scalar.final_skills, eq_batch.final_skills)
        assert np.array_equal(eq_scalar.round_gains, eq_batch.round_gains)

    sharded_rows = {}
    for big_n in (SHARD_N, 10 * SHARD_N) if SHARD_XL else (SHARD_N,):
        big_spec = SPEC.with_(
            n=big_n, k=SHARD_K, alpha=SHARD_ALPHA, runs=1,
            distribution="lognormal",
        )
        big_stack = np.stack([draw_skills(big_spec, 0)])
        big_reps = 1 if big_n >= 10_000_000 else 2

        def _run_sharded():
            return _simulate_population(
                big_stack, SHARD_K, "sharded", shards=SHARD_COUNT
            )

        sharded_batch = _run_sharded()
        sharded_s = _best_seconds(_run_sharded, reps=big_reps)
        sharded_rss = _peak_rss_kb()

        # Out-of-core row: a 1 MB budget forces the order arrays into a
        # temp-mmap; the trajectory must not change by a bit.
        saved_mem = os.environ.get(SHARD_MEM_ENV)
        os.environ[SHARD_MEM_ENV] = "1"
        try:
            spill_batch = _run_sharded()
            spill_s = _best_seconds(_run_sharded, reps=1)
        finally:
            if saved_mem is None:
                del os.environ[SHARD_MEM_ENV]
            else:
                os.environ[SHARD_MEM_ENV] = saved_mem
        spill_rss = _peak_rss_kb()
        assert np.array_equal(sharded_batch.final_skills, spill_batch.final_skills)
        assert np.array_equal(sharded_batch.round_gains, spill_batch.round_gains)

        big_vectorized = _simulate_population(big_stack, SHARD_K, "vectorized")
        assert np.array_equal(
            sharded_batch.final_skills, big_vectorized.final_skills
        )
        assert np.array_equal(sharded_batch.round_gains, big_vectorized.round_gains)
        vectorized_big_s = _best_seconds(
            lambda: _simulate_population(big_stack, SHARD_K, "vectorized"),
            reps=big_reps,
        )
        vectorized_rss = _peak_rss_kb()

        for tag, seconds, rss in (
            ("sharded", sharded_s, sharded_rss),
            ("sharded_spill", spill_s, spill_rss),
            ("vectorized", vectorized_big_s, vectorized_rss),
        ):
            sharded_rows[f"{tag}_n{big_n}"] = {
                "n": big_n,
                "k": SHARD_K,
                "alpha": SHARD_ALPHA,
                "shards": SHARD_COUNT,
                "seconds": seconds,
                "rounds_per_second": SHARD_ALPHA / seconds,
                "peak_rss_kb": rss,
            }

    sweep_trials = len(SWEEP_ALPHAS) * RUNS
    rows = {
        "scalar": {"seconds": scalar_s, "workers": 1, "basis": "engine", "trials": RUNS},
        "vectorized": {
            "seconds": vectorized_s, "workers": 1, "basis": "engine", "trials": RUNS,
        },
        "parallel_cold": {
            "seconds": cold_s, "workers": WORKERS, "basis": "run_spec", "trials": RUNS,
        },
        "parallel_warm": {
            "seconds": warm_s, "workers": WORKERS, "basis": "run_spec", "trials": RUNS,
        },
        "sweep_serial": {
            "seconds": sweep_serial_s, "workers": 1, "basis": "sweep",
            "trials": sweep_trials,
        },
        "sweep_warm": {
            "seconds": sweep_warm_s, "workers": WORKERS, "basis": "sweep",
            "trials": sweep_trials,
        },
    }
    for stats in rows.values():
        stats["trials_per_second"] = stats["trials"] / stats["seconds"]
    rows["scalar"]["speedup"] = 1.0
    rows["vectorized"]["speedup"] = (
        rows["vectorized"]["trials_per_second"] / rows["scalar"]["trials_per_second"]
    )
    rows["parallel_cold"]["speedup"] = serial_s / cold_s
    rows["parallel_warm"]["speedup"] = serial_s / warm_s
    rows["sweep_serial"]["speedup"] = 1.0
    rows["sweep_warm"]["speedup"] = sweep_serial_s / sweep_warm_s
    for name in ("parallel_cold", "parallel_warm", "sweep_warm"):
        rows[name]["efficiency"] = rows[name]["speedup"] / EFFECTIVE_WORKERS

    lines = [
        f"engine speedup: dygroups-star, n={N} k={K} alpha={ALPHA} runs={RUNS} "
        f"(zipf, seed={SPEC.seed}); sweep alphas={list(SWEEP_ALPHAS)}",
        f"workers={WORKERS}, effective cores={EFFECTIVE_WORKERS} "
        f"(host cpu_count={os.cpu_count()})",
        "",
        f"{'row':<14} {'basis':>8} {'workers':>7} {'trials':>7} {'seconds':>10} "
        f"{'trials/s':>10} {'speedup':>8}",
    ]
    for name, stats in rows.items():
        lines.append(
            f"{name:<14} {stats['basis']:>8} {stats['workers']:>7d} "
            f"{stats['trials']:>7d} {stats['seconds']:>10.4f} "
            f"{stats['trials_per_second']:>10.1f} {stats['speedup']:>7.2f}x"
        )
    lines += [
        "",
        f"sharded section: dygroups-star, k={SHARD_K} alpha={SHARD_ALPHA} "
        f"shards={SHARD_COUNT} (lognormal, 1 trial); "
        f"equality gate at n={SHARD_EQ_N} k={SHARD_EQ_K} incl. scalar",
        f"{'row':<24} {'n':>10} {'seconds':>10} {'rounds/s':>9} {'peak RSS':>12}",
    ]
    for name, stats in sharded_rows.items():
        lines.append(
            f"{name:<24} {stats['n']:>10d} {stats['seconds']:>10.3f} "
            f"{stats['rounds_per_second']:>9.2f} "
            f"{stats['peak_rss_kb'] / 1024:>9.1f} MiB"
        )
    lines += [
        "",
        "engine rows time simulate_many on pre-drawn skills; parallel rows time "
        "the full spec (draws included) against a serial baseline.",
        f"warm pool vs cold fork-per-call: {cold_s / warm_s:.2f}x on one spec; "
        f"sweep over warm pool: {rows['sweep_warm']['speedup']:.2f}x serial "
        f"({rows['sweep_warm']['efficiency']:.2f} efficiency per effective core).",
        "gain fields bit-identical across scalar/vectorized/cold/warm/sweep: yes",
        "sharded trajectories bit-identical to vectorized (and to scalar at "
        "the reduced-n gate), spill row included: yes",
    ]
    emit(
        "core_speedup",
        "\n".join(lines),
        config={
            "smoke": SMOKE,
            "n": N,
            "k": K,
            "alpha": ALPHA,
            "bench_runs": RUNS,
            "sweep_alphas": list(SWEEP_ALPHAS),
            "mode": SPEC.mode,
            "distribution": SPEC.distribution,
            "algorithms": list(SPEC.algorithms),
            "seed": SPEC.seed,
            "workers": WORKERS,
            "effective_workers": EFFECTIVE_WORKERS,
            "engines": rows,
            # Before/after of the warm worker pool on the same spec:
            # "before" forks a pool per call (the archived 0.46× row),
            # "after" reuses one warm pool across calls.
            "warm_pool": {
                "before_seconds": cold_s,
                "after_seconds": warm_s,
                "serial_seconds": serial_s,
                "cold_speedup": rows["parallel_cold"]["speedup"],
                "warm_speedup": rows["parallel_warm"]["speedup"],
                "sweep_serial_seconds": sweep_serial_s,
                "sweep_warm_seconds": sweep_warm_s,
                "sweep_speedup": rows["sweep_warm"]["speedup"],
                "sweep_efficiency": rows["sweep_warm"]["efficiency"],
            },
            # Sharded engine at population scale: value-range shards,
            # per-round rebalancing, optional temp-mmap spill.  Rows are
            # keyed "<engine>_n<population>"; the spill row ran with a
            # 1 MB REPRO_SHARD_MEM_MB budget.
            "sharded": {
                "eq_n": SHARD_EQ_N,
                "eq_k": SHARD_EQ_K,
                "k": SHARD_K,
                "alpha": SHARD_ALPHA,
                "shard_count": SHARD_COUNT,
                "distribution": "lognormal",
                "rps_floor": SHARD_RPS_FLOOR,
                "rows": sharded_rows,
            },
        },
    )

    if not SMOKE:
        speedup = rows["vectorized"]["speedup"]
        assert speedup >= SPEEDUP_FLOOR, (
            f"vectorized engine {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor"
        )
        assert warm_s <= cold_s, (
            f"warm pool ({warm_s:.3f}s) should not lose to a cold fork ({cold_s:.3f}s)"
        )
        efficiency = rows["sweep_warm"]["efficiency"]
        assert efficiency >= POOL_EFFICIENCY_FLOOR, (
            f"warm-pool sweep efficiency {efficiency:.2f} below the "
            f"{POOL_EFFICIENCY_FLOOR} floor ({EFFECTIVE_WORKERS} effective cores)"
        )
        sharded_rps = sharded_rows[f"sharded_n{SHARD_N}"]["rounds_per_second"]
        vectorized_rps = sharded_rows[f"vectorized_n{SHARD_N}"]["rounds_per_second"]
        ratio = sharded_rps / vectorized_rps
        assert ratio >= SHARD_RPS_FLOOR, (
            f"sharded engine at n={SHARD_N} runs {ratio:.2f}x the vectorized "
            f"rounds/s, below the {SHARD_RPS_FLOOR}x floor"
        )
