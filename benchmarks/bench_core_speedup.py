"""Engine speedup — scalar vs vectorized engine, plus the parallel executor.

Not a paper figure: this bench characterizes the stacked-trial engine
(:mod:`repro.core.vectorized`) and the process-parallel executor
(:mod:`repro.experiments.parallel`) on one Figure-5b grid point
(``DYGROUPS-STAR-LOCAL``, Zipf skills, ``n=512, k=4, α=5``, 32 runs).

Three rows, archived as ``BENCH_core_speedup.json``:

* ``scalar`` / ``vectorized`` — the same 32-trial simulation stack
  through :func:`~repro.core.vectorized.simulate_many` with the engine
  forced, on pre-drawn skills, so the rows time the engines and nothing
  else.  The bench asserts the two engines' trajectories are
  bit-identical before reporting any throughput.
* ``parallel`` — the full spec execution (skill draws included) through
  ``run_spec(workers=N)``, against a serial baseline it must match
  exactly.  On a single-core host this row documents chunking overhead
  rather than a speedup; on multi-core hosts it scales with the cores.

Set ``REPRO_BENCH_SMOKE=1`` for a seconds-scale preset (the CI
perf-smoke job) that keeps every equality assertion but skips the
vectorized-speedup floor, which only means something at full size.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.dygroups import DyGroupsStar
from repro.core.vectorized import simulate_many
from repro.experiments.runner import draw_skills, run_spec
from repro.experiments.spec import ExperimentSpec

from benchmarks._util import emit

#: Seconds-scale preset for the CI perf-smoke job (equality checks only).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"

#: Figure-5b grid point; the smoke preset shrinks every axis.
N, K, ALPHA, RUNS = (60, 3, 3, 8) if SMOKE else (512, 4, 5, 32)

#: Worker processes for the parallel row.
WORKERS = 2 if SMOKE else max(2, min(8, os.cpu_count() or 1))

#: Vectorized-over-scalar trials/s floor asserted outside smoke mode.
SPEEDUP_FLOOR = 5.0

#: Engine timing repetitions (wall-clock minimum is reported).
REPS = 2 if SMOKE else 5

SPEC = ExperimentSpec(
    n=N,
    k=K,
    alpha=ALPHA,
    runs=RUNS,
    seed=7,
    mode="star",
    distribution="zipf",
    algorithms=("dygroups",),
)


def _simulate_stack(stack: np.ndarray, seeds: "list[int]", engine: str):
    return simulate_many(
        DyGroupsStar(), stack, k=K, alpha=ALPHA, mode=SPEC.mode, rate=SPEC.rate,
        seeds=seeds, engine=engine,
    )


def _best_seconds(run, reps: int = REPS) -> float:
    """Minimum wall-clock seconds over ``reps`` executions of ``run()``."""
    seconds = []
    for _ in range(reps):
        started = time.perf_counter()
        run()
        seconds.append(time.perf_counter() - started)
    return min(seconds)


def bench_core_speedup(benchmark):
    stack = np.stack([draw_skills(SPEC, i) for i in range(RUNS)])
    seeds = [SPEC.seed + i for i in range(RUNS)]

    scalar_batch = _simulate_stack(stack, seeds, "scalar")
    vectorized_batch = _simulate_stack(stack, seeds, "vectorized")
    # Throughput is meaningless unless the engines are observationally
    # identical: same seeds, same float ops, bit-equal trajectories.
    assert np.array_equal(scalar_batch.final_skills, vectorized_batch.final_skills)
    assert np.array_equal(scalar_batch.round_gains, vectorized_batch.round_gains)

    scalar_s = benchmark.pedantic(
        _best_seconds, args=(lambda: _simulate_stack(stack, seeds, "scalar"),),
        iterations=1, rounds=1,
    )
    vectorized_s = _best_seconds(lambda: _simulate_stack(stack, seeds, "vectorized"))

    serial_outcome, serial_s = None, None

    def _serial_spec():
        nonlocal serial_outcome
        serial_outcome = run_spec(SPEC)

    def _parallel_spec():
        return run_spec(SPEC, workers=WORKERS)

    serial_s = _best_seconds(_serial_spec, reps=1)
    started = time.perf_counter()
    parallel_outcome = _parallel_spec()
    parallel_s = time.perf_counter() - started
    for name in SPEC.algorithms:
        base, algo = serial_outcome.outcomes[name], parallel_outcome.outcomes[name]
        assert algo.mean_total_gain == base.mean_total_gain
        assert algo.std_total_gain == base.std_total_gain
        assert algo.mean_round_gains == base.mean_round_gains

    rows = {
        "scalar": {"seconds": scalar_s, "workers": 1, "basis": "engine"},
        "vectorized": {"seconds": vectorized_s, "workers": 1, "basis": "engine"},
        "parallel": {"seconds": parallel_s, "workers": WORKERS, "basis": "run_spec"},
    }
    for stats in rows.values():
        stats["trials_per_second"] = RUNS / stats["seconds"]
        stats["rounds_per_second"] = RUNS * ALPHA / stats["seconds"]
    speedup = rows["vectorized"]["trials_per_second"] / rows["scalar"]["trials_per_second"]
    rows["scalar"]["speedup"] = 1.0
    rows["vectorized"]["speedup"] = speedup
    rows["parallel"]["speedup"] = serial_s / parallel_s

    lines = [
        f"engine speedup: dygroups-star, n={N} k={K} alpha={ALPHA} runs={RUNS} "
        f"(zipf, seed={SPEC.seed})",
        "",
        f"{'row':<12} {'basis':>8} {'workers':>7} {'seconds':>10} {'trials/s':>10} "
        f"{'rounds/s':>10} {'speedup':>8}",
    ]
    for name, stats in rows.items():
        lines.append(
            f"{name:<12} {stats['basis']:>8} {stats['workers']:>7d} "
            f"{stats['seconds']:>10.4f} {stats['trials_per_second']:>10.1f} "
            f"{stats['rounds_per_second']:>10.1f} {stats['speedup']:>7.2f}x"
        )
    lines.append("")
    lines.append(
        "engine rows time simulate_many on pre-drawn skills; the parallel row "
        "times the full spec (draws included) against a serial baseline."
    )
    lines.append("gain fields bit-identical across scalar/vectorized/parallel: yes")
    emit(
        "core_speedup",
        "\n".join(lines),
        config={
            "smoke": SMOKE,
            "n": N,
            "k": K,
            "alpha": ALPHA,
            "bench_runs": RUNS,
            "mode": SPEC.mode,
            "distribution": SPEC.distribution,
            "algorithms": list(SPEC.algorithms),
            "seed": SPEC.seed,
            "engines": rows,
        },
    )

    if not SMOKE:
        assert speedup >= SPEEDUP_FLOOR, (
            f"vectorized engine {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor"
        )
