"""Figure 4 — Experiment-2: learning gain and retention, four policies.

Paper: N=128 split into four matched populations following DyGroups,
K-Means, LPA and Percentile-Partitions for α=2 rounds.  Figure 4(a) plots
the mean assessment per round, 4(b) the worker retention.
"""

from __future__ import annotations

import numpy as np

from repro.amt import EXPERIMENT_2_POLICIES, run_experiment_2
from repro.experiments.render import render_table
from repro.metrics.series import Series, SeriesSet

from benchmarks._util import FULL, emit

SEEDS = range(20 if FULL else 8)


def _mean_traces() -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
    scores: dict[str, list[list[float]]] = {name: [] for name in EXPERIMENT_2_POLICIES}
    retention: dict[str, list[list[float]]] = {name: [] for name in EXPERIMENT_2_POLICIES}
    for seed in SEEDS:
        result = run_experiment_2(seed=seed)
        for name, trace in result.traces.items():
            scores[name].append(trace.mean_scores)
            retention[name].append(trace.retention)
    return (
        {name: np.mean(np.array(rows), axis=0) for name, rows in scores.items()},
        {name: np.mean(np.array(rows), axis=0) for name, rows in retention.items()},
    )


def _to_series_set(title: str, y_label: str, means: dict[str, np.ndarray]) -> SeriesSet:
    rounds = tuple(float(t) for t in range(len(next(iter(means.values())))))
    return SeriesSet(
        title=title,
        x_label="round",
        y_label=y_label,
        series=tuple(
            Series(label=name, x=rounds, y=tuple(float(v) for v in values))
            for name, values in means.items()
        ),
    )


def bench_fig04_human_exp2(benchmark):
    score_means, retention_means = benchmark.pedantic(_mean_traces, iterations=1, rounds=1)
    gain_set = _to_series_set(
        "Fig 4(a): Experiment-2 mean assessment per round", "mean assessment", score_means
    )
    retention_set = _to_series_set(
        "Fig 4(b): Experiment-2 worker retention per round", "fraction active", retention_means
    )
    emit("fig04_human_exp2", render_table(gain_set) + "\n\n" + render_table(retention_set))

    # Shapes: every population learns; DyGroups lands in the top tier of
    # final assessment (it statistically ties our LPA proxy — both are
    # round-optimal groupers — and clearly beats K-Means; EXPERIMENTS.md).
    for values in score_means.values():
        assert values[-1] > values[0]
    finals = {name: values[-1] for name, values in score_means.items()}
    assert finals["dygroups"] > finals["kmeans"]
    assert finals["dygroups"] >= 0.97 * max(finals.values())
