"""Benchmark harness package."""
