"""Extended sensitivity analysis: DyGroups' advantage across (k, r) jointly.

The paper varies one parameter at a time (Figures 5-9).  This bench
crosses the group count and the learning rate to map where dynamic smart
grouping pays off most: the advantage over random grouping is largest
with many groups (scarce experts must be placed well) and moderate rates
(fast learning saturates the ceiling quickly, slow learning shrinks all
differences).
"""

from __future__ import annotations

from repro.experiments.grid import grid_table, run_grid
from repro.experiments.spec import ExperimentSpec

from benchmarks._util import BENCH_RUNS, FULL, emit

N = 10_000 if FULL else 2_000


def bench_sensitivity_grid(benchmark):
    spec = ExperimentSpec(
        n=N,
        k=5,
        alpha=5,
        runs=BENCH_RUNS,
        algorithms=("dygroups", "random"),
    )
    cells = benchmark.pedantic(
        run_grid,
        args=(spec, {"k": (5, 50, 200), "rate": (0.2, 0.5, 0.8)}),
        iterations=1,
        rounds=1,
    )
    table = grid_table(cells)
    emit(
        "sensitivity_grid",
        f"Sensitivity: DyGroups/Random gain ratio across (k, r), n={N}, alpha=5\n" + table,
    )

    # DyGroups never loses to random anywhere on the grid.
    for cell in cells:
        assert cell.advantage("dygroups", "random") >= 1.0 - 1e-9
    # The advantage grows with the number of groups at fixed r=0.5.
    mid_rate = {c.parameters["k"]: c.advantage("dygroups", "random")
                for c in cells if c.parameters["rate"] == 0.5}  # noqa: DYG302 — exact grid-value match
    assert mid_rate[200] >= mid_rate[5] - 1e-9
