"""Figure 9 — aggregate learning gain, varying r (log-normal skills).

Paper: (a) clique mode, (b) star mode, log-normal initial skills.
"""

from __future__ import annotations

from repro.experiments.figures import fig09a, fig09b
from repro.experiments.render import render_table

from benchmarks._util import BENCH_RUNS, FULL, emit


def _check_shape(series_set) -> None:
    dygroups = series_set.get("dygroups").y
    random_y = series_set.get("random").y
    assert all(d >= r - 1e-9 for d, r in zip(dygroups, random_y))
    assert dygroups[0] < dygroups[-1]


def bench_fig09a_vary_r_clique_lognormal(benchmark):
    series_set = benchmark.pedantic(
        fig09a, kwargs={"full": FULL, "runs": BENCH_RUNS}, iterations=1, rounds=1
    )
    emit("fig09a_vary_r_clique_lognormal", render_table(series_set))
    _check_shape(series_set)


def bench_fig09b_vary_r_star_lognormal(benchmark):
    series_set = benchmark.pedantic(
        fig09b, kwargs={"full": FULL, "runs": BENCH_RUNS}, iterations=1, rounds=1
    )
    emit("fig09b_vary_r_star_lognormal", render_table(series_set))
    _check_shape(series_set)
