"""Ablation A7 — affinity-aware bi-criteria grouping (Section VII).

The paper proposes "forming dynamic groups where both affinity and skill
evolves across rounds" as a bi-criteria problem.  This bench sweeps the
trade-off weight λ: λ=0 reproduces DyGroups; λ→1 freezes cohesive groups
(maximum affinity, the one-shot world); intermediate λ trades learning
gain for bonded groups.
"""

from __future__ import annotations

import numpy as np

from repro.core.simulation import simulate
from repro.data.distributions import lognormal_skills
from repro.extensions.affinity import (
    AffinityAwarePolicy,
    AffinityState,
    mean_within_group_affinity,
)

from benchmarks._util import BENCH_RUNS, FULL, emit

N = 200 if FULL else 100
K = 10
ALPHA = 6
WEIGHTS = (0.0, 0.3, 0.6, 0.9)


def _run() -> dict[float, dict[str, float]]:
    table: dict[float, dict[str, float]] = {}
    for weight in WEIGHTS:
        gains, affinities, regroupings = [], [], []
        for run in range(BENCH_RUNS):
            skills = lognormal_skills(N, seed=run)
            state = AffinityState(N, initial=0.1)
            policy = AffinityAwarePolicy(
                state, mode="star", rate=0.5, weight=weight, sweeps=2
            )
            result = simulate(
                policy, skills, k=K, alpha=ALPHA, mode="star", rate=0.5, seed=run
            )
            gains.append(result.total_gain)
            affinities.append(
                mean_within_group_affinity(result.groupings[-1], state.matrix)
            )
            regroupings.append(
                sum(a != b for a, b in zip(result.groupings, result.groupings[1:]))
            )
        table[weight] = {
            "gain": float(np.mean(gains)),
            "affinity": float(np.mean(affinities)),
            "regroupings": float(np.mean(regroupings)),
        }
    return table


def bench_ablation_affinity(benchmark):
    table = benchmark.pedantic(_run, iterations=1, rounds=1)
    lines = [
        f"Ablation A7: affinity/gain bi-criteria sweep (star, n={N}, k={K}, alpha={ALPHA})",
        f"{'lambda':>8}{'gain':>14}{'final affinity':>16}{'regroupings':>13}",
    ]
    for weight in WEIGHTS:
        stats = table[weight]
        lines.append(
            f"{weight:>8.1f}{stats['gain']:>14.6g}{stats['affinity']:>16.3f}"
            f"{stats['regroupings']:>13.1f}"
        )
    emit("ablation_affinity", "\n".join(lines))

    # The trade-off: gain weakly decreases in lambda, group stability
    # (fewer regroupings) weakly increases at the cohesive extreme.
    gains = [table[w]["gain"] for w in WEIGHTS]
    assert gains[0] >= gains[-1]
    assert table[WEIGHTS[-1]]["regroupings"] <= table[WEIGHTS[0]]["regroupings"]
    assert table[WEIGHTS[-1]]["affinity"] >= table[WEIGHTS[0]]["affinity"] - 0.05
