"""Ablation A9 — heterogeneous learning rates (Section VII).

Participants differ in "intrinsic learning ability": each carries its own
rate ``r_i``.  This bench compares the rate-aware greedy (fast learners
matched to big gaps) against rate-blind DyGroups on populations with
increasing rate dispersion, at two horizons:

* **one round**: knowing the rates pays directly — up to ~20% more gain
  at high dispersion (the weighted-matching effect);
* **five rounds**: the edge evaporates and can invert by a percent —
  the rate-aware matching is *myopic*, echoing the fairness ablation:
  rate-blind DyGroups' variance tie-break grows better future teachers.

At zero dispersion the two coincide exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.dygroups import DyGroupsStar
from repro.core.grouping import Grouping
from repro.data.distributions import lognormal_skills
from repro.extensions.heterogeneous import (
    simulate_heterogeneous,
    update_star_heterogeneous,
)

from benchmarks._util import BENCH_RUNS, FULL, emit

N = 5_000 if FULL else 1_000
K = 5
ALPHA = 5
SPREADS = (0.0, 0.1, 0.2, 0.3)
_BASE_RATE = 0.5


def _draw_rates(spread: float, rng: np.random.Generator) -> np.ndarray:
    return np.clip(rng.normal(_BASE_RATE, spread, size=N), 0.05, 0.95)


def _rate_blind_total(skills: np.ndarray, rates: np.ndarray, alpha: int) -> float:
    """DyGroups-Star groupings, but the true heterogeneous dynamics."""
    policy = DyGroupsStar()
    current = skills
    total = 0.0
    rng = np.random.default_rng(0)
    for _ in range(alpha):
        grouping: Grouping = policy.propose(current, K, rng)
        updated = update_star_heterogeneous(current, rates, grouping)
        total += float(np.sum(updated - current))
        current = updated
    return total


def _run() -> dict[int, list[tuple[float, float, float]]]:
    table: dict[int, list[tuple[float, float, float]]] = {}
    for alpha in (1, ALPHA):
        rows = []
        for spread in SPREADS:
            aware, blind = [], []
            for run in range(BENCH_RUNS):
                rng = np.random.default_rng(run)
                skills = lognormal_skills(N, rng=rng)
                rates = _draw_rates(spread, rng)
                aware.append(
                    simulate_heterogeneous(skills, rates, k=K, alpha=alpha).total_gain
                )
                blind.append(_rate_blind_total(skills, rates, alpha))
            rows.append((spread, float(np.mean(aware)), float(np.mean(blind))))
        table[alpha] = rows
    return table


def bench_ablation_heterogeneous(benchmark):
    table = benchmark.pedantic(_run, iterations=1, rounds=1)
    lines = [
        f"Ablation A9: heterogeneous learning rates (star, n={N}, k={K})",
        f"{'alpha':>6}{'rate spread':>12}{'rate-aware':>16}{'rate-blind':>16}{'edge':>8}",
    ]
    for alpha, rows in table.items():
        for spread, aware, blind in rows:
            lines.append(
                f"{alpha:>6}{spread:>12.2f}{aware:>16.6g}{blind:>16.6g}{aware / blind:>8.4f}"
            )
    emit("ablation_heterogeneous", "\n".join(lines))

    # Zero dispersion: both are round-optimal -> equal totals at any alpha.
    for rows in table.values():
        spread0, aware0, blind0 = rows[0]
        assert abs(aware0 - blind0) <= 1e-6 * abs(blind0)
    # One round: knowing the rates pays, increasingly with dispersion.
    single = table[1]
    edges = [aware / blind for _, aware, blind in single]
    assert all(e >= 1.0 - 1e-9 for e in edges)
    assert edges[-1] > 1.05
    assert edges[-1] >= edges[1] - 1e-9
    # Long horizon: the myopic matching loses its edge (stays within a
    # few percent either way).
    for _, aware, blind in table[ALPHA]:
        assert 0.97 <= aware / blind <= 1.05