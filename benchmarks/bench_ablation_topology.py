"""Ablation A8 — the price of a social-graph constraint.

TDG assumes a fully connected network (Section VI).  This ablation runs
the graph-constrained variant (groups must induce connected subgraphs) on
small-world and scale-free topologies of varying density and measures

* the learning gain relative to unconstrained DyGroups (the complete
  graph is the paper's setting and the upper bound), and
* the number of topology violations the greedy grouper was forced into.
"""

from __future__ import annotations

import numpy as np

from repro.core.dygroups import dygroups
from repro.core.simulation import simulate
from repro.data.distributions import lognormal_skills
from repro.network.constrained import ConnectedDyGroups, grouping_violations
from repro.network.topology import scale_free, small_world

from benchmarks._util import BENCH_RUNS, FULL, emit

N = 600 if FULL else 240
K = 6
ALPHA = 4

CONFIGS = (
    ("small-world k=4", lambda seed: small_world(N, k=4, seed=seed)),
    ("small-world k=10", lambda seed: small_world(N, k=10, seed=seed)),
    ("small-world k=30", lambda seed: small_world(N, k=30, seed=seed)),
    ("scale-free m=2", lambda seed: scale_free(N, m=2, seed=seed)),
    ("scale-free m=8", lambda seed: scale_free(N, m=8, seed=seed)),
)


def _run() -> list[tuple[str, float, float]]:
    rows = []
    for label, build in CONFIGS:
        ratios, violations = [], []
        for run in range(BENCH_RUNS):
            skills = lognormal_skills(N, seed=run)
            unconstrained = dygroups(skills, k=K, alpha=ALPHA, rate=0.5).total_gain
            graph = build(run)
            policy = ConnectedDyGroups(graph)
            result = simulate(
                policy, skills, k=K, alpha=ALPHA, mode="star", rate=0.5, seed=run
            )
            ratios.append(result.total_gain / unconstrained)
            violations.append(
                float(
                    np.mean(
                        [grouping_violations(g, graph) for g in result.groupings]
                    )
                )
            )
        rows.append((label, float(np.mean(ratios)), float(np.mean(violations))))
    return rows


def bench_ablation_topology(benchmark):
    rows = benchmark.pedantic(_run, iterations=1, rounds=1)
    lines = [
        f"Ablation A8: graph-constrained DyGroups (star, n={N}, k={K}, alpha={ALPHA})",
        f"{'topology':<20}{'gain vs unconstrained':>23}{'violations/round':>18}",
    ]
    for label, ratio, violation in rows:
        lines.append(f"{label:<20}{ratio:>23.4f}{violation:>18.2f}")
    emit("ablation_topology", "\n".join(lines))

    by_label = {label: (ratio, violation) for label, ratio, violation in rows}
    # The constraint costs gain; the cost shrinks as the graph densifies.
    for label, (ratio, _) in by_label.items():
        assert ratio <= 1.0 + 1e-9, label
    assert by_label["small-world k=30"][0] >= by_label["small-world k=4"][0] - 0.02
    # Denser graphs force fewer violations.
    assert by_label["small-world k=30"][1] <= by_label["small-world k=4"][1] + 1e-9
