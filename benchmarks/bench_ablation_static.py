"""Ablation A3 — dynamic vs static (one-shot) grouping.

The paper's central hypothesis: allowing group composition to change over
time improves aggregate learning over one-shot groups (the setting of the
prior work it generalizes).  This ablation freezes each policy's round-1
grouping for all α rounds and measures what dynamism buys.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.registry import make_policy
from repro.core.simulation import simulate
from repro.data.distributions import lognormal_skills
from repro.experiments.render import render_table
from repro.metrics.series import Series, SeriesSet

from benchmarks._util import BENCH_RUNS, FULL, emit

N = 10_000 if FULL else 1_000
ALPHAS = (1, 2, 4, 8)
PAIRS = (("dygroups", "static-dygroups"), ("random", "static-random"))


def _run(mode: str) -> SeriesSet:
    labels = [name for pair in PAIRS for name in pair]
    totals: dict[str, list[float]] = {label: [] for label in labels}
    for alpha in ALPHAS:
        per_run: dict[str, list[float]] = {label: [] for label in labels}
        for run in range(BENCH_RUNS):
            skills = lognormal_skills(N, seed=run)
            for label in labels:
                policy = make_policy(label, mode=mode, rate=0.5)
                result = simulate(
                    policy,
                    skills,
                    k=5,
                    alpha=alpha,
                    mode=mode,
                    rate=0.5,
                    seed=run,
                    record_groupings=False,
                )
                per_run[label].append(result.total_gain)
        for label in labels:
            totals[label].append(float(np.mean(per_run[label])))
    return SeriesSet(
        title=f"Ablation A3: dynamic vs static grouping ({mode}, n={N})",
        x_label="alpha",
        y_label="aggregate learning gain",
        series=tuple(
            Series(label=label, x=tuple(float(a) for a in ALPHAS), y=tuple(values))
            for label, values in totals.items()
        ),
    )


def _check(series_set) -> None:
    for dynamic_name, static_name in PAIRS:
        dynamic = series_set.get(dynamic_name).y
        static = series_set.get(static_name).y
        # Identical at alpha=1 (a single round cannot be dynamic) and
        # strictly better at the largest alpha.
        assert dynamic[0] == pytest.approx(static[0], rel=1e-9)
        assert dynamic[-1] > static[-1]


def bench_ablation_static_star(benchmark):
    series_set = benchmark.pedantic(_run, args=("star",), iterations=1, rounds=1)
    emit("ablation_static_star", render_table(series_set))
    _check(series_set)


def bench_ablation_static_clique(benchmark):
    series_set = benchmark.pedantic(_run, args=("clique",), iterations=1, rounds=1)
    emit("ablation_static_clique", render_table(series_set))
    _check(series_set)
