"""Section V-A parameter justification — the pre-deployment calibration.

The paper justifies ``r = 0.5`` and 4-5-person groups with initial random
deployments at group sizes {2, 3, 4, 5, 10, 12, 15}.  This bench re-runs
the simulated study and prints the table behind those choices: the
recovered effective learning rate and the mean per-worker gain per size.
"""

from __future__ import annotations

from repro.amt.calibration import best_group_size

from benchmarks._util import emit

SIZES = (2, 3, 4, 5, 10, 12, 15)


def bench_sec5a_calibration(benchmark):
    best, results = benchmark.pedantic(
        best_group_size, args=(SIZES,), kwargs={"seed": 0}, iterations=1, rounds=1
    )
    lines = [
        "Section V-A calibration: random-group deployments by group size",
        f"{'group size':>11}{'estimated rate':>16}{'mean gain/worker':>18}{'interactivity':>15}",
    ]
    for result in results:
        lines.append(
            f"{result.group_size:>11}{result.estimated_rate:>16.3f}"
            f"{result.mean_gain:>18.4f}{result.interactivity:>15.2f}"
        )
    lines.append(f"-> best size by mean gain: {best} (paper chose 4-5); "
                 "recovered rate near the true r=0.5 at the interactive sizes "
                 "(mild attenuation from the noisy-gap measurement)")
    emit("sec5a_calibration", "\n".join(lines))

    assert best in (4, 5)
    by_size = {r.group_size: r for r in results}
    # At the ideal size the recovered rate approximates the true 0.5
    # (ratio estimator with independent assessments; documented mild
    # attenuation from the max-of-noisy-scores gap).
    assert 0.3 <= by_size[4].estimated_rate <= 0.6
    # The recovered rate tracks interactivity across sizes.
    assert by_size[4].estimated_rate > by_size[15].estimated_rate
    # Oversized groups learn less per worker than ideal ones.
    assert by_size[15].mean_gain < by_size[4].mean_gain
