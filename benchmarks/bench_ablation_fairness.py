"""Ablation A4 — fairness-aware grouping vs DyGroups (Section VII, Fairness).

DyGroups' variance tie-break maximizes inequality among round-optimal
groupings; the mirror-image fairness policy (best teachers ↔ weakest
learners) minimizes it while keeping every round's gain optimal
(Theorem 1b).  This bench sweeps the horizon α and exposes the crossover
this trade-off has:

* short horizons (α ≤ 2): the fairness policy lifts the weakest decile by
  a large factor and lowers the final Gini;
* long horizons: DyGroups' better-teachers-earlier effect compounds and
  it dominates the myopic fairness policy even on the bottom decile —
  equity by construction loses to equity by welfare maximization.
"""

from __future__ import annotations

import numpy as np

from repro.core.dygroups import dygroups
from repro.core.simulation import simulate
from repro.data.distributions import lognormal_skills
from repro.extensions.fairness import FairnessAwarePolicy, fairness_report

from benchmarks._util import BENCH_RUNS, FULL, emit

N = 10_000 if FULL else 1_000
ALPHAS = (1, 2, 3, 5, 8)


def _run() -> dict[int, dict[str, dict[str, float]]]:
    table: dict[int, dict[str, dict[str, float]]] = {}
    for alpha in ALPHAS:
        rows: dict[str, list] = {"dygroups-star": [], "fair-star": []}
        for run in range(BENCH_RUNS):
            skills = lognormal_skills(N, seed=run)
            rows["dygroups-star"].append(
                fairness_report(
                    dygroups(skills, k=5, alpha=alpha, rate=0.5, record_groupings=False)
                )
            )
            rows["fair-star"].append(
                fairness_report(
                    simulate(
                        FairnessAwarePolicy(),
                        skills,
                        k=5,
                        alpha=alpha,
                        mode="star",
                        rate=0.5,
                        seed=run,
                        record_groupings=False,
                    )
                )
            )
        table[alpha] = {
            name: {
                "total_gain": float(np.mean([r.total_gain for r in reports])),
                "gini": float(np.mean([r.gini for r in reports])),
                "bottom_decile_gain": float(
                    np.mean([r.bottom_decile_gain for r in reports])
                ),
            }
            for name, reports in rows.items()
        }
    return table


def bench_ablation_fairness(benchmark):
    table = benchmark.pedantic(_run, iterations=1, rounds=1)
    lines = [
        f"Ablation A4: fairness-aware vs DyGroups across horizons (star, n={N}, r=0.5)",
        f"{'alpha':>6}{'policy':>16}{'total_gain':>14}{'gini':>10}{'bottom10% gain':>16}",
    ]
    for alpha in ALPHAS:
        for name in ("dygroups-star", "fair-star"):
            stats = table[alpha][name]
            lines.append(
                f"{alpha:>6}{name:>16}{stats['total_gain']:>14.6g}"
                f"{stats['gini']:>10.4f}{stats['bottom_decile_gain']:>16.6g}"
            )
    emit("ablation_fairness", "\n".join(lines))

    # Short horizon: the fairness policy wins on equity.
    short = table[ALPHAS[0]]
    assert short["fair-star"]["bottom_decile_gain"] > short["dygroups-star"]["bottom_decile_gain"]
    assert short["fair-star"]["gini"] <= short["dygroups-star"]["gini"] + 1e-12
    # Long horizon: DyGroups dominates on total gain AND the bottom decile.
    long_ = table[ALPHAS[-1]]
    assert long_["dygroups-star"]["total_gain"] >= long_["fair-star"]["total_gain"] - 1e-9
    assert (
        long_["dygroups-star"]["bottom_decile_gain"]
        >= long_["fair-star"]["bottom_decile_gain"] - 1e-9
    )
    # Total gain: both are round-optimal in round 1 (Theorem 1b).
    assert table[1]["dygroups-star"]["total_gain"] == np.float64(
        table[1]["fair-star"]["total_gain"]
    ) or abs(
        table[1]["dygroups-star"]["total_gain"] - table[1]["fair-star"]["total_gain"]
    ) < 1e-6 * abs(table[1]["dygroups-star"]["total_gain"])
