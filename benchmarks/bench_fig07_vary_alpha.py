"""Figure 7 — aggregate learning gain, varying α (number of rounds).

Paper: (a) clique/Zipf, (b) star/log-normal; DyGroups convincingly wins
and a higher α induces a higher aggregate gain.
"""

from __future__ import annotations

from repro.experiments.figures import fig07a, fig07b
from repro.experiments.render import render_table

from benchmarks._util import BENCH_RUNS, FULL, emit


def _check_shape(series_set) -> None:
    dygroups = series_set.get("dygroups").y
    random_y = series_set.get("random").y
    assert all(d >= r - 1e-9 for d, r in zip(dygroups, random_y))
    # Gain is monotone non-decreasing in alpha.
    assert all(a <= b + 1e-9 for a, b in zip(dygroups, dygroups[1:]))


def bench_fig07a_vary_alpha_clique_zipf(benchmark):
    series_set = benchmark.pedantic(
        fig07a, kwargs={"full": FULL, "runs": BENCH_RUNS}, iterations=1, rounds=1
    )
    emit("fig07a_vary_alpha_clique_zipf", render_table(series_set))
    _check_shape(series_set)


def bench_fig07b_vary_alpha_star_lognormal(benchmark):
    series_set = benchmark.pedantic(
        fig07b, kwargs={"full": FULL, "runs": BENCH_RUNS}, iterations=1, rounds=1
    )
    emit("fig07b_vary_alpha_star_lognormal", render_table(series_set))
    _check_shape(series_set)
