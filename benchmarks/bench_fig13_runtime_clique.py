"""Figure 13 — running time, clique mode (log-normal skills).

Same setup as Figure 12 with the Clique interaction mode: the O(n)
prefix-sum update (Theorem 3) keeps DyGroups-Clique's scaling identical
to DyGroups-Star's.
"""

from __future__ import annotations

from repro.core.dygroups import dygroups
from repro.data.distributions import lognormal_skills
from repro.experiments.figures import fig13
from repro.experiments.render import render_table

from benchmarks._util import BENCH_RUNS, FULL, emit


def bench_fig13_runtime_clique_sweeps(benchmark):
    by_n, by_k = benchmark.pedantic(
        fig13, kwargs={"full": FULL, "runs": BENCH_RUNS}, iterations=1, rounds=1
    )
    emit(
        "fig13_runtime_clique",
        render_table(by_n, digits=3) + "\n\n" + render_table(by_k, digits=3),
    )

    dygroups_n = by_n.get("dygroups").y
    assert dygroups_n[-1] / max(dygroups_n[0], 1e-9) < (by_n.x[-1] / by_n.x[0]) ** 1.5
    dygroups_k = by_k.get("dygroups").y
    assert max(dygroups_k) / max(min(dygroups_k), 1e-9) < 50


def bench_fig13_dygroups_clique_single_run(benchmark):
    skills = lognormal_skills(10_000, seed=0)
    benchmark(
        dygroups, skills, k=5, alpha=5, rate=0.5, mode="clique", record_groupings=False
    )
