"""Figure 11 — inequality of DyGroups-Star vs Random-Assignment (r = 0.1).

Paper: inequality (CV, Gini) drops for both methods as skills converge to
the fixed maximum (11b), but DyGroups-Star maintains *higher* inequality
than Random-Assignment at every checkpoint, with a widening gap (11a).
"""

from __future__ import annotations

from repro.experiments.figures import fig11
from repro.experiments.render import render_table

from benchmarks._util import BENCH_RUNS, FULL, emit


def bench_fig11_inequality(benchmark):
    ratios, measures = benchmark.pedantic(
        fig11, kwargs={"full": FULL, "runs": BENCH_RUNS}, iterations=1, rounds=1
    )
    emit("fig11_inequality", render_table(ratios) + "\n\n" + render_table(measures))

    # (b) inequality drops over alpha for both methods.
    for label in ("CV-dygroups-star", "CV-random", "Gini-dygroups-star", "Gini-random"):
        values = measures.get(label).y
        assert values[-1] < values[0]
    # (a) DyGroups maintains >= inequality relative to random while
    # meaningful inequality remains, with a widening gap.  By alpha = 64
    # at r = 0.1 both populations are essentially saturated (measures
    # drop by two orders of magnitude) and the residual ratios are noise,
    # so the final checkpoint is excluded from the dominance check.
    for label in ("CV ratio", "Gini ratio"):
        values = ratios.get(label).y
        assert all(v >= 0.999 for v in values[:-1])
        assert max(values) >= values[0]  # the gap widens before saturation
