"""Ablation A1 — the variance-maximizing tie-break (Theorem 2's payoff).

Theorem 1 leaves exponentially many round-optimal star groupings; DyGroups
picks the variance-maximizing one.  This ablation compares DyGroups-Star
against round-optimal policies with other non-teacher splits (random /
reversed / interleaved) over multiple rounds: every policy matches
DyGroups' gain in round 1 (Theorem 1b) and falls behind afterwards —
exactly the toy-example insight behind the k=2 optimality proof.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.local_optimum import STRATEGIES
from repro.baselines.registry import make_policy
from repro.core.dygroups import dygroups
from repro.core.simulation import simulate
from repro.data.distributions import lognormal_skills
from repro.experiments.render import render_table
from repro.metrics.series import Series, SeriesSet

from benchmarks._util import BENCH_RUNS, FULL, emit

N = 10_000 if FULL else 1_000
ALPHAS = (1, 2, 3, 4, 6, 8)


def _run() -> SeriesSet:
    labels = ["dygroups"] + [f"local-optimum-{s}" for s in STRATEGIES]
    totals: dict[str, list[float]] = {label: [] for label in labels}
    for alpha in ALPHAS:
        per_run: dict[str, list[float]] = {label: [] for label in labels}
        for run in range(BENCH_RUNS):
            skills = lognormal_skills(N, seed=run)
            per_run["dygroups"].append(
                dygroups(skills, k=5, alpha=alpha, rate=0.5, record_groupings=False).total_gain
            )
            for strategy in STRATEGIES:
                policy = make_policy(f"local-optimum-{strategy}")
                result = simulate(
                    policy,
                    skills,
                    k=5,
                    alpha=alpha,
                    mode="star",
                    rate=0.5,
                    seed=run,
                    record_groupings=False,
                )
                per_run[f"local-optimum-{strategy}"].append(result.total_gain)
        for label in labels:
            totals[label].append(float(np.mean(per_run[label])))
    return SeriesSet(
        title=f"Ablation A1: variance tie-break vs arbitrary local optima (star, n={N})",
        x_label="alpha",
        y_label="aggregate learning gain",
        series=tuple(
            Series(label=label, x=tuple(float(a) for a in ALPHAS), y=tuple(values))
            for label, values in totals.items()
        ),
    )


def bench_ablation_variance_tiebreak(benchmark):
    series_set = benchmark.pedantic(_run, iterations=1, rounds=1)
    emit("ablation_variance", render_table(series_set))

    dygroups_y = series_set.get("dygroups").y
    for strategy in STRATEGIES:
        other = series_set.get(f"local-optimum-{strategy}").y
        # Round 1: all round-optimal groupings tie (Theorem 1b).
        assert other[0] == pytest.approx(dygroups_y[0], rel=1e-9)
        # Multi-round: the variance tie-break never loses.
        assert all(d >= o - 1e-9 for d, o in zip(dygroups_y, other))
